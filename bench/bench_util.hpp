// Shared helpers for the figure-reproduction binaries: headers, simple
// fixed-width tables, and wall-clock timing.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "common/env.hpp"
#include "common/error.hpp"

namespace easyscale::bench {

/// Build type of THIS repo's code (NDEBUG), as stamped into benchmark
/// artifacts.  Distinct from google-benchmark's `library_build_type`
/// context field, which describes the system benchmark *library*.
[[nodiscard]] inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

[[nodiscard]] inline bool is_release_build() {
#ifdef NDEBUG
  return true;
#else
  return false;
#endif
}

/// Gate for benchmark binaries that record artifacts: debug-build numbers
/// are not comparable and must not be committed.  Returns true in release
/// builds.  In debug builds it prints a loud refusal and returns false —
/// unless EASYSCALE_BENCH_ALLOW_DEBUG=1, which stamps the run and lets it
/// continue (the "debug" build_type still lands in the artifact).
[[nodiscard]] inline bool guard_release_build(const std::string& artifact) {
  if (is_release_build()) return true;
  // Strict parse (common/env.hpp): only 0 or 1 are meaningful, and a typo
  // ("yes", "1x") refuses the run with an error NAMING the variable
  // instead of being silently misread.
  std::optional<std::int64_t> allow;
  try {
    allow = env_int64("EASYSCALE_BENCH_ALLOW_DEBUG", 0, 1);
  } catch (const Error& e) {
    std::printf("REFUSED: %s\n", e.what());
    return false;
  }
  if (allow.value_or(0) == 1) {
    std::printf("WARNING: DEBUG BUILD — %s will be stamped "
                "build_type=debug; numbers are not comparable.\n",
                artifact.c_str());
    return true;
  }
  std::printf("REFUSED: this is a debug build; %s must be recorded from a "
              "release build (set EASYSCALE_BENCH_ALLOW_DEBUG=1 to "
              "override, loudly stamped).\n",
              artifact.c_str());
  return false;
}

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Wall-clock seconds of `fn`.
inline double time_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace easyscale::bench
