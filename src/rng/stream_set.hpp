// The "RNG zoo" of a real training stack.
//
// §3.3 D0: "the data loader and data augmentation also depend on RNG states
// from Python, NumPy, PyTorch, etc."  A worker therefore carries a *set* of
// independent RNG streams, one per framework layer, and all of them are part
// of the implicit framework state that must be captured in EST contexts and
// checkpoints.  StreamSet reproduces that structure.
#pragma once

#include <array>
#include <cstdint>

#include "rng/philox.hpp"

namespace easyscale::rng {

/// Which framework layer a draw comes from.  Mirrors the layers the paper
/// names as nondeterminism sources.
enum class StreamKind : int {
  kPython = 0,  // python `random` — used by user-level augmentation choices
  kNumpy = 1,   // numpy — array-level augmentation (crops, noise)
  kTorch = 2,   // framework ops — dropout masks, weight init
  kCuda = 3,    // device-side generator — per-op GPU randomness
};

constexpr int kNumStreamKinds = 4;

/// Serializable snapshot of all four streams.
struct StreamSetState {
  std::array<PhiloxState, kNumStreamKinds> streams;

  void save(ByteWriter& w) const {
    for (const auto& s : streams) s.save(w);
  }
  static StreamSetState load(ByteReader& r) {
    StreamSetState st;
    for (auto& s : st.streams) s = PhiloxState::load(r);
    return st;
  }
  friend bool operator==(const StreamSetState&, const StreamSetState&) = default;
};

/// A bundle of independent Philox streams.  Seeding derives a distinct key
/// per stream from (seed, rank, kind) so that virtual workers never share a
/// stream — matching DDP's per-rank seeding discipline.
class StreamSet {
 public:
  StreamSet() = default;

  /// Seed all streams for virtual rank `rank`.
  void seed_all(std::uint64_t seed, std::uint64_t rank);

  Philox& stream(StreamKind kind) { return streams_[static_cast<int>(kind)]; }
  const Philox& stream(StreamKind kind) const {
    return streams_[static_cast<int>(kind)];
  }

  [[nodiscard]] StreamSetState state() const;
  void set_state(const StreamSetState& s);

 private:
  std::array<Philox, kNumStreamKinds> streams_;
};

/// Mixes (seed, rank, kind) into a stream key.  SplitMix64 finalizer —
/// avalanching so nearby ranks get unrelated streams.
[[nodiscard]] std::uint64_t derive_stream_key(std::uint64_t seed,
                                              std::uint64_t rank,
                                              std::uint64_t kind);

}  // namespace easyscale::rng
