// Sharded-optimizer collectives: reduce-scatter and parameter all-gather.
//
// ZeRO-1 sharding splits *optimizer state* (and the update computation)
// across ranks while parameters stay replicated.  The gradient sync becomes
// a reduce-scatter (each rank receives only the averaged gradient elements
// its shard owns) and the step ends with an all-gather that publishes the
// owner-updated parameter chunks to every replica.
//
// The bitwise contract mirrors comm::allreduce_average: the reduction here
// runs the SAME flatten and the SAME full-world ring association as the
// unsharded all-reduce — sharding only changes who *receives* each averaged
// element, never how it was summed.  Combined with elementwise optimizer
// updates (optim::Optimizer::step_slices) and an all-gather that is pure
// data movement from canonical owners, a sharded step is bitwise identical
// to the replicated step (docs/PARALLELISM.md, proof sketch).
//
// The resilient variants drive the same abort-drain machinery as
// comm::resilient_allreduce_average: chunk transfers ride the simulated
// Transport, any fault aborts the in-flight operation, and after a bounded
// backoff the collective re-executes bitwise from the untouched inputs.
// DeathPolicy is forced to kAbort — a shard owner's death cannot "shrink
// away" (its optimizer-state chunks have no live replica inside the
// collective), so the step must roll back and the plan must reshard.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/parameter.hpp"
#include "comm/allreduce.hpp"
#include "comm/bucket.hpp"
#include "comm/resilient.hpp"
#include "comm/transport.hpp"
#include "optim/optimizer.hpp"

namespace easyscale::comm {

/// One rank's owned element ranges of the flattened parameter space,
/// expressed per parameter in store order (from parallel::Plan).
using ShardSlices = std::vector<optim::ParamSlice>;

/// Reject malformed reduce-scatter inputs with named-parameter messages:
/// everything validate_allreduce_inputs rejects for (layout, parts), plus
/// owned_of_part must have one entry per part, every slice must reference a
/// gradient in range with bounds inside that gradient, and one rank's
/// slices on a parameter must not overlap.  Slices MAY repeat across ranks
/// — replicated shard columns own the same chunks by design.
void validate_reduce_scatter_inputs(
    const BucketLayout& layout, const std::vector<GradientSet*>& parts,
    const std::vector<ShardSlices>& owned_of_part);

/// Reject malformed all-gather inputs with named-parameter messages:
/// `stores` non-empty and null-free with equal parameter counts and shapes,
/// `source_of_slice` one entry per slice naming an in-range store, every
/// slice in range of its parameter.
void validate_all_gather_inputs(
    const std::vector<autograd::ParameterStore*>& stores,
    const std::vector<optim::ParamSlice>& slices,
    const std::vector<int>& source_of_slice);

/// In-place bucketed ring reduce-scatter + average.  The reduction is
/// bitwise identical to allreduce_average over the same (layout, parts);
/// each part then receives only the averaged elements covered by its
/// owned_of_part entry.  Unowned gradient elements are left untouched.
void reduce_scatter_average(const BucketLayout& layout,
                            std::vector<GradientSet*>& parts,
                            const std::vector<ShardSlices>& owned_of_part);

/// Reduce-scatter exactly one bucket of `layout` (the per-flushed-bucket
/// unit of the overlapped comm path).  Running it for every bucket in any
/// order equals one reduce_scatter_average call — buckets touch disjoint
/// gradients.  Skips input validation: the caller validates the full layout
/// once per step before submitting any bucket job (see
/// resilient_allreduce_average for why validating here would race).
void reduce_scatter_average_bucket(
    const BucketLayout& layout, std::size_t bucket,
    const std::vector<GradientSet*>& parts,
    const std::vector<ShardSlices>& owned_of_part);

/// All-gather of parameter values: for each slice, copy the value bytes
/// from its canonical source store into every other store.  Pure data
/// movement — no arithmetic — so it cannot perturb bits.
void all_gather_params(const std::vector<autograd::ParameterStore*>& stores,
                       const std::vector<optim::ParamSlice>& slices,
                       const std::vector<int>& source_of_slice);

/// Failure-aware reduce_scatter_average over a simulated Transport: the
/// ring's W-1 reduce-scatter transfer steps ride the fabric, any fault
/// aborts the in-flight operation, and the collective re-executes bitwise
/// after backoff.  cfg.on_death MUST be DeathPolicy::kAbort (see header
/// comment).  `bucket_ids` restricts to a subset of buckets for the
/// overlapped path, like resilient_allreduce_average.
CollectiveReport resilient_reduce_scatter_average(
    const BucketLayout& layout, std::vector<GradientSet*>& parts,
    const std::vector<ShardSlices>& owned_of_part, Transport& transport,
    MembershipMonitor& monitor, const ResilientConfig& cfg = {},
    const std::vector<int>* host_of_part = nullptr,
    const std::vector<std::size_t>* bucket_ids = nullptr);

/// Failure-aware all_gather_params: W-1 all-gather transfer steps on the
/// fabric with the same abort + bitwise re-execute discipline.  cfg.on_death
/// MUST be DeathPolicy::kAbort.
CollectiveReport resilient_all_gather_params(
    const std::vector<autograd::ParameterStore*>& stores,
    const std::vector<optim::ParamSlice>& slices,
    const std::vector<int>& source_of_slice, Transport& transport,
    MembershipMonitor& monitor, const ResilientConfig& cfg = {},
    const std::vector<int>* host_of_store = nullptr);

/// Total elements covered by a slice list (for the bench's comm-bytes
/// accounting: a sharded rank receives owned elements + all-gathers the
/// rest, instead of receiving everything twice).
[[nodiscard]] std::int64_t slices_numel(
    const std::vector<optim::ParamSlice>& slices);

}  // namespace easyscale::comm
