#include "data/combinators.hpp"

#include "common/error.hpp"

namespace easyscale::data {

SubsetDataset::SubsetDataset(const Dataset& base, std::int64_t offset,
                             std::int64_t size)
    : base_(&base), offset_(offset), size_(size) {
  ES_CHECK(offset >= 0 && size > 0 && offset + size <= base.size(),
           "subset [" << offset << ", " << offset + size
                      << ") out of range for dataset of size " << base.size());
}

Sample SubsetDataset::get(std::int64_t index) const {
  ES_CHECK(index >= 0 && index < size_, "subset index out of range");
  return base_->get(offset_ + index);
}

ConcatDataset::ConcatDataset(std::vector<const Dataset*> parts)
    : parts_(std::move(parts)) {
  ES_CHECK(!parts_.empty(), "concat of zero datasets");
  for (const auto* p : parts_) {
    ES_CHECK(p != nullptr, "null dataset in concat");
    offsets_.push_back(total_);
    total_ += p->size();
  }
}

Sample ConcatDataset::get(std::int64_t index) const {
  ES_CHECK(index >= 0 && index < total_, "concat index out of range");
  // Find the owning part (few parts: linear scan).
  std::size_t part = parts_.size() - 1;
  for (std::size_t i = 1; i < parts_.size(); ++i) {
    if (index < offsets_[i]) {
      part = i - 1;
      break;
    }
  }
  return parts_[part]->get(index - offsets_[part]);
}

}  // namespace easyscale::data
