// Peer-quorum-first recovery through the FaultSupervisor (the tentpole's
// integration layer) and the trainer-level snapshot/restore primitives.
//
// The keystone properties:
//  - a supervised run that recovers from peer snapshots any number of times
//    ends BITWISE equal to the undisturbed run (EasyScale's consistent-
//    accuracy claim extends to in-fabric recovery);
//  - peer recovery loses strictly fewer steps than disk-only recovery on
//    the same fault schedule (snapshots every step vs every N);
//  - parallel::Trainer round-trips through checkpoint_bytes at every shard
//    degree, including reshard-on-recover (snapshot at degree N, restore at
//    degree M, continue bitwise).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint_manager.hpp"
#include "core/engine.hpp"
#include "fault/injector.hpp"
#include "fault/supervisor.hpp"
#include "models/datasets.hpp"
#include "parallel/trainer.hpp"
#include "sim/recovery_model.hpp"
#include "trace/generators.hpp"

namespace easyscale::fault {
namespace {

using core::CheckpointManager;
using core::EasyScaleConfig;
using core::EasyScaleEngine;
using core::WorkerSpec;

std::string temp_prefix(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

EasyScaleConfig small_config() {
  EasyScaleConfig cfg;
  cfg.workload = "NeuMF";
  cfg.num_ests = 4;
  cfg.batch_per_est = 4;
  cfg.seed = 42;
  return cfg;
}

models::WorkloadData& shared_data() {
  static auto wd = models::make_dataset_for("NeuMF", 128, 16, 42);
  return wd;
}

std::uint64_t fault_free_digest(std::int64_t workers, std::int64_t steps) {
  auto& wd = shared_data();
  EasyScaleEngine engine(small_config(), *wd.train, wd.augment);
  engine.configure_workers(
      std::vector<WorkerSpec>(static_cast<std::size_t>(workers)));
  engine.run_steps(steps);
  return engine.params_digest();
}

FaultPlanConfig crash_plan(std::int64_t steps) {
  FaultPlanConfig pcfg;
  pcfg.seed = 0x9EEC;
  pcfg.horizon_steps = steps;
  pcfg.crash_rate = 0.15;
  return pcfg;
}

GoodputStats run_supervised(int peer_replicas, std::int64_t steps,
                            std::uint64_t* digest_out,
                            const FaultSupervisor** sup_out = nullptr) {
  static std::unique_ptr<FaultSupervisor> last_sup;  // keep alive for peek
  auto& wd = shared_data();
  static std::unique_ptr<EasyScaleEngine> engine;
  engine = std::make_unique<EasyScaleEngine>(small_config(), *wd.train,
                                             wd.augment);
  static std::unique_ptr<CheckpointManager> mgr;
  // Prefix on the test name: ctest runs each test as its own process, so a
  // shared prefix would let parallel tests clobber each other's files.
  const std::string prefix =
      std::string("recovery_sup_") +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  mgr = std::make_unique<CheckpointManager>(temp_prefix(prefix.c_str()), 3);
  mgr->clear();
  SupervisorConfig scfg;
  scfg.policy = RecoveryPolicy::kElasticScaleIn;
  scfg.checkpoint_every = 4;
  scfg.regrow_after_clean_steps = 0;  // keep worker counts comparable
  scfg.peer_replicas = peer_replicas;
  last_sup = std::make_unique<FaultSupervisor>(
      *engine, *mgr, FaultInjector::from_config(crash_plan(steps)), scfg);
  const auto stats = last_sup->run_to(steps, 4);
  if (digest_out != nullptr) *digest_out = engine->params_digest();
  if (sup_out != nullptr) *sup_out = last_sup.get();
  mgr->clear();
  return stats;
}

TEST(Recovery, PeerQuorumRecoveryIsBitwiseExact) {
  constexpr std::int64_t kSteps = 24;
  const std::uint64_t clean = fault_free_digest(4, kSteps);
  std::uint64_t digest = 0;
  const FaultSupervisor* sup = nullptr;
  const auto stats = run_supervised(/*peer_replicas=*/2, kSteps, &digest,
                                    &sup);
  ASSERT_FALSE(stats.failed);
  EXPECT_GT(stats.recoveries, 0) << "schedule must actually crash the job";
  EXPECT_GT(stats.peer_recoveries, 0)
      << "every recovery should be served from the peer quorum";
  EXPECT_EQ(stats.disk_recoveries, 0)
      << "with intact replicas the disk walk-back must not be touched";
  EXPECT_EQ(digest, clean)
      << "a peer-recovered run must end bitwise equal to the clean run";
  ASSERT_NE(sup, nullptr);
  ASSERT_NE(sup->peer_service(), nullptr);
  EXPECT_GT(sup->peer_service()->stats().epochs_committed, 0);
}

TEST(Recovery, PeerLosesStrictlyFewerStepsThanDiskOnly) {
  constexpr std::int64_t kSteps = 24;
  const auto disk_only = run_supervised(/*peer_replicas=*/0, kSteps, nullptr);
  const auto peered = run_supervised(/*peer_replicas=*/2, kSteps, nullptr);
  ASSERT_FALSE(disk_only.failed);
  ASSERT_FALSE(peered.failed);
  ASSERT_GT(disk_only.recoveries, 0);
  EXPECT_GT(disk_only.lost_steps, 0)
      << "disk cadence of 4 must lose mid-interval progress";
  EXPECT_LT(peered.lost_steps, disk_only.lost_steps)
      << "per-step peer snapshots must strictly beat the disk cadence";
  EXPECT_EQ(peered.lost_steps, 0)
      << "peer_snapshot_every=1 means a crash rolls back zero steps";
}

TEST(Recovery, DisabledPeerPipelineKeepsLegacyBehaviour) {
  constexpr std::int64_t kSteps = 16;
  const std::uint64_t clean = fault_free_digest(4, kSteps);
  std::uint64_t digest = 0;
  const FaultSupervisor* sup = nullptr;
  const auto stats = run_supervised(/*peer_replicas=*/0, kSteps, &digest,
                                    &sup);
  ASSERT_FALSE(stats.failed);
  EXPECT_EQ(stats.peer_snapshots, 0);
  EXPECT_EQ(stats.peer_recoveries, 0);
  EXPECT_EQ(stats.peer_wall_s, 0.0);
  EXPECT_EQ(sup->peer_service(), nullptr);
  EXPECT_EQ(digest, clean);
}

TEST(Recovery, WallClockBreakdownIncludesPeerStaging) {
  constexpr std::int64_t kSteps = 16;
  const auto stats = run_supervised(/*peer_replicas=*/2, kSteps, nullptr);
  ASSERT_FALSE(stats.failed);
  EXPECT_GT(stats.peer_wall_s, 0.0);
  // The wall model stays a partition: every charged second is attributed
  // to exactly one bucket (comm/witness are zero on this schedule).
  EXPECT_NEAR(stats.step_wall_s + stats.checkpoint_wall_s +
                  stats.recovery_wall_s + stats.reconfig_wall_s +
                  stats.peer_wall_s,
              stats.total_wall_s, 1e-9);
  // Replication time exists but is off the critical path by design.
  EXPECT_GT(stats.peer_background_s, 0.0);
  EXPECT_LT(stats.peer_background_s, stats.total_wall_s);
}

TEST(Recovery, ReplicaLossEventsDegradeToDiskFallback) {
  // A schedule that composes crashes with aggressive replica loss: the
  // peer path may lose quorum, but the run must still finish bitwise via
  // the disk fallback.
  constexpr std::int64_t kSteps = 24;
  const std::uint64_t clean = fault_free_digest(4, kSteps);
  auto& wd = shared_data();
  EasyScaleEngine engine(small_config(), *wd.train, wd.augment);
  CheckpointManager mgr(temp_prefix("recovery_replica_loss"), 3);
  mgr.clear();
  FaultPlanConfig pcfg = crash_plan(kSteps);
  pcfg.peer_replica_loss_rate = 0.8;
  SupervisorConfig scfg;
  scfg.policy = RecoveryPolicy::kElasticScaleIn;
  scfg.checkpoint_every = 4;
  scfg.peer_replicas = 1;
  scfg.peer_keep_epochs = 1;  // one committed epoch: losses bite harder
  FaultSupervisor sup(engine, mgr, FaultInjector::from_config(pcfg), scfg);
  const auto stats = sup.run_to(kSteps, 4);
  ASSERT_FALSE(stats.failed);
  EXPECT_GT(stats.peer_replicas_lost, 0) << "the loss events must land";
  EXPECT_EQ(engine.params_digest(), clean);
  mgr.clear();
}

TEST(Recovery, SdcDefenseComposesWithPeerRecovery) {
  constexpr std::int64_t kSteps = 16;
  const std::uint64_t clean = fault_free_digest(4, kSteps);
  auto& wd = shared_data();
  EasyScaleEngine engine(small_config(), *wd.train, wd.augment);
  CheckpointManager mgr(temp_prefix("recovery_sdc_peer"), 4);
  mgr.clear();
  FaultPlanConfig pcfg;
  pcfg.seed = 0x5DCE;
  pcfg.horizon_steps = kSteps;
  pcfg.sdc_bitflip_rate = 0.08;
  SupervisorConfig scfg;
  scfg.policy = RecoveryPolicy::kElasticScaleIn;
  scfg.checkpoint_every = 4;
  scfg.sdc_defense = true;
  scfg.witness_every = 1;
  scfg.peer_replicas = 2;
  FaultSupervisor sup(engine, mgr, FaultInjector::from_config(pcfg), scfg);
  const auto stats = sup.run_to(kSteps, 4);
  ASSERT_FALSE(stats.failed);
  EXPECT_GT(stats.sdc_detections, 0) << "the schedule must trigger the "
                                        "witness";
  // SDC recoveries restore through the peer quorum (witness-certified
  // epochs) and the run still ends bitwise clean on the survivors.
  EXPECT_GT(stats.peer_recoveries, 0);
  EXPECT_EQ(engine.params_digest(), clean);
  mgr.clear();
}

TEST(Recovery, GangRestartIsUnchangedByPeerKnob) {
  // The gang baseline keeps its semantics with the pipeline on: recoveries
  // still happen (served by whichever lattice level), the job still runs at
  // full strength, and the digest still matches the clean run.
  constexpr std::int64_t kSteps = 16;
  const std::uint64_t clean = fault_free_digest(4, kSteps);
  auto& wd = shared_data();
  EasyScaleEngine engine(small_config(), *wd.train, wd.augment);
  CheckpointManager mgr(temp_prefix("recovery_gang"), 3);
  mgr.clear();
  FaultPlanConfig pcfg = crash_plan(kSteps);
  pcfg.crash_rate = 0.08;
  SupervisorConfig scfg;
  scfg.policy = RecoveryPolicy::kGangRestart;
  scfg.checkpoint_every = 4;
  scfg.peer_replicas = 2;
  FaultSupervisor sup(engine, mgr, FaultInjector::from_config(pcfg), scfg);
  const auto stats = sup.run_to(kSteps, 4);
  if (!stats.failed) {
    EXPECT_EQ(sup.current_workers(), 4);
    EXPECT_EQ(engine.params_digest(), clean);
  }
  mgr.clear();
}

// --- Trainer byte-level snapshot/restore (the peer pipeline's payload) ---

parallel::TrainerConfig trainer_config(int shard_degree) {
  parallel::TrainerConfig cfg;
  cfg.workload = "ResNet18";
  cfg.world_size = 4;
  cfg.batch_per_worker = 4;
  cfg.seed = 42;
  cfg.shard_degree = shard_degree;
  return cfg;
}

models::WorkloadData& trainer_data() {
  static auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  return wd;
}

std::uint64_t trainer_clean_digest(int shard_degree, std::int64_t steps) {
  auto& wd = trainer_data();
  parallel::Trainer t(trainer_config(shard_degree), *wd.train, wd.augment);
  t.run_steps(steps);
  return t.params_digest();
}

TEST(Recovery, TrainerSnapshotRoundTripsAtEveryShardDegree) {
  auto& wd = trainer_data();
  for (const int degree : {1, 4}) {
    parallel::Trainer t(trainer_config(degree), *wd.train, wd.augment);
    t.run_steps(3);
    const auto snapshot = t.checkpoint_bytes();
    t.run_steps(5);  // diverge past the snapshot
    parallel::Trainer back(trainer_config(degree), *wd.train, wd.augment);
    back.restore_checkpoint_bytes(snapshot);
    back.run_steps(5);
    EXPECT_EQ(back.params_digest(), t.params_digest())
        << "degree " << degree;
  }
}

TEST(Recovery, TrainerSnapshotRestoresAcrossShardDegrees) {
  // Snapshot at degree 4, recover at degree 1 (and back): the canonical
  // image is degree-independent, so both continuations are bitwise equal to
  // the straight-through run.
  auto& wd = trainer_data();
  const std::uint64_t clean = trainer_clean_digest(1, 8);
  for (const auto [save_deg, restore_deg] : {std::pair{4, 1},
                                             std::pair{1, 4}}) {
    parallel::Trainer saver(trainer_config(save_deg), *wd.train, wd.augment);
    saver.run_steps(4);
    const auto snapshot = saver.checkpoint_bytes();
    parallel::Trainer restorer(trainer_config(restore_deg), *wd.train,
                               wd.augment);
    restorer.restore_checkpoint_bytes(snapshot);
    restorer.run_steps(4);
    EXPECT_EQ(restorer.params_digest(), clean)
        << "save at degree " << save_deg << ", restore at " << restore_deg;
  }
}

TEST(Recovery, TrainerReshardOnRecoverIsBitwise) {
  // The mid-run reshard-on-recover shape: train sharded, snapshot, crash,
  // recover into a trainer that reshards to a smaller degree, continue —
  // the whole braid must land on the straight-through digest.
  auto& wd = trainer_data();
  const std::uint64_t clean = trainer_clean_digest(4, 8);
  parallel::Trainer t(trainer_config(4), *wd.train, wd.augment);
  t.run_steps(4);
  const auto snapshot = t.checkpoint_bytes();
  parallel::Trainer recovered(trainer_config(4), *wd.train, wd.augment);
  recovered.restore_checkpoint_bytes(snapshot);
  recovered.reshard(2);  // recover into a degraded shard degree ...
  recovered.run_steps(2);
  recovered.reshard(4);  // ... then re-grow mid-run
  recovered.run_steps(2);
  EXPECT_EQ(recovered.params_digest(), clean);
}

TEST(Recovery, TrainerSnapshotRejectsTornBytes) {
  auto& wd = trainer_data();
  parallel::Trainer t(trainer_config(1), *wd.train, wd.augment);
  t.run_steps(1);
  const auto snapshot = t.checkpoint_bytes();
  // A sparse byte sweep (every 97th offset) keeps the test fast while still
  // probing header, chain, meta and payload sections.
  for (std::size_t i = 0; i < snapshot.size(); i += 97) {
    auto torn = snapshot;
    torn[i] ^= 0x20;
    parallel::Trainer victim(trainer_config(1), *wd.train, wd.augment);
    EXPECT_THROW(victim.restore_checkpoint_bytes(torn), Error)
        << "flipped byte " << i;
  }
}

// --- Recovery-latency / lost-steps model under the PR 1 MTBF trace ---

TEST(Recovery, ModelPeerBeatsDiskUnderMtbfTrace) {
  trace::FailureTraceConfig tcfg;
  tcfg.cluster = {32, 32, 64};
  const auto failures = trace::gpu_failure_trace(tcfg);
  ASSERT_GT(failures.size(), 10u) << "the MTBF trace must produce failures";
  sim::RecoveryModelConfig mcfg;
  mcfg.step_s = 0.3;
  const auto result = sim::model_recovery(failures, mcfg);
  EXPECT_EQ(result.failures, static_cast<std::int64_t>(failures.size()));
  EXPECT_LT(result.lost_steps_peer, result.lost_steps_disk)
      << "peer quorum must lose strictly fewer steps";
  EXPECT_LT(result.recovery_s_peer, result.recovery_s_disk)
      << "in-fabric fetch must be faster than the disk restore";
  EXPECT_GT(result.peer_recoveries, 0);
  EXPECT_GE(result.steps_done_peer, result.steps_done_disk);
}

TEST(Recovery, ModelIsDeterministicAndFallsBackWithoutReplicas) {
  trace::FailureTraceConfig tcfg;
  tcfg.cluster = {16, 16, 16};
  const auto failures = trace::gpu_failure_trace(tcfg);
  sim::RecoveryModelConfig mcfg;
  const auto a = sim::model_recovery(failures, mcfg);
  const auto b = sim::model_recovery(failures, mcfg);
  EXPECT_EQ(a.lost_steps_peer, b.lost_steps_peer);
  EXPECT_EQ(a.peer_recoveries, b.peer_recoveries);
  // Zero replicas: the owner copy dies with the rank, every failure walks
  // disk, and the two strategies converge.
  mcfg.peer_replicas = 0;
  const auto none = sim::model_recovery(failures, mcfg);
  EXPECT_EQ(none.peer_recoveries, 0);
  EXPECT_EQ(none.disk_fallbacks, none.failures);
  EXPECT_EQ(none.lost_steps_peer, none.lost_steps_disk);
}

}  // namespace
}  // namespace easyscale::fault
