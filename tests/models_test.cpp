// Workload-zoo tests, parameterized over all Table-1 models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/digest.hpp"
#include "models/datasets.hpp"
#include "models/eval.hpp"
#include "models/profile.hpp"
#include "models/workload.hpp"
#include "optim/sgd.hpp"

namespace easyscale::models {
namespace {

struct Env {
  kernels::ExecContext exec;
  rng::StreamSet streams;
  autograd::StepContext ctx;

  Env() {
    streams.seed_all(9, 0);
    ctx.exec = &exec;
    ctx.rng = &streams;
    ctx.training = true;
  }
};

data::Batch first_batch(const data::Dataset& ds, std::int64_t n) {
  std::vector<data::Sample> samples;
  for (std::int64_t i = 0; i < n; ++i) samples.push_back(ds.get(i));
  return data::collate(samples);
}

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, TrainStepProducesFiniteLossAndGradients) {
  Env env;
  auto workload = make_workload(GetParam());
  workload->init(42);
  auto wd = make_dataset_for(GetParam(), 64, 16, 42);
  const auto batch = first_batch(*wd.train, 8);
  workload->params().zero_grads();
  const float loss = workload->train_step(env.ctx, batch);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
  // Some gradient must be nonzero.
  float grad_norm = 0.0f;
  for (const auto* p : workload->params().all()) {
    for (float g : p->grad.data()) grad_norm += g * g;
  }
  EXPECT_GT(grad_norm, 0.0f);
}

TEST_P(WorkloadTest, InitIsDeterministicAcrossInstances) {
  auto a = make_workload(GetParam());
  auto b = make_workload(GetParam());
  a->init(42);
  b->init(42);
  Digest da, db;
  for (const auto* p : a->params().all()) da.update(p->value.data());
  for (const auto* p : b->params().all()) db.update(p->value.data());
  EXPECT_EQ(da.value(), db.value());
  auto c = make_workload(GetParam());
  c->init(43);
  Digest dc;
  for (const auto* p : c->params().all()) dc.update(p->value.data());
  EXPECT_NE(da.value(), dc.value());
}

TEST_P(WorkloadTest, PredictReturnsOnePerSample) {
  Env env;
  auto workload = make_workload(GetParam());
  workload->init(42);
  auto wd = make_dataset_for(GetParam(), 64, 16, 42);
  const auto batch = first_batch(*wd.train, 6);
  const auto preds = workload->predict(env.ctx, batch);
  EXPECT_EQ(preds.size(), 6u);
}

TEST_P(WorkloadTest, PredictDoesNotPerturbTraining) {
  // Evaluation must not consume training RNG or touch parameters.
  Env env;
  auto workload = make_workload(GetParam());
  workload->init(42);
  auto wd = make_dataset_for(GetParam(), 64, 16, 42);
  const auto batch = first_batch(*wd.train, 4);
  const auto rng_before = env.streams.state();
  Digest before;
  for (const auto* p : workload->params().all()) before.update(p->value.data());
  (void)workload->predict(env.ctx, batch);
  Digest after;
  for (const auto* p : workload->params().all()) after.update(p->value.data());
  EXPECT_EQ(before.value(), after.value());
  EXPECT_TRUE(env.streams.state() == rng_before ||
              GetParam() == "VGG19" || GetParam() == "Bert" ||
              GetParam() == "Electra" || GetParam() == "SwinTransformer")
      << "dropout-free models must not draw RNG in eval";
  EXPECT_TRUE(env.ctx.training);  // mode restored
}

TEST_P(WorkloadTest, ProfileHasPositiveThroughput) {
  for (auto device : {kernels::DeviceType::kV100, kernels::DeviceType::kP100,
                      kernels::DeviceType::kT4}) {
    EXPECT_GT(profiled_throughput(GetParam(), device), 0.0);
  }
  EXPECT_GT(profiled_memory_gb(GetParam()), 0.0);
  // Capability must be monotone in device class.
  EXPECT_GT(profiled_throughput(GetParam(), kernels::DeviceType::kV100),
            profiled_throughput(GetParam(), kernels::DeviceType::kT4));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::ValuesIn(workload_names()));

TEST(WorkloadZoo, D2EligibilitySplitsConvFromAttention) {
  EXPECT_TRUE(make_workload("ResNet50")->uses_vendor_tuned_kernels());
  EXPECT_TRUE(make_workload("ShuffleNetv2")->uses_vendor_tuned_kernels());
  EXPECT_TRUE(make_workload("VGG19")->uses_vendor_tuned_kernels());
  EXPECT_TRUE(make_workload("YOLOv3")->uses_vendor_tuned_kernels());
  EXPECT_FALSE(make_workload("NeuMF")->uses_vendor_tuned_kernels());
  EXPECT_FALSE(make_workload("Bert")->uses_vendor_tuned_kernels());
  EXPECT_FALSE(make_workload("Electra")->uses_vendor_tuned_kernels());
  EXPECT_FALSE(make_workload("SwinTransformer")->uses_vendor_tuned_kernels());
}

TEST(WorkloadZoo, UnknownNameThrows) {
  EXPECT_THROW(make_workload("AlexNet"), Error);
}

TEST(WorkloadZoo, BNModelsExposeBuffers) {
  EXPECT_FALSE(make_workload("ResNet50")->buffers().empty());
  EXPECT_FALSE(make_workload("ShuffleNetv2")->buffers().empty());
  EXPECT_TRUE(make_workload("Bert")->buffers().empty());
}

TEST(WorkloadZoo, ShortTrainingReducesLoss) {
  // ResNet18 on the synthetic data must show actual learning.
  Env env;
  auto workload = make_workload("ResNet18");
  workload->init(42);
  auto wd = make_dataset_for("ResNet18", 64, 32, 42);
  optim::SGD opt(workload->params(), {.lr = 0.05f, .momentum = 0.9f,
                                      .weight_decay = 0.0f});
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 40; ++step) {
    const auto batch = first_batch(*wd.train, 16);
    opt.zero_grad();
    const float loss = workload->train_step(env.ctx, batch);
    if (step == 0) first = loss;
    last = loss;
    opt.step();
  }
  EXPECT_LT(last, first * 0.5f) << "no learning signal";
}

TEST(Eval, PerClassAccuracySumsToOverall) {
  Env env;
  auto workload = make_workload("ResNet18");
  workload->init(42);
  auto wd = make_dataset_for("ResNet18", 64, 50, 42);
  const auto report = evaluate(*workload, *wd.test, 16, 10);
  double weighted = 0.0;
  std::int64_t total = 0;
  for (std::size_t c = 0; c < report.per_class.size(); ++c) {
    weighted += report.per_class[c] * static_cast<double>(report.support[c]);
    total += report.support[c];
  }
  EXPECT_EQ(total, 50);
  EXPECT_NEAR(report.overall, weighted / static_cast<double>(total), 1e-9);
}

}  // namespace
}  // namespace easyscale::models
