#include "optim/sgd.hpp"

#include <cmath>

namespace easyscale::optim {

SGD::SGD(autograd::ParameterStore& params, Options opts)
    : params_(&params), opts_(opts) {
  momentum_.reserve(params.size());
  for (const auto* p : params.all()) {
    momentum_.emplace_back(p->value.shape());
  }
}

void SGD::step() { step_slices(full_slices(*params_)); }

void SGD::step_slices(const std::vector<ParamSlice>& slices) {
  const auto& all = params_->all();
  for (const ParamSlice& s : slices) {
    ES_CHECK(s.param < all.size(), "SGD slice param out of range");
    autograd::Parameter& p = *all[s.param];
    tensor::Tensor& m = momentum_[s.param];
    ES_CHECK(s.begin >= 0 && s.end <= p.numel() && s.begin <= s.end,
             "SGD slice bounds out of range");
    for (std::int64_t j = s.begin; j < s.end; ++j) {
      float g = p.grad.at(j);
      if (opts_.weight_decay != 0.0f) g += opts_.weight_decay * p.value.at(j);
      if (opts_.momentum != 0.0f) {
        m.at(j) = opts_.momentum * m.at(j) + g;
        g = m.at(j);
      }
      p.value.at(j) -= opts_.lr * g;
    }
  }
}

std::vector<tensor::Tensor*> SGD::state_tensors() {
  std::vector<tensor::Tensor*> out;
  out.reserve(momentum_.size());
  for (auto& m : momentum_) out.push_back(&m);
  return out;
}

void SGD::save(ByteWriter& w) const {
  w.write(opts_.lr);
  w.write(opts_.momentum);
  w.write(opts_.weight_decay);
  w.write<std::uint64_t>(momentum_.size());
  for (const auto& m : momentum_) m.save(w);
}

void SGD::load(ByteReader& r) {
  opts_.lr = r.read<float>();
  opts_.momentum = r.read<float>();
  opts_.weight_decay = r.read<float>();
  const auto n = r.read<std::uint64_t>();
  ES_CHECK(n == momentum_.size(), "optimizer state count mismatch");
  for (auto& m : momentum_) m = tensor::Tensor::load(r);
}

void StepLR::set_epoch(std::int64_t epoch) {
  last_epoch_ = epoch;
  const auto decays = epoch / step_size_;
  opt_->set_lr(base_lr_ *
               std::pow(gamma_, static_cast<float>(decays)));
}

void StepLR::save(ByteWriter& w) const {
  w.write(base_lr_);
  w.write(step_size_);
  w.write(gamma_);
  w.write(last_epoch_);
}

void StepLR::load(ByteReader& r) {
  base_lr_ = r.read<float>();
  step_size_ = r.read<std::int64_t>();
  gamma_ = r.read<float>();
  last_epoch_ = r.read<std::int64_t>();
  set_epoch(last_epoch_);
}

}  // namespace easyscale::optim
