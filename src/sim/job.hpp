// Job model for the cluster simulations (§5.2, §5.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/device.hpp"

namespace easyscale::sim {

struct JobSpec {
  std::int64_t id = 0;
  std::string workload = "ResNet50";
  std::int64_t max_p = 4;        // designed DoP (EST count)
  double arrival_s = 0.0;
  std::int64_t total_steps = 1000;  // global steps to completion
  bool allow_heter = true;          // D2-eligible (core::d2_recommended)
  /// Gang request for the YARN-CS baseline: max_p GPUs of this type.
  kernels::DeviceType preferred_type = kernels::DeviceType::kV100;
};

struct JobOutcome {
  std::int64_t id = 0;
  double arrival_s = 0.0;
  double start_s = -1.0;   // first GPU granted
  double finish_s = -1.0;
  [[nodiscard]] double jct() const { return finish_s - arrival_s; }
  [[nodiscard]] double queueing() const { return start_s - arrival_s; }
};

}  // namespace easyscale::sim
