// Failure-aware bucketed ring all-reduce over a simulated Transport.
//
// The resilient collective drives the same NCCL-order ring as
// comm::allreduce_average, but chunk transfers travel through a Transport
// that can drop, stall or corrupt them — or lose a participant outright.
// Detection is deadline-based (receive timeouts + heartbeat silence via
// MembershipMonitor); on any fault the in-flight operation is ABORTED
// (partial reductions are discarded, never published), the group optionally
// shrinks to the survivors, and the collective deterministically
// re-executes from the participants' original, untouched gradients after a
// bounded, jittered backoff.
//
// The determinism consequence is the keystone property: because a retry
// re-runs the exact ring association over the surviving inputs, a run that
// hits a fault mid-collective and recovers produces the SAME BITS as a
// failure-free run at the survivor DoP.  Tests witness this per fault kind.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/allreduce.hpp"
#include "comm/bucket.hpp"
#include "comm/transport.hpp"
#include "common/error.hpp"

namespace easyscale::comm {

/// What to do when a participant is condemned mid-collective.
enum class DeathPolicy : std::uint8_t {
  kShrink = 0,  // survivors re-reduce without the dead rank's contribution
  kAbort = 1,   // throw RankDeathError (ElasticDDP: the step must roll back
                // so the dead worker's ESTs are not silently lost)
};

struct ResilientConfig {
  DeathPolicy on_death = DeathPolicy::kShrink;
  /// Collective re-executions before CollectiveAbortedError.
  int max_attempts = 5;
  BackoffPolicy backoff;
};

/// A participant was condemned while DeathPolicy::kAbort was in force.
class RankDeathError : public Error {
 public:
  RankDeathError(int rank, const std::string& what)
      : Error(what), rank_(rank) {}
  [[nodiscard]] int rank() const { return rank_; }

 private:
  int rank_;
};

/// Retries were exhausted without a clean execution.
class CollectiveAbortedError : public Error {
 public:
  using Error::Error;
};

struct CollectiveIncident {
  LinkFaultKind kind = LinkFaultKind::kDropChunk;
  int rank = 0;     // transport rank the incident was attributed to
  int attempt = 0;  // 1-based attempt during which it was detected
  friend bool operator==(const CollectiveIncident&,
                         const CollectiveIncident&) = default;
};

/// Everything the caller needs for goodput accounting and membership.
struct CollectiveReport {
  bool ok = false;
  int attempts = 0;                // executions incl. the successful one
  std::vector<int> condemned;      // transport ranks declared dead here
  std::vector<int> survivors;      // part indices that hold the result
  double virtual_time_s = 0.0;     // transfer + timeout + backoff time
  double backoff_wait_s = 0.0;     // of which: backoff waits
  std::int64_t capped_backoffs = 0;  // waits clipped at backoff.max_s
  std::vector<CollectiveIncident> incidents;
  /// Share of this collective's virtual comm time hidden under backward
  /// compute, when the overlapped (pipelined) comm path ran it.  0 on the
  /// sequential path.  Filled in by the caller that owns the pipeline
  /// (core::Engine / ddp::Trainer), since only it knows the compute window.
  double overlap_frac = 0.0;
};

/// Merge `piece` (one bucket's collective, from an overlapped per-bucket
/// job) into the step-level `total` report.  Time and incident accounting
/// add up; `survivors` takes the LAST piece's view (membership only shrinks
/// within a step); `ok` ANDs.
void merge_collective_report(CollectiveReport& total,
                             const CollectiveReport& piece);

/// In-place failure-aware bucketed ring all-reduce + average.
///
/// `host_of_part` maps each part to its transport rank (several virtual
/// participants may share one physical host, as ESTs share a worker);
/// nullptr means the identity mapping and requires
/// parts.size() <= transport.world().  Messages between co-hosted parts
/// are local and bypass the fabric.  Parts hosted by a condemned rank are
/// excluded under kShrink; their gradients are left untouched.
///
/// `bucket_ids` restricts the collective to a subset of `layout`'s buckets
/// (nullptr = all, in layout order).  The overlapped comm path issues one
/// single-bucket call per flushed bucket; because each call re-executes the
/// exact per-bucket ring association, the concatenation of subset calls is
/// bitwise identical to one whole-layout call over the same membership.
CollectiveReport resilient_allreduce_average(
    const BucketLayout& layout, std::vector<GradientSet*>& parts,
    Transport& transport, MembershipMonitor& monitor,
    const ResilientConfig& cfg = {},
    const std::vector<int>* host_of_part = nullptr,
    const std::vector<std::size_t>* bucket_ids = nullptr);

}  // namespace easyscale::comm
