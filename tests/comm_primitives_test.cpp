// Reduce-scatter / all-gather primitives and their composition into the
// ring all-reduce.
#include <gtest/gtest.h>

#include "comm/ring.hpp"
#include "common/digest.hpp"
#include "rng/sampling.hpp"

namespace easyscale::comm {
namespace {

TEST(ReduceScatter, ComposesIntoAllreduceBitwise) {
  rng::Philox gen(31);
  const std::size_t n = 101;
  std::vector<std::vector<float>> parts(5, std::vector<float>(n));
  for (auto& p : parts) rng::fill_normal(gen, p, 0.0f, 1.0f);
  std::vector<std::span<const float>> views(parts.begin(), parts.end());

  std::vector<float> allreduce(n);
  ring_allreduce_sum(views, allreduce);

  const auto chunks = ring_chunks(static_cast<std::int64_t>(n), 5);
  std::vector<std::vector<float>> owned;
  for (const auto& c : chunks) {
    owned.emplace_back(static_cast<std::size_t>(c.length));
  }
  std::vector<std::span<float>> owned_views(owned.begin(), owned.end());
  ring_reduce_scatter(views, owned_views);
  std::vector<std::span<const float>> gathered(owned.begin(), owned.end());
  std::vector<float> composed(n);
  ring_all_gather(gathered, composed);
  EXPECT_EQ(digest_floats(allreduce), digest_floats(composed));
}

TEST(ReduceScatter, ChunkSizeMismatchThrows) {
  std::vector<float> a{1, 2, 3, 4};
  std::vector<std::span<const float>> parts{a, a};
  std::vector<float> c0(2), c1(1);  // wrong: chunk 1 should be 2
  std::vector<std::span<float>> out{c0, c1};
  EXPECT_THROW(ring_reduce_scatter(parts, out), Error);
}

TEST(AllGather, PreservesOrderAndRejectsBadSizes) {
  std::vector<float> a{1, 2}, b{3}, c{4, 5, 6};
  std::vector<std::span<const float>> chunks{a, b, c};
  std::vector<float> out(6);
  ring_all_gather(chunks, out);
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 4, 5, 6}));
  std::vector<float> small(5);
  EXPECT_THROW(ring_all_gather(chunks, small), Error);
  std::vector<float> big(7);
  EXPECT_THROW(ring_all_gather(chunks, big), Error);
}

TEST(ReduceScatter, SingleParticipantIsIdentity) {
  std::vector<float> a{1.5f, -2.0f, 7.0f};
  std::vector<std::span<const float>> parts{a};
  std::vector<float> c0(3);
  std::vector<std::span<float>> out{c0};
  ring_reduce_scatter(parts, out);
  EXPECT_EQ(c0, a);
}

}  // namespace
}  // namespace easyscale::comm
