#include "baselines/virtualflow.hpp"

#include "common/digest.hpp"

namespace easyscale::baselines {

VirtualFlowTrainer::VirtualFlowTrainer(VirtualFlowConfig config,
                                       const data::Dataset& train,
                                       const data::AugmentConfig& augment)
    : config_(std::move(config)), train_(&train), augment_(augment) {
  ES_CHECK(config_.virtual_nodes > 0, "need at least one virtual node");
  for (std::int64_t v = 0; v < config_.virtual_nodes; ++v) {
    pipelines_.emplace_back(train, augment_, config_.virtual_nodes, v,
                            config_.batch_per_virtual, config_.seed);
  }
}

void VirtualFlowTrainer::reconfigure(std::int64_t world) {
  ES_CHECK(world > 0 && world <= config_.virtual_nodes,
           "physical world must be in [1, virtual_nodes]");
  std::vector<tensor::Tensor> saved;
  if (!replicas_.empty()) {
    for (const auto* p : replicas_[0].workload->params().all()) {
      saved.push_back(p->value);
    }
  }
  replicas_.clear();
  replicas_.resize(static_cast<std::size_t>(world));
  for (std::int64_t r = 0; r < world; ++r) {
    Replica& rep = replicas_[static_cast<std::size_t>(r)];
    rep.workload = models::make_workload(config_.workload);
    rep.workload->init(config_.seed);
    rep.optimizer =
        optim::make_optimizer(rep.workload->params(), config_.optim);
    rep.streams.seed_all(config_.seed, static_cast<std::uint64_t>(r));
    // Strided virtual-node assignment (VirtualFlow's static mapping).
    for (std::int64_t v = r; v < config_.virtual_nodes; v += world) {
      rep.virtual_nodes.push_back(v);
    }
    if (!saved.empty()) {
      const auto& params = rep.workload->params().all();
      for (std::size_t i = 0; i < params.size(); ++i) {
        params[i]->value = saved[i];
      }
    }
  }
  comm::BucketManager mgr(replicas_[0].workload->params(),
                          config_.bucket_cap_bytes);
  layout_ = mgr.initial_layout();
  rebuilt_ = false;  // the restart rebuilds communication state
}

void VirtualFlowTrainer::one_step() {
  ES_CHECK(!replicas_.empty(), "reconfigure before running");
  autograd::GradReadyRecorder recorder;
  float last_loss = 0.0f;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    Replica& rep = replicas_[r];
    rep.workload->params().zero_grads();
    // Gradient accumulation: micro-batches of all owned virtual nodes run
    // back to back on the physical worker, sharing its RNG stream and BN
    // buffers — the consistency gap vs EasyScale's per-EST contexts.
    for (std::size_t k = 0; k < rep.virtual_nodes.size(); ++k) {
      const std::int64_t v = rep.virtual_nodes[k];
      autograd::StepContext ctx;
      ctx.exec = &rep.exec;
      ctx.rng = &rep.streams;
      ctx.training = true;
      if (r == 0 && k == 0 && !rebuilt_) {
        recorder.begin(rep.workload->params().size());
        ctx.grad_ready = &recorder;
      }
      const data::Batch batch =
          pipelines_[static_cast<std::size_t>(v)].next();
      const float loss = rep.workload->train_step(ctx, batch);
      if (v == config_.virtual_nodes - 1) last_loss = loss;
    }
  }
  // All-reduce over the physical world, averaging by the virtual count so
  // the effective update matches DDP's global-batch mean.
  std::vector<comm::GradientSet> sets;
  sets.reserve(replicas_.size());
  for (auto& rep : replicas_) {
    sets.push_back(comm::GradientSet::from_store(rep.workload->params()));
  }
  std::vector<comm::GradientSet*> parts;
  for (auto& s : sets) parts.push_back(&s);
  comm::allreduce_average(layout_, parts);
  // allreduce_average divides by the physical world; rescale to the mean
  // over virtual nodes.
  const float fix = static_cast<float>(replicas_.size()) /
                    static_cast<float>(config_.virtual_nodes);
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    for (auto& g : sets[r].grads) {
      for (auto& x : g.data()) x *= fix;
    }
    sets[r].to_store(replicas_[r].workload->params());
    replicas_[r].optimizer->step();
  }
  if (!rebuilt_ && !recorder.order().empty()) {
    comm::BucketManager mgr(replicas_[0].workload->params(),
                            config_.bucket_cap_bytes);
    layout_ = mgr.layout_from_ready_order(recorder.order());
    rebuilt_ = true;
  }
  losses_.push_back(last_loss);
}

void VirtualFlowTrainer::run_steps(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) one_step();
}

std::uint64_t VirtualFlowTrainer::params_digest() const {
  Digest d;
  for (const auto* p : replicas_[0].workload->params().all()) {
    d.update(p->value.data());
  }
  return d.value();
}

}  // namespace easyscale::baselines
