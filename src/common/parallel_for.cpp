#include "common/parallel_for.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>

#include "common/env.hpp"
#include "common/error.hpp"

namespace easyscale {

namespace {
thread_local int tls_parallel_depth = 0;
}  // namespace

/// Shared state of one parallel_for call.  Lives on the caller's stack
/// inside a shared_ptr so helper tasks that wake after the caller has been
/// released can still touch the bookkeeping safely; chunk bodies can never
/// run after the caller returns because every chunk is claimed-and-finished
/// before `done == chunks` becomes true.
struct ComputePool::Job {
  const ChunkFn* body = nullptr;
  std::int64_t n = 0;
  int chunks = 0;
  std::mutex mutex;
  std::condition_variable cv;
  int next = 0;
  int done = 0;
  std::exception_ptr error;
};

ComputePool::ComputePool(std::size_t helpers) {
  if (helpers > 0) pool_ = std::make_unique<ThreadPool>(helpers);
}

ComputePool::~ComputePool() = default;

ComputePool& ComputePool::global() {
  // Leaked on purpose: helper threads must outlive every static object
  // that might issue a parallel_for during program teardown.
  static ComputePool* pool = new ComputePool(
      static_cast<std::size_t>(std::max(0, env_default_threads() - 1)));
  return *pool;
}

int ComputePool::env_default_threads() {
  // Strict: "4x", "", whitespace or out-of-range values throw an Error
  // naming EASYSCALE_THREADS (common/env.hpp) instead of silently clamping
  // to something the user did not ask for.  Cached because the global pool
  // is sized once; parse_env_threads() is the uncached testable core.
  static const int cached = parse_env_threads();
  return cached;
}

int ComputePool::parse_env_threads() {
  return static_cast<int>(env_int64("EASYSCALE_THREADS", 1, 256).value_or(1));
}

bool ComputePool::in_parallel_region() { return tls_parallel_depth > 0; }

void ComputePool::ensure_helpers(std::size_t n) {
  std::lock_guard<std::mutex> lock(grow_mutex_);
  if (pool_ == nullptr) {
    if (n > 0) pool_ = std::make_unique<ThreadPool>(n);
    return;
  }
  const std::size_t have = pool_->size();
  if (n > have) pool_->add_threads(n - have);
}

std::size_t ComputePool::helpers() const {
  std::lock_guard<std::mutex> lock(grow_mutex_);
  return pool_ == nullptr ? 0 : pool_->size();
}

void ComputePool::run_chunks(Job& job) {
  // Balanced static split: the first (n % chunks) chunks get one extra
  // element.  Boundaries depend only on (n, chunks).
  const std::int64_t base = job.n / job.chunks;
  const std::int64_t rem = job.n % job.chunks;
  for (;;) {
    int c;
    {
      std::lock_guard<std::mutex> lock(job.mutex);
      if (job.next >= job.chunks) return;
      c = job.next++;
    }
    const std::int64_t begin = c * base + std::min<std::int64_t>(c, rem);
    const std::int64_t end = begin + base + (c < rem ? 1 : 0);
    ++tls_parallel_depth;
    try {
      (*job.body)(c, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.mutex);
      if (!job.error) job.error = std::current_exception();
    }
    --tls_parallel_depth;
    {
      std::lock_guard<std::mutex> lock(job.mutex);
      if (++job.done == job.chunks) job.cv.notify_all();
    }
  }
}

void ComputePool::parallel_for(int ways, std::int64_t n, std::int64_t grain,
                               const ChunkFn& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const std::int64_t max_chunks = (n + grain - 1) / grain;
  const int chunks = static_cast<int>(
      std::min<std::int64_t>(std::max(ways, 1), max_chunks));
  if (chunks <= 1 || in_parallel_region()) {
    body(0, 0, n);
    return;
  }
  ensure_helpers(static_cast<std::size_t>(chunks - 1));

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->n = n;
  job->chunks = chunks;
  {
    std::lock_guard<std::mutex> lock(grow_mutex_);
    if (pool_ != nullptr) {
      const int tasks = static_cast<int>(
          std::min<std::size_t>(static_cast<std::size_t>(chunks - 1),
                                pool_->size()));
      for (int t = 0; t < tasks; ++t) {
        pool_->submit([job] { run_chunks(*job); });
      }
    }
  }
  // The caller claims chunks too, so progress never depends on helper
  // availability (a zero-helper pool degrades to sequential execution).
  run_chunks(*job);
  std::unique_lock<std::mutex> lock(job->mutex);
  job->cv.wait(lock, [&job] { return job->done == job->chunks; });
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace easyscale
