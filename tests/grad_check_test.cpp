// Finite-difference gradient checks over the whole model zoo, swept across
// every SIMD backend the host can run (the `gradcheck` ctest tier).
//
// Each check reseeds the RNG streams and restores per-worker buffers
// (BatchNorm running stats) before every loss evaluation, so forward
// passes are pure functions of the parameters — dropout masks and
// augmentation draws replay identically.  Central differences
// (L(t+h) - L(t-h)) / 2h then validate the analytic backward pass, and a
// digest compare asserts the analytic gradients themselves are bitwise
// identical on every backend (the lane-tree contract, end to end).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/digest.hpp"
#include "kernels/simd.hpp"
#include "models/datasets.hpp"
#include "models/workload.hpp"

namespace easyscale::models {
namespace {

constexpr std::uint64_t kSeed = 1234;

data::Batch first_batch(const data::Dataset& ds, std::int64_t n) {
  std::vector<data::Sample> samples;
  for (std::int64_t i = 0; i < n; ++i) samples.push_back(ds.get(i));
  return data::collate(samples);
}

struct GradCheckEnv {
  std::unique_ptr<Workload> workload;
  data::Batch batch;
  kernels::ExecContext exec;
  rng::StreamSet streams;
  autograd::StepContext ctx;
  std::vector<tensor::Tensor> buffer_snapshot;

  GradCheckEnv(const std::string& name, kernels::SimdBackend backend) {
    workload = make_workload(name);
    workload->init(42);
    auto wd = make_dataset_for(name, 32, 8, 42);
    batch = first_batch(*wd.train, 4);
    exec.policy = kernels::KernelPolicy::kDeterministic;
    exec.simd = backend;
    exec.intra_op_threads = 1;
    ctx.exec = &exec;
    ctx.rng = &streams;
    ctx.training = true;
    for (tensor::Tensor* b : workload->buffers()) buffer_snapshot.push_back(*b);
  }

  /// One deterministic loss evaluation: same RNG draws, same buffer state.
  float eval_loss() {
    auto buffers = workload->buffers();
    for (std::size_t i = 0; i < buffers.size(); ++i) {
      *buffers[i] = buffer_snapshot[i];
    }
    streams.seed_all(kSeed, 0);
    workload->params().zero_grads();
    return workload->train_step(ctx, batch);
  }
};

class GradCheckTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GradCheckTest, FiniteDifferencesMatchBackwardOnEveryBackend) {
  std::optional<std::uint64_t> scalar_digest;
  for (kernels::SimdBackend backend : kernels::available_simd_backends()) {
    SCOPED_TRACE(kernels::simd_backend_name(backend));
    GradCheckEnv env(GetParam(), backend);
    const float base_loss = env.eval_loss();
    ASSERT_TRUE(std::isfinite(base_loss));

    // Snapshot analytic gradients; their digest must be identical on every
    // backend (bitwise lane-tree contract through full forward+backward).
    auto& params = env.workload->params();
    Digest grad_digest;
    for (const auto* p : params.all()) grad_digest.update(p->grad.data());
    if (!scalar_digest.has_value()) {
      scalar_digest = grad_digest.value();
    } else {
      EXPECT_EQ(grad_digest.value(), *scalar_digest);
    }
    std::vector<std::vector<float>> analytic;
    analytic.reserve(params.size());
    for (const auto* p : params.all()) {
      analytic.emplace_back(p->grad.data().begin(), p->grad.data().end());
    }

    // Sample up to 6 parameters spread across the store; per parameter
    // check the largest-magnitude gradient entry plus the middle entry.
    const std::size_t num_params = params.size();
    const std::size_t step = std::max<std::size_t>(1, num_params / 6);
    int checked = 0;
    for (std::size_t pi = 0; pi < num_params; pi += step) {
      auto& p = params.at(static_cast<int>(pi));
      const auto& g = analytic[pi];
      std::size_t max_i = 0;
      for (std::size_t i = 1; i < g.size(); ++i) {
        if (std::abs(g[i]) > std::abs(g[max_i])) max_i = i;
      }
      std::vector<std::size_t> indices = {max_i};
      if (g.size() > 1) indices.push_back(g.size() / 2);
      for (std::size_t i : indices) {
        const float theta = p.value.at(static_cast<std::int64_t>(i));
        const float h =
            5e-3f * std::max(1.0f, std::abs(theta));  // central diff step
        p.value.at(static_cast<std::int64_t>(i)) = theta + h;
        const float lp = env.eval_loss();
        p.value.at(static_cast<std::int64_t>(i)) = theta - h;
        const float lm = env.eval_loss();
        p.value.at(static_cast<std::int64_t>(i)) = theta;
        const float fd = (lp - lm) / (2.0f * h);
        const float an = g[i];
        // Relative check with an absolute floor: float32 central
        // differences resolve gradients down to roughly 1e-3 here.
        const float denom = std::max(1.0f, std::abs(fd) + std::abs(an));
        EXPECT_LT(std::abs(fd - an) / denom, 8e-2f)
            << p.name << "[" << i << "] fd=" << fd << " analytic=" << an;
        ++checked;
      }
    }
    EXPECT_GT(checked, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, GradCheckTest,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace easyscale::models
