// A small fixed-size thread pool.
//
// EasyScale uses it for the shared data-worker pool (§3.2 "Optimizing data
// pre-processing") and for physically-parallel worker execution in the
// throughput benches.  All *determinism-relevant* work is ordered by the
// caller (e.g. the data-loader commits results through an index-ordered
// queue), so pool scheduling order never affects training results.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace easyscale {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution on any pool thread.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Grow the pool by `count` additional worker threads.  Safe to call
  /// while tasks are in flight (the intra-op ComputePool grows lazily to
  /// the largest thread count any ExecContext requests).
  void add_threads(std::size_t count);

  [[nodiscard]] std::size_t size() const;

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace easyscale
