#include "models/neumf.hpp"

#include "tensor/ops.hpp"

namespace easyscale::models {

using tensor::Shape;
using tensor::Tensor;

NeuMF::NeuMF(std::int64_t num_users, std::int64_t num_items, std::int64_t dim)
    : dim_(dim),
      gmf_user_("gmf.user", num_users, dim),
      gmf_item_("gmf.item", num_items, dim),
      mlp_user_("mlp.user", num_users, dim),
      mlp_item_("mlp.item", num_items, dim),
      mlp_fc_("mlp.fc", 2 * dim, dim),
      out_fc_("out", 2 * dim, 1) {
  gmf_user_.register_parameters(params_);
  gmf_item_.register_parameters(params_);
  mlp_user_.register_parameters(params_);
  mlp_item_.register_parameters(params_);
  mlp_fc_.register_parameters(params_);
  out_fc_.register_parameters(params_);
}

void NeuMF::init(std::uint64_t seed) {
  rng::Philox gen(rng::derive_stream_key(seed, 0, 41));
  gmf_user_.init_weights(gen);
  gmf_item_.init_weights(gen);
  mlp_user_.init_weights(gen);
  mlp_item_.init_weights(gen);
  mlp_fc_.init_weights(gen);
  out_fc_.init_weights(gen);
}

tensor::Tensor NeuMF::forward(autograd::StepContext& ctx,
                              const data::Batch& batch, ForwardCache& cache) {
  ES_CHECK(batch.ids.shape().rank() == 2 && batch.ids.shape().dim(1) == 2,
           "NeuMF expects (user, item) id pairs");
  const std::int64_t n = batch.ids.shape().dim(0);
  cache.users = tensor::LongTensor(Shape{n});
  cache.items = tensor::LongTensor(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    cache.users.at(i) = batch.ids.at(i * 2);
    cache.items.at(i) = batch.ids.at(i * 2 + 1);
  }
  cache.gmf_u = gmf_user_.forward(ctx, cache.users);
  cache.gmf_i = gmf_item_.forward(ctx, cache.items);
  cache.mlp_u = mlp_user_.forward(ctx, cache.users);
  cache.mlp_i = mlp_item_.forward(ctx, cache.items);
  // GMF: elementwise product.
  cache.gmf_vec = tensor::Tensor(Shape{n, dim_});
  tensor::mul(ctx.ex(), cache.gmf_u, cache.gmf_i, cache.gmf_vec);
  // MLP: concat -> fc -> relu.
  cache.mlp_hidden_in = tensor::Tensor(Shape{n, 2 * dim_});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t d = 0; d < dim_; ++d) {
      cache.mlp_hidden_in.at(i * 2 * dim_ + d) = cache.mlp_u.at(i * dim_ + d);
      cache.mlp_hidden_in.at(i * 2 * dim_ + dim_ + d) =
          cache.mlp_i.at(i * dim_ + d);
    }
  }
  Tensor hidden = mlp_fc_.forward(ctx, cache.mlp_hidden_in);
  hidden = mlp_act_.forward(ctx, hidden);
  // Fuse: concat(gmf, mlp) -> out.
  Tensor fused(Shape{n, 2 * dim_});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t d = 0; d < dim_; ++d) {
      fused.at(i * 2 * dim_ + d) = cache.gmf_vec.at(i * dim_ + d);
      fused.at(i * 2 * dim_ + dim_ + d) = hidden.at(i * dim_ + d);
    }
  }
  return out_fc_.forward(ctx, fused).reshaped(Shape{n});
}

float NeuMF::train_step(autograd::StepContext& ctx, const data::Batch& batch) {
  Tensor logits = forward(ctx, batch, cache_);
  const std::int64_t n = logits.numel();
  Tensor targets = batch.target.reshaped(Shape{n});
  const float loss = loss_.forward(ctx, logits, targets);
  // Backward through the fused head.
  Tensor g_out = loss_.backward().reshaped(Shape{n, 1});
  Tensor g_fused = out_fc_.backward(ctx, g_out);
  Tensor g_gmf(Shape{n, dim_}), g_hidden(Shape{n, dim_});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t d = 0; d < dim_; ++d) {
      g_gmf.at(i * dim_ + d) = g_fused.at(i * 2 * dim_ + d);
      g_hidden.at(i * dim_ + d) = g_fused.at(i * 2 * dim_ + dim_ + d);
    }
  }
  // MLP branch.
  Tensor g_h = mlp_act_.backward(ctx, g_hidden);
  Tensor g_concat = mlp_fc_.backward(ctx, g_h);
  Tensor g_mlp_u(Shape{n, dim_}), g_mlp_i(Shape{n, dim_});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t d = 0; d < dim_; ++d) {
      g_mlp_u.at(i * dim_ + d) = g_concat.at(i * 2 * dim_ + d);
      g_mlp_i.at(i * dim_ + d) = g_concat.at(i * 2 * dim_ + dim_ + d);
    }
  }
  mlp_user_.backward(ctx, cache_.users, g_mlp_u);
  mlp_item_.backward(ctx, cache_.items, g_mlp_i);
  // GMF branch: d(u*i)/du = i, /di = u.
  Tensor g_gmf_u(Shape{n, dim_}), g_gmf_i(Shape{n, dim_});
  tensor::mul(ctx.ex(), g_gmf, cache_.gmf_i, g_gmf_u);
  tensor::mul(ctx.ex(), g_gmf, cache_.gmf_u, g_gmf_i);
  gmf_user_.backward(ctx, cache_.users, g_gmf_u);
  gmf_item_.backward(ctx, cache_.items, g_gmf_i);
  return loss;
}

std::vector<std::int64_t> NeuMF::predict(autograd::StepContext& ctx,
                                         const data::Batch& batch) {
  const bool was_training = ctx.training;
  ctx.training = false;
  ForwardCache scratch;
  Tensor logits = forward(ctx, batch, scratch);
  ctx.training = was_training;
  std::vector<std::int64_t> out(static_cast<std::size_t>(logits.numel()));
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    out[static_cast<std::size_t>(i)] = logits.at(i) > 0.0f ? 1 : 0;
  }
  return out;
}

}  // namespace easyscale::models
