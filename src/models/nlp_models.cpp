#include "models/nlp_models.hpp"

#include "tensor/ops.hpp"

namespace easyscale::models {

using tensor::LongTensor;

QATransformer::QATransformer(std::string model_name, std::int64_t vocab,
                             std::int64_t seq_len, std::int64_t dim,
                             std::int64_t heads, std::int64_t ff_dim,
                             std::int64_t num_blocks, float dropout_p)
    : model_name_(std::move(model_name)),
      vocab_(vocab),
      seq_len_(seq_len),
      dim_(dim),
      token_emb_(model_name_ + ".tok", vocab, dim),
      pos_emb_(model_name_ + ".pos", Shape{seq_len, dim}),
      emb_drop_(dropout_p),
      span_head_(model_name_ + ".span", dim, 1) {
  token_emb_.register_parameters(params_);
  params_.register_parameter(&pos_emb_);
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        model_name_ + ".block" + std::to_string(b), dim, heads, ff_dim,
        dropout_p));
    blocks_.back()->register_parameters(params_);
  }
  span_head_.register_parameters(params_);
}

void QATransformer::init(std::uint64_t seed) {
  rng::Philox gen(rng::derive_stream_key(seed, 0, 41));
  token_emb_.init_weights(gen);
  nn::normal_init(gen, pos_emb_.value, 0.05f);
  for (auto& b : blocks_) b->init_weights(gen);
  span_head_.init_weights(gen);
}

Tensor QATransformer::encode(autograd::StepContext& ctx,
                             const LongTensor& ids) {
  const std::int64_t n = ids.shape().dim(0);
  const std::int64_t t = ids.shape().dim(1);
  ES_CHECK(t == seq_len_, "QA sequence length mismatch");
  cached_flat_ids_ = LongTensor(
      Shape{n * t}, std::vector<std::int64_t>(ids.data().begin(),
                                              ids.data().end()));
  Tensor h = token_emb_.forward(ctx, cached_flat_ids_);  // [N*T, D]
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t p = 0; p < t; ++p) {
      float* row = h.raw() + (i * t + p) * dim_;
      const float* pos = pos_emb_.value.raw() + p * dim_;
      for (std::int64_t d = 0; d < dim_; ++d) row[d] += pos[d];
    }
  }
  h = emb_drop_.forward(ctx, h).reshaped(Shape{n, t, dim_});
  for (auto& b : blocks_) h = b->forward(ctx, h);
  return h;
}

float QATransformer::train_step(autograd::StepContext& ctx,
                                const data::Batch& batch) {
  const std::int64_t n = batch.ids.shape().dim(0);
  Tensor h = encode(ctx, batch.ids);  // [N, T, D]
  Tensor logits =
      span_head_.forward(ctx, h.reshaped(Shape{n * seq_len_, dim_}))
          .reshaped(Shape{n, seq_len_});
  const float loss = loss_.forward(ctx, logits, batch.y);
  Tensor g = loss_.backward().reshaped(Shape{n * seq_len_, 1});
  Tensor gh = span_head_.backward(ctx, g).reshaped(Shape{n, seq_len_, dim_});
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    gh = (*it)->backward(ctx, gh);
  }
  Tensor g_flat =
      emb_drop_.backward(ctx, gh.reshaped(Shape{n * seq_len_, dim_}));
  // Position embedding gradient: sum over batch rows.
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t p = 0; p < seq_len_; ++p) {
      const float* row = g_flat.raw() + (i * seq_len_ + p) * dim_;
      float* dst = pos_emb_.grad.raw() + p * dim_;
      for (std::int64_t d = 0; d < dim_; ++d) dst[d] += row[d];
    }
  }
  ctx.mark_ready(pos_emb_.id);
  token_emb_.backward(ctx, cached_flat_ids_, g_flat);
  return loss;
}

std::vector<std::int64_t> QATransformer::predict(autograd::StepContext& ctx,
                                                 const data::Batch& batch) {
  const bool was_training = ctx.training;
  ctx.training = false;
  const std::int64_t n = batch.ids.shape().dim(0);
  Tensor h = encode(ctx, batch.ids);
  Tensor logits =
      span_head_.forward(ctx, h.reshaped(Shape{n * seq_len_, dim_}))
          .reshaped(Shape{n, seq_len_});
  ctx.training = was_training;
  return tensor::argmax_rows(logits);
}

std::unique_ptr<QATransformer> make_bert_mini() {
  return std::make_unique<QATransformer>("Bert", /*vocab=*/64, /*seq_len=*/16,
                                         /*dim=*/32, /*heads=*/2,
                                         /*ff_dim=*/64, /*num_blocks=*/2,
                                         /*dropout_p=*/0.1f);
}

std::unique_ptr<QATransformer> make_electra_mini() {
  return std::make_unique<QATransformer>("Electra", /*vocab=*/64,
                                         /*seq_len=*/16, /*dim=*/16,
                                         /*heads=*/2, /*ff_dim=*/32,
                                         /*num_blocks=*/1,
                                         /*dropout_p=*/0.1f);
}

namespace {

constexpr std::int64_t kTokens = SwinMini::kGrid* SwinMini::kGrid;

}  // namespace

SwinMini::SwinMini()
    : patch_embed_("swin.patch", 3 * kPatch * kPatch, kDim),
      block_("swin.win", kDim, 2, 32, 0.1f),
      block2_("swin.glob", kDim, 2, 32, 0.1f),
      head_("swin.head", kDim, 10) {
  patch_embed_.register_parameters(params_);
  block_.register_parameters(params_);
  block2_.register_parameters(params_);
  head_.register_parameters(params_);
}

void SwinMini::init(std::uint64_t seed) {
  rng::Philox gen(rng::derive_stream_key(seed, 0, 41));
  patch_embed_.init_weights(gen);
  block_.init_weights(gen);
  block2_.init_weights(gen);
  head_.init_weights(gen);
}

namespace {

/// token grid (kGrid x kGrid) -> windows [N * nwin, wlen, D] mapping.
struct WindowMap {
  // For token index t (row-major in the grid), its (window, slot).
  static void locate(std::int64_t tok, std::int64_t& win, std::int64_t& slot) {
    const std::int64_t y = tok / SwinMini::kGrid;
    const std::int64_t x = tok % SwinMini::kGrid;
    const std::int64_t wside = SwinMini::kGrid / SwinMini::kWindow;
    win = (y / SwinMini::kWindow) * wside + (x / SwinMini::kWindow);
    slot = (y % SwinMini::kWindow) * SwinMini::kWindow +
           (x % SwinMini::kWindow);
  }
};

}  // namespace

Tensor SwinMini::forward_logits(autograd::StepContext& ctx,
                                const Tensor& images) {
  const std::int64_t n = images.shape().dim(0);
  cached_batch_ = n;
  ES_CHECK(images.shape().dim(2) == kGrid * kPatch &&
               images.shape().dim(3) == kGrid * kPatch,
           "Swin expects " << kGrid * kPatch << "x" << kGrid * kPatch
                           << " images");
  // Extract patches -> [N*tokens, 3*patch*patch].
  const std::int64_t pdim = 3 * kPatch * kPatch;
  const std::int64_t side = kGrid * kPatch;
  Tensor patches(Shape{n * kTokens, pdim});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t py = 0; py < kGrid; ++py) {
      for (std::int64_t px = 0; px < kGrid; ++px) {
        float* dst = patches.raw() + ((s * kTokens) + py * kGrid + px) * pdim;
        std::int64_t o = 0;
        for (std::int64_t c = 0; c < 3; ++c) {
          for (std::int64_t dy = 0; dy < kPatch; ++dy) {
            for (std::int64_t dx = 0; dx < kPatch; ++dx, ++o) {
              dst[o] = images.at(((s * 3 + c) * side + py * kPatch + dy) *
                                     side +
                                 px * kPatch + dx);
            }
          }
        }
      }
    }
  }
  Tensor tokens = patch_embed_.forward(ctx, patches);  // [N*tokens, D]
  // Window partition -> [N*nwin, wlen, D].
  const std::int64_t nwin = kTokens / (kWindow * kWindow);
  const std::int64_t wlen = kWindow * kWindow;
  Tensor windows(Shape{n * nwin, wlen, kDim});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t tok = 0; tok < kTokens; ++tok) {
      std::int64_t win, slot;
      WindowMap::locate(tok, win, slot);
      const float* src = tokens.raw() + (s * kTokens + tok) * kDim;
      float* dst = windows.raw() + ((s * nwin + win) * wlen + slot) * kDim;
      for (std::int64_t d = 0; d < kDim; ++d) dst[d] = src[d];
    }
  }
  windows = block_.forward(ctx, windows);
  // Merge back to the full token sequence and run a global block.
  Tensor merged(Shape{n, kTokens, kDim});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t tok = 0; tok < kTokens; ++tok) {
      std::int64_t win, slot;
      WindowMap::locate(tok, win, slot);
      const float* src =
          windows.raw() + ((s * nwin + win) * wlen + slot) * kDim;
      float* dst = merged.raw() + (s * kTokens + tok) * kDim;
      for (std::int64_t d = 0; d < kDim; ++d) dst[d] = src[d];
    }
  }
  cached_tokens_ = block2_.forward(ctx, merged);  // [N, tokens, D]
  // Mean-pool tokens.
  Tensor pooled(Shape{n, kDim});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t d = 0; d < kDim; ++d) {
      float acc = 0.0f;
      for (std::int64_t tok = 0; tok < kTokens; ++tok) {
        acc += cached_tokens_.at((s * kTokens + tok) * kDim + d);
      }
      pooled.at(s * kDim + d) = acc / static_cast<float>(kTokens);
    }
  }
  return head_.forward(ctx, pooled);
}

Tensor SwinMini::backward_from_logits(autograd::StepContext& ctx,
                                      const Tensor& grad_logits) {
  const std::int64_t n = cached_batch_;
  Tensor g_pooled = head_.backward(ctx, grad_logits);  // [N, D]
  Tensor g_tokens(Shape{n, kTokens, kDim});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t tok = 0; tok < kTokens; ++tok) {
      for (std::int64_t d = 0; d < kDim; ++d) {
        g_tokens.at((s * kTokens + tok) * kDim + d) =
            g_pooled.at(s * kDim + d) / static_cast<float>(kTokens);
      }
    }
  }
  Tensor g_merged = block2_.backward(ctx, g_tokens);
  const std::int64_t nwin = kTokens / (kWindow * kWindow);
  const std::int64_t wlen = kWindow * kWindow;
  Tensor g_windows(Shape{n * nwin, wlen, kDim});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t tok = 0; tok < kTokens; ++tok) {
      std::int64_t win, slot;
      WindowMap::locate(tok, win, slot);
      const float* src = g_merged.raw() + (s * kTokens + tok) * kDim;
      float* dst = g_windows.raw() + ((s * nwin + win) * wlen + slot) * kDim;
      for (std::int64_t d = 0; d < kDim; ++d) dst[d] = src[d];
    }
  }
  Tensor g_win_in = block_.backward(ctx, g_windows);
  Tensor g_flat(Shape{n * kTokens, kDim});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t tok = 0; tok < kTokens; ++tok) {
      std::int64_t win, slot;
      WindowMap::locate(tok, win, slot);
      const float* src =
          g_win_in.raw() + ((s * nwin + win) * wlen + slot) * kDim;
      float* dst = g_flat.raw() + (s * kTokens + tok) * kDim;
      for (std::int64_t d = 0; d < kDim; ++d) dst[d] = src[d];
    }
  }
  return patch_embed_.backward(ctx, g_flat);
}

float SwinMini::train_step(autograd::StepContext& ctx,
                           const data::Batch& batch) {
  Tensor logits = forward_logits(ctx, batch.x);
  const float loss = loss_.forward(ctx, logits, batch.y);
  backward_from_logits(ctx, loss_.backward());
  return loss;
}

std::vector<std::int64_t> SwinMini::predict(autograd::StepContext& ctx,
                                            const data::Batch& batch) {
  const bool was_training = ctx.training;
  ctx.training = false;
  Tensor logits = forward_logits(ctx, batch.x);
  ctx.training = was_training;
  return tensor::argmax_rows(logits);
}

}  // namespace easyscale::models
