// SDC-defense false-positive soak.
//
// The re-execution witness condemns hardware on a single digest mismatch,
// so its false-positive rate must be ZERO: on a healthy fleet every witness
// replay is a deterministic re-run and must match bit for bit.  Each seed
// varies the training run (engine seed, worker count, witness cadence) and
// layers a CLASSIC fault schedule (crashes, revocations, stragglers) on
// top with SDC injection disabled — recoveries, EST remaps and checkpoint
// walk-backs must never trip the witness or cost a verified checkpoint.
// CI sweeps many seeds via EASYSCALE_SOAK_SEEDS (ctest -L soak), plain and
// under TSan; the default stays small so a local `ctest` run is quick.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/checkpoint_manager.hpp"
#include "core/engine.hpp"
#include "fault/injector.hpp"
#include "fault/supervisor.hpp"
#include "models/datasets.hpp"

namespace easyscale::fault {
namespace {

int soak_seed_count() {
  if (const char* env = std::getenv("EASYSCALE_SOAK_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 4;
}

TEST(SdcSoak, WitnessNeverFalsePositivesOnHealthyDevices) {
  const int seeds = soak_seed_count();
  auto wd = models::make_dataset_for("NeuMF", 128, 16, 42);
  constexpr std::int64_t kSteps = 16;
  for (int s = 0; s < seeds; ++s) {
    core::EasyScaleConfig ecfg;
    ecfg.workload = "NeuMF";
    ecfg.num_ests = 4;
    ecfg.batch_per_est = 4;
    ecfg.seed = 42 + static_cast<std::uint64_t>(s);
    const std::int64_t workers = 2 + s % 3;

    // Reference digest for this engine seed (no faults, no witness).
    std::uint64_t clean = 0;
    {
      core::EasyScaleEngine ref(ecfg, *wd.train, wd.augment);
      ref.configure_workers(
          std::vector<core::WorkerSpec>(static_cast<std::size_t>(workers)));
      ref.run_steps(kSteps);
      clean = ref.params_digest();
    }

    // Classic faults only: every SDC rate stays zero, so any witness
    // mismatch or failed verification is a false positive by definition.
    FaultPlanConfig pcfg;
    pcfg.seed = 0x50DC + static_cast<std::uint64_t>(s) * 0x9E3779B97F4A7C15ull;
    pcfg.horizon_steps = kSteps;
    pcfg.num_workers = workers;
    pcfg.crash_rate = 0.10;
    pcfg.revocation_rate = 0.05;
    pcfg.straggler_rate = 0.05;
    ASSERT_EQ(FaultInjector::from_config(pcfg).schedule(),
              FaultInjector::from_config(pcfg).schedule())
        << "seed " << s;

    core::EasyScaleEngine engine(ecfg, *wd.train, wd.augment);
    core::CheckpointManager mgr(
        std::string(::testing::TempDir()) + "/sdc_soak_" + std::to_string(s),
        4);
    mgr.clear();
    SupervisorConfig scfg;
    scfg.policy = RecoveryPolicy::kElasticScaleIn;
    scfg.checkpoint_every = 4;
    scfg.sdc_defense = true;  // the full defense stack is armed ...
    scfg.witness_every = 1 + s % 2;
    FaultSupervisor sup(engine, mgr, FaultInjector::from_config(pcfg), scfg);
    const auto stats = sup.run_to(kSteps, workers);

    EXPECT_FALSE(stats.failed) << "seed " << s;
    // ... and must stay silent: zero detections, zero condemned devices.
    EXPECT_EQ(stats.sdc_detections, 0) << "seed " << s;
    EXPECT_EQ(stats.devices_quarantined, 0) << "seed " << s;
    EXPECT_EQ(engine.witness_stats().mismatches, 0) << "seed " << s;
    EXPECT_TRUE(sup.condemned_devices().empty()) << "seed " << s;
    // The witness actually ran (this soak is not vacuous) and the run still
    // ends bitwise clean through every crash/revocation recovery.
    EXPECT_GT(stats.witness_replays, 0) << "seed " << s;
    EXPECT_EQ(engine.params_digest(), clean) << "seed " << s;
    mgr.clear();
  }
}

}  // namespace
}  // namespace easyscale::fault
