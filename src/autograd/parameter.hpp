// Trainable parameters and the machinery DDP-style bucketing hangs off of.
//
// Parameters are registered in model construction order; that order is the
// "static reversed topological order" PyTorch uses for the *initial*
// gradient-bucket mapping (§3.3, communication mechanism).  During backward,
// layers mark each parameter whose gradient they produced; that *ready
// order* is what DDP uses to rebuild buckets after the first iteration —
// and what EasyScale-D1 records in checkpoints.
#pragma once

#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "tensor/tensor.hpp"

namespace easyscale::autograd {

struct Parameter {
  int id = -1;  // assigned by ParameterStore::register_parameter
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;

  explicit Parameter(std::string param_name, tensor::Shape shape)
      : name(std::move(param_name)), value(shape), grad(std::move(shape)) {}

  [[nodiscard]] std::int64_t numel() const { return value.numel(); }
};

/// Non-owning registry of a model's parameters in registration order.
class ParameterStore {
 public:
  int register_parameter(Parameter* p) {
    ES_CHECK(p != nullptr, "null parameter");
    p->id = static_cast<int>(params_.size());
    params_.push_back(p);
    return p->id;
  }

  [[nodiscard]] const std::vector<Parameter*>& all() const { return params_; }
  [[nodiscard]] std::size_t size() const { return params_.size(); }
  [[nodiscard]] Parameter& at(int id) {
    ES_CHECK(id >= 0 && id < static_cast<int>(params_.size()), "bad param id");
    return *params_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::int64_t total_numel() const {
    std::int64_t n = 0;
    for (const auto* p : params_) n += p->numel();
    return n;
  }

  void zero_grads() {
    for (auto* p : params_) p->grad.zero();
  }

  /// Serialize all parameter values (registration order).
  void save_values(ByteWriter& w) const {
    w.write<std::uint64_t>(params_.size());
    for (const auto* p : params_) p->value.save(w);
  }
  void load_values(ByteReader& r) {
    const auto n = r.read<std::uint64_t>();
    ES_CHECK(n == params_.size(), "parameter count mismatch in checkpoint");
    for (auto* p : params_) p->value = tensor::Tensor::load(r);
  }

 private:
  std::vector<Parameter*> params_;
};

/// Records the order parameter gradients become ready during one backward
/// pass (deduplicated: a parameter is marked on its first contribution).
/// Also tallies the raw per-parameter contribution count (NOT deduplicated)
/// so the overlapped comm path can tell a parameter's LAST contribution —
/// a shared parameter is only safe to flush after every accumulation.
class GradReadyRecorder {
 public:
  void begin(std::size_t num_params) {
    order_.clear();
    seen_.assign(num_params, false);
    counts_.assign(num_params, 0);
  }
  void mark(int param_id) {
    if (param_id < 0) return;
    const auto i = static_cast<std::size_t>(param_id);
    if (i < seen_.size() && !seen_[i]) {
      seen_[i] = true;
      order_.push_back(param_id);
    }
    if (i < counts_.size()) ++counts_[i];
  }
  [[nodiscard]] const std::vector<int>& order() const { return order_; }
  [[nodiscard]] const std::vector<int>& counts() const { return counts_; }

 private:
  std::vector<int> order_;
  std::vector<bool> seen_;
  std::vector<int> counts_;
};

/// Observer for per-parameter grad-ready marks during backward.  Unlike the
/// recorder (which only collects order for bucket rebuilds), a sink reacts
/// live — the overlapped comm path uses one to flush buckets mid-backward.
class GradReadySink {
 public:
  virtual ~GradReadySink() = default;
  virtual void grad_ready(int param_id) = 0;
};

}  // namespace easyscale::autograd
