#include "core/checkpoint_manager.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/checkpoint_io.hpp"

namespace easyscale::core {

namespace {
bool file_exists(const std::string& path) {
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return true;
  }
  return false;
}
}  // namespace

CheckpointManager::CheckpointManager(std::string prefix, int keep)
    : prefix_(std::move(prefix)), keep_(keep) {
  ES_CHECK(keep_ >= 1, "must keep at least one checkpoint generation");
}

std::string CheckpointManager::path_for(int generation) const {
  return prefix_ + "." + std::to_string(generation);
}

void CheckpointManager::save(const std::vector<std::uint8_t>& bytes) {
  // Rotate: gen keep-2 -> keep-1, ..., gen 0 -> 1; then write gen 0.
  std::remove(path_for(keep_ - 1).c_str());
  for (int g = keep_ - 2; g >= 0; --g) {
    if (file_exists(path_for(g))) {
      ES_CHECK(std::rename(path_for(g).c_str(), path_for(g + 1).c_str()) == 0,
               "checkpoint rotation failed for generation " << g);
    }
  }
  save_checkpoint_file(path_for(0), bytes);
}

std::optional<std::vector<std::uint8_t>> CheckpointManager::load_latest_valid()
    const {
  for (int g = 0; g < keep_; ++g) {
    if (!file_exists(path_for(g))) continue;
    try {
      return load_checkpoint_file(path_for(g));
    } catch (const Error& e) {
      ES_LOG_WARN("checkpoint generation " << g << " invalid: " << e.what());
    }
  }
  return std::nullopt;
}

int CheckpointManager::generations_on_disk() const {
  int n = 0;
  for (int g = 0; g < keep_; ++g) {
    if (file_exists(path_for(g))) ++n;
  }
  return n;
}

void CheckpointManager::clear() {
  for (int g = 0; g < keep_; ++g) std::remove(path_for(g).c_str());
}

}  // namespace easyscale::core
