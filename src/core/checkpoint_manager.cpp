#include "core/checkpoint_manager.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "core/checkpoint_io.hpp"

namespace easyscale::core {

namespace {
bool file_exists(const std::string& path) {
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return true;
  }
  return false;
}

/// Sidecar payload: the checkpoint payload digest as 16 hex chars.  Tying
/// the sidecar to the digest (not just the filename) means a rotation or
/// partial rewrite can never leave a stale `.ok` blessing a different file.
std::string sidecar_payload(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf);
}

void write_sidecar(const std::string& path, std::uint64_t digest) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ES_CHECK(f != nullptr, "cannot write checkpoint sidecar " << path);
  const std::string payload = sidecar_payload(digest);
  const bool ok = std::fwrite(payload.data(), 1, payload.size(), f) ==
                  payload.size();
  std::fclose(f);
  ES_CHECK(ok, "checkpoint sidecar write failed: " << path);
}

std::optional<std::string> read_sidecar(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  char buf[32];
  const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  return std::string(buf, n);
}
}  // namespace

CheckpointManager::CheckpointManager(std::string prefix, int keep)
    : prefix_(std::move(prefix)), keep_(keep) {
  ES_CHECK(keep_ >= 1, "must keep at least one checkpoint generation");
}

// --- Control-plane fencing -----------------------------------------------

void CheckpointManager::raise_fence(std::int64_t epoch) {
  ES_CHECK(epoch >= 0, "fencing epoch must be non-negative, got " << epoch);
  fence_epoch_ = std::max(fence_epoch_, epoch);
}

void CheckpointManager::check_fence(std::int64_t writer_epoch,
                                    const char* what) const {
  if (writer_epoch < fence_epoch_) {
    ES_THROW("stale controller epoch "
             << writer_epoch << " below the checkpoint fence " << fence_epoch_
             << ": " << what
             << " rejected (a deposed leader must not mutate state)");
  }
}

void CheckpointManager::save_fenced(std::int64_t writer_epoch,
                                    const std::vector<std::uint8_t>& bytes) {
  check_fence(writer_epoch, "checkpoint save");
  raise_fence(writer_epoch);
  save(bytes);
}

void CheckpointManager::save_fenced(std::int64_t writer_epoch,
                                    const std::vector<std::uint8_t>& bytes,
                                    const DigestChain& chain) {
  check_fence(writer_epoch, "checkpoint save");
  raise_fence(writer_epoch);
  save(bytes, chain);
}

bool CheckpointManager::bless_epoch_fenced(std::int64_t writer_epoch,
                                           std::int64_t epoch) {
  check_fence(writer_epoch, "epoch bless");
  raise_fence(writer_epoch);
  return bless_epoch(epoch);
}

std::optional<std::vector<std::uint8_t>>
CheckpointManager::load_latest_valid_fenced(std::int64_t reader_epoch) const {
  check_fence(reader_epoch, "recovery restore");
  return load_latest_valid();
}

std::string CheckpointManager::path_for(int generation) const {
  return prefix_ + "." + std::to_string(generation);
}

std::string CheckpointManager::sidecar_for(int generation) const {
  return path_for(generation) + ".ok";
}

void CheckpointManager::save(const std::vector<std::uint8_t>& bytes) {
  save(bytes, DigestChain());
}

void CheckpointManager::save(const std::vector<std::uint8_t>& bytes,
                             const DigestChain& chain) {
  // Rotate: gen keep-2 -> keep-1, ..., gen 0 -> 1; then write gen 0.
  // Sidecars travel with their generation so verified status survives
  // rotation.
  std::remove(path_for(keep_ - 1).c_str());
  std::remove(sidecar_for(keep_ - 1).c_str());
  for (int g = keep_ - 2; g >= 0; --g) {
    if (file_exists(path_for(g))) {
      ES_CHECK(std::rename(path_for(g).c_str(), path_for(g + 1).c_str()) == 0,
               "checkpoint rotation failed for generation " << g);
    }
    if (file_exists(sidecar_for(g))) {
      ES_CHECK(std::rename(sidecar_for(g).c_str(),
                           sidecar_for(g + 1).c_str()) == 0,
               "checkpoint sidecar rotation failed for generation " << g);
    }
  }
  save_checkpoint_file(path_for(0), bytes, chain);
  // The fresh generation is unverified until verify_generation() blesses it.
  std::remove(sidecar_for(0).c_str());
}

bool CheckpointManager::verify_generation(int generation) {
  ES_CHECK(generation >= 0 && generation < keep_,
           "generation " << generation << " out of range");
  const std::string path = path_for(generation);
  if (!file_exists(path)) return false;
  try {
    DigestChain chain;
    const auto bytes = load_checkpoint_file(path, &chain);
    ES_CHECK(chain.verify(), "digest chain failed re-verification");
    write_sidecar(sidecar_for(generation), digest_bytes(bytes));
    return true;
  } catch (const Error& e) {
    ES_LOG_WARN("checkpoint generation " << generation
                                         << " failed verification: "
                                         << e.what());
    return false;
  }
}

bool CheckpointManager::is_verified(int generation) const {
  const auto recorded = read_sidecar(sidecar_for(generation));
  if (!recorded.has_value()) return false;
  try {
    const auto bytes = load_checkpoint_file(path_for(generation));
    return *recorded == sidecar_payload(digest_bytes(bytes));
  } catch (const Error&) {
    return false;
  }
}

std::optional<std::vector<std::uint8_t>> CheckpointManager::load_latest_valid()
    const {
  for (int g = 0; g < keep_; ++g) {
    if (!file_exists(path_for(g))) continue;
    try {
      return load_checkpoint_file(path_for(g));
    } catch (const Error& e) {
      ES_LOG_WARN("checkpoint generation " << g << " invalid: " << e.what());
    }
  }
  return std::nullopt;
}

std::optional<std::pair<std::vector<std::uint8_t>, DigestChain>>
CheckpointManager::load_latest_verified() const {
  for (int g = 0; g < keep_; ++g) {
    if (!file_exists(path_for(g))) continue;
    const auto recorded = read_sidecar(sidecar_for(g));
    if (!recorded.has_value()) continue;
    try {
      DigestChain chain;
      auto bytes = load_checkpoint_file(path_for(g), &chain);
      if (*recorded != sidecar_payload(digest_bytes(bytes))) {
        ES_LOG_WARN("checkpoint generation "
                    << g << " sidecar does not match the file; skipping");
        continue;
      }
      return std::make_pair(std::move(bytes), std::move(chain));
    } catch (const Error& e) {
      ES_LOG_WARN("checkpoint generation " << g << " invalid: " << e.what());
    }
  }
  return std::nullopt;
}

int CheckpointManager::generations_on_disk() const {
  int n = 0;
  for (int g = 0; g < keep_; ++g) {
    if (file_exists(path_for(g))) ++n;
  }
  return n;
}

void CheckpointManager::clear() {
  for (int g = 0; g < keep_; ++g) {
    std::remove(path_for(g).c_str());
    std::remove(sidecar_for(g).c_str());
  }
}

// --- Epoch-addressed checkpoints -----------------------------------------

std::string CheckpointManager::epoch_path_for(std::int64_t epoch) const {
  return prefix_ + ".epoch." + std::to_string(epoch);
}

std::string CheckpointManager::epoch_sidecar_for(std::int64_t epoch) const {
  return epoch_path_for(epoch) + ".ok";
}

void CheckpointManager::save_epoch(std::int64_t epoch,
                                   const std::vector<std::uint8_t>& bytes,
                                   const DigestChain& chain) {
  // Phase 1: the framed writer lands the file atomically (tmp + rename),
  // but the epoch stays UNBLESSED — a stale sidecar from a previous life of
  // this epoch number must not bless the new bytes.
  std::remove(epoch_sidecar_for(epoch).c_str());
  save_checkpoint_file(epoch_path_for(epoch), bytes, chain);
}

bool CheckpointManager::bless_epoch(std::int64_t epoch) {
  const std::string path = epoch_path_for(epoch);
  if (!file_exists(path)) return false;
  try {
    DigestChain chain;
    const auto bytes = load_checkpoint_file(path, &chain);
    ES_CHECK(chain.verify(), "digest chain failed re-verification");
    write_sidecar(epoch_sidecar_for(epoch), digest_bytes(bytes));
    return true;
  } catch (const Error& e) {
    ES_LOG_WARN("epoch " << epoch << " failed verification: " << e.what());
    return false;
  }
}

bool CheckpointManager::is_blessed(std::int64_t epoch) const {
  const auto recorded = read_sidecar(epoch_sidecar_for(epoch));
  if (!recorded.has_value()) return false;
  try {
    const auto bytes = load_checkpoint_file(epoch_path_for(epoch));
    return *recorded == sidecar_payload(digest_bytes(bytes));
  } catch (const Error&) {
    return false;
  }
}

std::vector<std::int64_t> CheckpointManager::epochs_on_disk() const {
  namespace fs = std::filesystem;
  const fs::path prefix_path(prefix_);
  fs::path dir = prefix_path.parent_path();
  if (dir.empty()) dir = ".";
  const std::string needle = prefix_path.filename().string() + ".epoch.";
  std::vector<std::int64_t> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(needle, 0) != 0) continue;
    const std::string tail = name.substr(needle.size());
    if (tail.size() >= 3 && tail.substr(tail.size() - 3) == ".ok") continue;
    // Strict parse: "<epoch>" and nothing else — tmp files and foreign
    // suffixes are not epochs.
    const auto parsed = parse_int64_strict(tail);
    if (parsed.has_value()) epochs.push_back(*parsed);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

std::optional<std::tuple<std::int64_t, std::vector<std::uint8_t>, DigestChain>>
CheckpointManager::load_latest_blessed_epoch() const {
  const auto epochs = epochs_on_disk();
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    const auto recorded = read_sidecar(epoch_sidecar_for(*it));
    if (!recorded.has_value()) continue;  // unblessed (phase-2 never ran)
    try {
      DigestChain chain;
      auto bytes = load_checkpoint_file(epoch_path_for(*it), &chain);
      if (*recorded != sidecar_payload(digest_bytes(bytes))) {
        ES_LOG_WARN("epoch " << *it
                             << " sidecar does not match the file; skipping");
        continue;
      }
      return std::make_tuple(*it, std::move(bytes), std::move(chain));
    } catch (const Error& e) {
      ES_LOG_WARN("epoch " << *it << " invalid: " << e.what());
    }
  }
  return std::nullopt;
}

int CheckpointManager::gc_epochs(int keep_blessed) {
  ES_CHECK(keep_blessed >= 0, "cannot keep a negative number of epochs");
  const auto epochs = epochs_on_disk();
  // The newest `keep_blessed` blessed epochs survive; everything else goes
  // unless pinned.  Unblessed files are never counted as keepers — a torn
  // phase-1 write must not shield an older blessed epoch from retention
  // NOR survive itself.
  std::set<std::int64_t> keep(pinned_.begin(), pinned_.end());
  int blessed_kept = 0;
  for (auto it = epochs.rbegin();
       it != epochs.rend() && blessed_kept < keep_blessed; ++it) {
    if (is_blessed(*it)) {
      keep.insert(*it);
      ++blessed_kept;
    }
  }
  int removed = 0;
  for (const auto epoch : epochs) {
    if (keep.count(epoch) != 0) continue;
    if (std::remove(epoch_path_for(epoch).c_str()) == 0) ++removed;
    std::remove(epoch_sidecar_for(epoch).c_str());
  }
  return removed;
}

}  // namespace easyscale::core
