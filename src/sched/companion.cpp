#include "sched/companion.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "models/profile.hpp"

namespace easyscale::sched {

void Plan::save(ByteWriter& w) const {
  for (const auto n : gpus) w.write(n);
  w.write_vector(ests);
  w.write(f_overload);
  w.write(waste);
  w.write(throughput);
  w.write(steps_per_second);
}

Plan Plan::load(ByteReader& r) {
  Plan plan;
  for (auto& n : plan.gpus) n = r.read<std::int64_t>();
  plan.ests = r.read_vector<std::int64_t>();
  plan.f_overload = r.read<double>();
  plan.waste = r.read<double>();
  plan.throughput = r.read<double>();
  plan.steps_per_second = r.read<double>();
  return plan;
}

std::string PlanCache::key(const std::string& workload, std::int64_t max_p,
                           const GpuVector& gpus, int shard_degree) {
  std::string k = workload;
  k.push_back('\0');
  k.append(reinterpret_cast<const char*>(&max_p), sizeof max_p);
  k.append(reinterpret_cast<const char*>(&shard_degree), sizeof shard_degree);
  k.append(reinterpret_cast<const char*>(gpus.data()),
           sizeof(gpus[0]) * gpus.size());
  return k;
}

const Plan* PlanCache::find(const std::string& workload, std::int64_t max_p,
                            const GpuVector& gpus, int shard_degree) {
  const auto it = plans_.find(key(workload, max_p, gpus, shard_degree));
  if (it == plans_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void PlanCache::insert(const std::string& workload, std::int64_t max_p,
                       const GpuVector& gpus, Plan plan, int shard_degree) {
  plans_.insert_or_assign(key(workload, max_p, gpus, shard_degree),
                          std::move(plan));
}

void PlanCache::clear() {
  plans_.clear();
  hits_ = 0;
  misses_ = 0;
}

void PlanCache::save(ByteWriter& w) const {
  w.write(kFormatVersion);
  w.write<std::uint64_t>(plans_.size());
  for (const auto& [k, plan] : plans_) {
    w.write_string(k);
    plan.save(w);
  }
}

std::size_t PlanCache::load(ByteReader& r) {
  const auto version = r.read<std::uint32_t>();
  if (version != kFormatVersion) {
    // Stale image: v1 keys lack shard_degree, so a v1 entry could answer a
    // lookup for the wrong degree.  Bypass everything; callers recompute.
    return 0;
  }
  const auto count = r.read<std::uint64_t>();
  std::size_t restored = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string k = r.read_string();
    plans_.insert_or_assign(std::move(k), Plan::load(r));
    ++restored;
  }
  return restored;
}

Companion::Companion(std::string workload, std::int64_t max_p)
    : workload_(std::move(workload)), max_p_(max_p) {
  ES_CHECK(max_p_ > 0, "maxP must be positive");
}

double Companion::capability(DeviceType type) const {
  return calibration_ * models::profiled_throughput(workload_, type);
}

Plan Companion::make_plan(const GpuVector& gpus) const {
  // Memoization is only sound at the default calibration: a recalibrated
  // companion's capabilities differ from every other job's, so it computes
  // directly and never pollutes the shared cache.
  if (cache_ == nullptr || calibration_ != 1.0) return compute_plan(gpus);
  if (const Plan* hit = cache_->find(workload_, max_p_, gpus, shard_degree_)) {
    return *hit;
  }
  Plan plan = compute_plan(gpus);
  cache_->insert(workload_, max_p_, gpus, plan, shard_degree_);
  return plan;
}

Plan Companion::compute_plan(const GpuVector& gpus) const {
  Plan plan;
  plan.gpus = gpus;
  const std::int64_t n_gpus = total(gpus);
  if (n_gpus == 0) return plan;
  // Expand GPU list (grouped by type) with capabilities.
  std::vector<double> caps;
  for (int t = 0; t < kNumDeviceTypes; ++t) {
    for (std::int64_t i = 0; i < gpus[static_cast<std::size_t>(t)]; ++i) {
      caps.push_back(capability(static_cast<DeviceType>(t)));
    }
  }
  plan.ests.assign(caps.size(), 0);
  // Every GPU in the plan must host at least one EST (idle GPUs would be
  // pure waste); refuse plans with more GPUs than ESTs.
  if (n_gpus > max_p_) return Plan{};
  // Greedy: place each EST on the GPU with the lowest resulting step time.
  for (std::int64_t e = 0; e < max_p_; ++e) {
    std::size_t best = 0;
    double best_time = 1e300;
    for (std::size_t g = 0; g < caps.size(); ++g) {
      const double t = static_cast<double>(plan.ests[g] + 1) / caps[g];
      if (t < best_time) {
        best_time = t;
        best = g;
      }
    }
    ++plan.ests[best];
  }
  // Eq. (1b): the slowest GPU gates the global step.
  plan.f_overload = 0.0;
  for (std::size_t g = 0; g < caps.size(); ++g) {
    plan.f_overload = std::max(
        plan.f_overload, static_cast<double>(plan.ests[g]) / caps[g]);
  }
  // Eq. (1c): stranded capability.  nEST == maxP here (no over-provision
  // term; EST count is fixed at model design time).
  plan.waste = 0.0;
  double agg = 0.0;
  for (std::size_t g = 0; g < caps.size(); ++g) {
    agg += caps[g];
    plan.waste +=
        caps[g] - static_cast<double>(plan.ests[g]) / plan.f_overload;
  }
  plan.throughput = agg - plan.waste;  // Eq. (1d)
  plan.steps_per_second = 1.0 / plan.f_overload;
  return plan;
}

Plan Companion::best_plan(const GpuVector& available, bool allow_heter) const {
  Plan best;
  if (!allow_heter) {
    // Single-type plans: for each type, the best GPU count.
    for (int t = 0; t < kNumDeviceTypes; ++t) {
      const std::int64_t avail = available[static_cast<std::size_t>(t)];
      const std::int64_t cap = std::min<std::int64_t>(avail, max_p_);
      for (std::int64_t n = 1; n <= cap; ++n) {
        GpuVector g{};
        g[static_cast<std::size_t>(t)] = n;
        const Plan p = make_plan(g);
        if (p.valid() && p.throughput > best.throughput) best = p;
      }
    }
    return best;
  }
  // Greedy constructive over mixed types.  Each round adds the single GPU
  // whose plan evaluates best and keeps walking through throughput
  // plateaus (e.g. 2 -> 3 V100 may not help but 4 does); the best plan
  // seen anywhere along the walk is returned, ties resolved toward fewer
  // GPUs / less waste.
  GpuVector chosen{};
  while (total(chosen) < std::min<std::int64_t>(max_p_, total(available))) {
    Plan round_best;
    int round_type = -1;
    for (int t = 0; t < kNumDeviceTypes; ++t) {
      if (chosen[static_cast<std::size_t>(t)] >=
          available[static_cast<std::size_t>(t)]) {
        continue;
      }
      GpuVector trial = chosen;
      ++trial[static_cast<std::size_t>(t)];
      const Plan p = make_plan(trial);
      if (!p.valid()) continue;
      if (round_type < 0 || p.throughput > round_best.throughput ||
          (p.throughput == round_best.throughput &&
           p.waste < round_best.waste)) {
        round_best = p;
        round_type = t;
      }
    }
    if (round_type < 0) break;
    ++chosen[static_cast<std::size_t>(round_type)];
    if (!best.valid() || round_best.throughput > best.throughput) {
      best = round_best;
    }
  }
  return best;
}

std::vector<Companion::Proposal> Companion::proposals(
    const Plan& current, const GpuVector& available, bool allow_heter,
    std::size_t top_k) const {
  std::vector<Proposal> out;
  const double base_tp = current.valid() ? current.throughput : 0.0;
  // Incremental options: +1 / +2 / +4 GPUs of each type (homogeneous
  // increments, §3.4 "scale out with incremental homogeneous GPUs").
  for (int t = 0; t < kNumDeviceTypes; ++t) {
    if (!allow_heter && current.valid()) {
      // Homo jobs may only grow in the type they already use.
      bool uses_type = current.gpus[static_cast<std::size_t>(t)] > 0;
      if (!uses_type && total(current.gpus) > 0) continue;
    }
    for (std::int64_t inc : {1, 2, 4}) {
      if (available[static_cast<std::size_t>(t)] < inc) continue;
      GpuVector trial = current.gpus;
      trial[static_cast<std::size_t>(t)] += inc;
      const Plan p = make_plan(trial);
      if (!p.valid()) continue;
      if (base_tp > 0.0 && p.throughput <= base_tp) continue;
      Proposal prop;
      prop.extra_gpus = GpuVector{};
      prop.extra_gpus[static_cast<std::size_t>(t)] = inc;
      prop.plan = p;
      prop.speedup = base_tp > 0.0 ? p.throughput / base_tp : 1e9;
      prop.gpu_count = inc;
      out.push_back(prop);
    }
  }
  std::sort(out.begin(), out.end(), [](const Proposal& a, const Proposal& b) {
    if (a.speedup_per_gpu() != b.speedup_per_gpu()) {
      return a.speedup_per_gpu() > b.speedup_per_gpu();
    }
    return a.gpu_count > b.gpu_count;
  });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

void Companion::report_throughput(const Plan& plan, double observed_mbps) {
  if (!plan.valid() || plan.throughput <= 0.0) return;
  const double ratio = observed_mbps / plan.throughput;
  if (ratio < 0.8 || ratio > 1.2) {
    calibration_ *= ratio;
  }
}

}  // namespace easyscale::sched
