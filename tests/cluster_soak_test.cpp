// Determinism soak for the multi-tenant cluster service (docs/SCHEDULER.md
// determinism contract): over many trace seeds x two thread counts, the
// schedule digest and the full metrics JSON must be bitwise identical on
// replay.  The thread count only parallelizes trace generation and plan
// precomputation — it must never leak into the schedule.  CI sweeps more
// seeds via EASYSCALE_SOAK_SEEDS (ctest -L soak); the default satisfies the
// >=16-seed contract while staying quick locally.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/metrics.hpp"
#include "cluster/service.hpp"
#include "cluster/tenant.hpp"

namespace easyscale::cluster {
namespace {

int soak_seed_count() {
  if (const char* env = std::getenv("EASYSCALE_SOAK_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 16;
}

struct RunResult {
  std::uint64_t digest = 0;
  std::string json;
};

RunResult run_once(std::uint64_t seed, int threads, QueueKind queue) {
  const auto tenants = make_tenants(8, 64, seed);
  TenantTraceConfig tcfg;
  tcfg.seed = seed;
  tcfg.horizon_s = 86400.0;
  tcfg.peak_jobs_per_tenant_day = 8.0;
  tcfg.max_steps = 3000;
  tcfg.threads = threads;
  const auto jobs = tenant_trace(tenants, tcfg);

  ClusterServiceConfig cfg;
  cfg.capacity = {32, 16, 16};
  cfg.queue = queue;
  // A bit of adversity per seed so the capacity machinery is soaked too.
  cfg.failures.push_back(
      {10000.0 + 1000.0 * static_cast<double>(seed % 7), 0, 20000.0});
  cfg.quarantines.push_back(
      {15000.0 + 500.0 * static_cast<double>(seed % 5), 1});
  cfg.link_degrades.push_back(
      {12000.0, 30000.0, static_cast<int>(seed % 3), 4, 0.4});

  ClusterService service(tenants, jobs, cfg);
  const auto metrics = service.run();
  EXPECT_EQ(metrics.jobs_finished, static_cast<std::int64_t>(jobs.size()));
  return {metrics.schedule_digest, metrics.to_json()};
}

TEST(ClusterSoak, BitwiseIdenticalAcrossSeedsThreadsAndQueues) {
  const int seeds = soak_seed_count();
  for (int s = 0; s < seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(101 + 13 * s);
    const auto t1 = run_once(seed, /*threads=*/1, QueueKind::kCalendar);
    const auto t4 = run_once(seed, /*threads=*/4, QueueKind::kCalendar);
    EXPECT_EQ(t1.digest, t4.digest) << "seed " << seed;
    EXPECT_EQ(t1.json, t4.json) << "seed " << seed;
    // The heap reference queue must replay the exact same schedule.
    const auto heap = run_once(seed, /*threads=*/4, QueueKind::kHeap);
    EXPECT_EQ(t1.digest, heap.digest) << "seed " << seed;
    EXPECT_EQ(t1.json, heap.json) << "seed " << seed;
    // And a straight replay at the same thread count is bitwise stable.
    const auto again = run_once(seed, /*threads=*/1, QueueKind::kCalendar);
    EXPECT_EQ(t1.digest, again.digest) << "seed " << seed;
    EXPECT_EQ(t1.json, again.json) << "seed " << seed;
  }
}

}  // namespace
}  // namespace easyscale::cluster
