#include "models/yolo.hpp"

#include "nn/activations.hpp"

namespace easyscale::models {

using tensor::Shape;
using tensor::Tensor;

YoloV3Mini::YoloV3Mini() {
  backbone_.emplace<nn::Conv2d>("b1.conv", 3, 8, 3, 1, 1);
  backbone_.emplace<nn::BatchNorm2d>("b1.bn", 8);
  backbone_.emplace<nn::ReLU>();
  backbone_.emplace<nn::MaxPool2d>(2);
  backbone_.emplace<nn::Conv2d>("b2.conv", 8, 16, 3, 1, 1);
  backbone_.emplace<nn::BatchNorm2d>("b2.bn", 16);
  backbone_.emplace<nn::ReLU>();
  backbone_.emplace<nn::GlobalAvgPool>();
  backbone_.emplace<nn::Linear>("head", 16, 4);  // cx, cy, ext, obj-logit
  backbone_.register_parameters(params_);
}

void YoloV3Mini::init(std::uint64_t seed) {
  rng::Philox gen(rng::derive_stream_key(seed, 0, 41));
  backbone_.init_weights(gen);
}

float YoloV3Mini::train_step(autograd::StepContext& ctx,
                             const data::Batch& batch) {
  ES_CHECK(batch.x.defined() && batch.target.defined(),
           "yolo needs images + box targets");
  Tensor out = backbone_.forward(ctx, batch.x);  // [N, 4]
  const std::int64_t n = out.shape().dim(0);
  // Split predictions into boxes [N,3] and objectness logits [N].
  Tensor boxes(Shape{n, 3}), logits(Shape{n});
  Tensor box_t(Shape{n, 3}), obj_t(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      boxes.at(i * 3 + j) = out.at(i * 4 + j);
      box_t.at(i * 3 + j) = batch.target.at(i * 4 + j);
    }
    logits.at(i) = out.at(i * 4 + 3);
    obj_t.at(i) = batch.target.at(i * 4 + 3);
  }
  const float l_box = box_loss_.forward(ctx, boxes, box_t);
  const float l_obj = obj_loss_.forward(ctx, logits, obj_t);
  const Tensor g_box = box_loss_.backward();
  const Tensor g_obj = obj_loss_.backward();
  Tensor grad(out.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      grad.at(i * 4 + j) = g_box.at(i * 3 + j);
    }
    grad.at(i * 4 + 3) = g_obj.at(i);
  }
  backbone_.backward(ctx, grad);
  return l_box + l_obj;
}

std::vector<std::int64_t> YoloV3Mini::predict(autograd::StepContext& ctx,
                                              const data::Batch& batch) {
  const bool was_training = ctx.training;
  ctx.training = false;
  Tensor out = backbone_.forward(ctx, batch.x);
  ctx.training = was_training;
  const std::int64_t n = out.shape().dim(0);
  std::vector<std::int64_t> detected(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    detected[static_cast<std::size_t>(i)] = out.at(i * 4 + 3) > 0.0f ? 1 : 0;
  }
  return detected;
}

std::vector<tensor::Tensor*> YoloV3Mini::buffers() {
  std::vector<tensor::Tensor*> out;
  backbone_.collect_buffers(out);
  return out;
}

}  // namespace easyscale::models
