#include "data/dataset.hpp"

#include "rng/sampling.hpp"
#include "rng/stream_set.hpp"

namespace easyscale::data {

namespace {

/// Per-index generator: counter-based so get(index) is O(1) and stateless.
rng::Philox index_gen(std::uint64_t seed, std::int64_t index) {
  return rng::Philox(
      rng::derive_stream_key(seed, static_cast<std::uint64_t>(index), 17));
}

}  // namespace

SyntheticImageDataset::SyntheticImageDataset(std::int64_t n,
                                             std::int64_t num_classes,
                                             std::int64_t channels,
                                             std::int64_t height,
                                             std::int64_t width,
                                             std::uint64_t seed,
                                             std::uint64_t sample_salt)
    : n_(n),
      num_classes_(num_classes),
      channels_(channels),
      height_(height),
      width_(width),
      seed_(seed),
      sample_salt_(sample_salt),
      prototypes_(tensor::Shape{num_classes, channels, height, width}) {
  rng::Philox gen(rng::derive_stream_key(seed, 0, 23));
  rng::fill_normal(gen, prototypes_.data(), 0.0f, 1.0f);
}

Sample SyntheticImageDataset::get(std::int64_t index) const {
  ES_CHECK(index >= 0 && index < n_, "image index out of range");
  Sample s;
  s.label = index % num_classes_;
  s.x = tensor::Tensor(tensor::Shape{channels_, height_, width_});
  rng::Philox gen =
      index_gen(seed_ + 0x5A17ull * sample_salt_, index);
  rng::fill_normal(gen, s.x.data(), 0.0f, 0.8f);
  const float* proto = prototypes_.raw() + s.label * s.x.numel();
  for (std::int64_t i = 0; i < s.x.numel(); ++i) s.x.at(i) += proto[i];
  return s;
}

SyntheticDetectionDataset::SyntheticDetectionDataset(std::int64_t n,
                                                     std::int64_t height,
                                                     std::int64_t width,
                                                     std::uint64_t seed)
    : n_(n), height_(height), width_(width), seed_(seed) {}

Sample SyntheticDetectionDataset::get(std::int64_t index) const {
  ES_CHECK(index >= 0 && index < n_, "detection index out of range");
  rng::Philox gen = index_gen(seed_, index);
  Sample s;
  s.x = tensor::Tensor(tensor::Shape{3, height_, width_});
  rng::fill_normal(gen, s.x.data(), 0.0f, 0.3f);
  // Object: a bright square of side `ext` at (cy, cx).
  const std::int64_t ext = 2 + static_cast<std::int64_t>(gen.next_below(3));
  const std::int64_t cy =
      static_cast<std::int64_t>(gen.next_below(
          static_cast<std::uint64_t>(height_ - ext)));
  const std::int64_t cx = static_cast<std::int64_t>(
      gen.next_below(static_cast<std::uint64_t>(width_ - ext)));
  for (std::int64_t c = 0; c < 3; ++c) {
    for (std::int64_t y = cy; y < cy + ext; ++y) {
      for (std::int64_t x = cx; x < cx + ext; ++x) {
        s.x.at((c * height_ + y) * width_ + x) += 2.5f;
      }
    }
  }
  s.label = 0;
  s.target = {static_cast<float>(cx + ext / 2) / static_cast<float>(width_),
              static_cast<float>(cy + ext / 2) / static_cast<float>(height_),
              static_cast<float>(ext) / static_cast<float>(width_), 1.0f};
  return s;
}

SyntheticRecDataset::SyntheticRecDataset(std::int64_t n, std::int64_t num_users,
                                         std::int64_t num_items,
                                         std::uint64_t seed)
    : n_(n), num_users_(num_users), num_items_(num_items), seed_(seed) {}

Sample SyntheticRecDataset::get(std::int64_t index) const {
  ES_CHECK(index >= 0 && index < n_, "rec index out of range");
  rng::Philox gen = index_gen(seed_, index);
  Sample s;
  const auto user = static_cast<std::int64_t>(
      gen.next_below(static_cast<std::uint64_t>(num_users_)));
  // Positive pairs follow a latent block structure (user mod 8 likes items
  // mod 8); negatives are uniform — learnable signal for NeuMF.
  const bool positive = (index % 2) == 0;
  std::int64_t item;
  if (positive) {
    const std::int64_t block = user % 8;
    item = block + 8 * static_cast<std::int64_t>(gen.next_below(
                           static_cast<std::uint64_t>(num_items_ / 8)));
  } else {
    item = static_cast<std::int64_t>(
        gen.next_below(static_cast<std::uint64_t>(num_items_)));
  }
  s.ids = {user, item};
  s.label = positive ? 1 : 0;
  s.target = {positive ? 1.0f : 0.0f};
  return s;
}

SyntheticQADataset::SyntheticQADataset(std::int64_t n, std::int64_t vocab,
                                       std::int64_t seq_len, std::uint64_t seed)
    : n_(n), vocab_(vocab), seq_len_(seq_len), seed_(seed) {}

Sample SyntheticQADataset::get(std::int64_t index) const {
  ES_CHECK(index >= 0 && index < n_, "qa index out of range");
  rng::Philox gen = index_gen(seed_, index);
  Sample s;
  s.ids.resize(static_cast<std::size_t>(seq_len_));
  rng::fill_randint(gen, s.ids, vocab_ - 1);
  // Answer span: position of a sentinel token (vocab-1) we plant.
  const auto start = static_cast<std::int64_t>(
      gen.next_below(static_cast<std::uint64_t>(seq_len_)));
  s.ids[static_cast<std::size_t>(start)] = vocab_ - 1;
  s.label = start;
  return s;
}

}  // namespace easyscale::data
