// Async collective engine: pipelined bucket all-reduce during backward.
//
// The sequential sync path waits for the whole backward pass, copies every
// gradient out, then reduces bucket after bucket — serializing compute and
// communication that real DDP overlaps (Horovod-style ready-order bucket
// flushing).  This module supplies the overlap without giving up a single
// bit of determinism:
//
//  - AsyncCollectiveEngine owns one dedicated communicator slot (a
//    long-lived thread, the analog of NCCL's comm stream) and a bounded
//    in-flight queue of bucket jobs.  Jobs execute strictly in submission
//    order, so the sequence of transport operations — and therefore every
//    fault draw of the simulated fabric — is identical run to run.
//  - BucketReadyTracker turns per-parameter grad-ready marks from the
//    backward walk into per-bucket completion events, using contribution
//    counts recorded on an earlier sequential step (a parameter is final
//    only after its LAST recorded contribution, which handles shared
//    parameters that accumulate more than once per step).
//  - OverlapCoordinator counts ranks into each bucket and submits the
//    bucket's reduction once the last participant has published it.
//
// Determinism argument (docs/PERFORMANCE.md): each bucket's chunking,
// reduction association and FP order depend only on the checkpointed
// BucketLayout and the participant count — never on WHEN the job runs.
// Submission order is deterministic because every rank publishes buckets in
// the same per-rank order (same graph), so the global "all ranks done with
// bucket b" events are totally ordered like the per-rank order.  The
// overlapped path therefore produces bitwise-identical results to the
// sequential one; tests/overlap_equivalence_test.cpp witnesses this across
// thread counts, bucket caps, D1 restarts and injected comm faults.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "autograd/parameter.hpp"
#include "comm/bucket.hpp"

namespace easyscale::comm {

struct AsyncConfig {
  /// Bucket jobs allowed in the engine (queued + executing) before
  /// submit() applies backpressure.  Bounds the flushed-but-unreduced
  /// working set exactly like DDP's bounded comm stream depth.
  int max_in_flight = 4;
};

/// Per-step overlap accounting.  `compute_s` is the wall-clock backward
/// window (begin_step -> drain entry); per-job comm cost is the fabric's
/// virtual seconds when the job reports them, else the job's wall busy
/// time (the plain path, where the reduction work itself stands in for
/// transfer time).  The modeled step times answer "what would this step
/// cost if the communicator slot had its own execution resource":
///   modeled_seq_s     = compute_s + sum(comm)        (flush-at-the-end)
///   modeled_overlap_s = pipelined: job j starts at max(ready_j, end_{j-1})
/// ready_j (the submit offset) is clamped to compute_s, so with >= 2
/// buckets the pipelined model is STRICTLY below the sequential one — a
/// deterministic inequality, independent of scheduler jitter.
struct OverlapStats {
  std::int64_t buckets = 0;
  double compute_s = 0.0;
  double comm_busy_s = 0.0;     // wall time the comm slot spent in jobs
  double comm_virtual_s = 0.0;  // fabric virtual seconds jobs reported
  double drain_wait_s = 0.0;    // wall time the caller blocked in drain()
  double modeled_seq_s = 0.0;
  double modeled_overlap_s = 0.0;
  /// Share of comm hidden under backward in the pipelined model:
  /// (sum(comm) - max(0, last_comm_end - compute_s)) / sum(comm).
  double overlap_frac = 0.0;
};

/// A bounded in-flight queue of bucket all-reduce jobs executed on one
/// dedicated communicator slot.  The engine only sequences and times jobs;
/// all reduction math lives in the job callback so the plain, voting and
/// resilient flavors share one pipeline.
class AsyncCollectiveEngine {
 public:
  /// Performs the reduction for `bucket`; returns the job's comm cost in
  /// virtual fabric seconds (0 when the path has no simulated fabric).
  /// Exceptions abort the step: queued jobs are discarded and drain()
  /// rethrows the first one.
  using BucketJob = std::function<double(std::size_t bucket)>;

  explicit AsyncCollectiveEngine(AsyncConfig cfg = {});
  ~AsyncCollectiveEngine();

  AsyncCollectiveEngine(const AsyncCollectiveEngine&) = delete;
  AsyncCollectiveEngine& operator=(const AsyncCollectiveEngine&) = delete;

  /// Open a step: subsequent submit() calls enqueue `job` invocations.
  /// Must be balanced by drain() before the next begin_step().
  void begin_step(BucketJob job);

  /// Enqueue `bucket` (thread-safe, FIFO).  Blocks while max_in_flight
  /// jobs are pending; returns immediately once a job has failed (the
  /// submission is discarded — drain() rethrows the failure).
  void submit(std::size_t bucket);

  /// Wait for every submitted job, rethrow the first job exception, and
  /// return the step's overlap accounting.  Leaves the engine ready for
  /// the next begin_step().
  OverlapStats drain();

 private:
  struct Pending {
    std::size_t bucket = 0;
    double submit_offset_s = 0.0;  // relative to begin_step
  };

  void comm_loop();

  AsyncConfig cfg_;
  BucketJob job_;

  std::mutex mutex_;
  std::condition_variable cv_submit_;  // backpressure + shutdown
  std::condition_variable cv_idle_;    // drain
  std::deque<Pending> queue_;
  bool executing_ = false;
  bool stopping_ = false;
  bool step_open_ = false;
  std::exception_ptr error_;

  // Per-step accounting (touched by the comm thread and, after the idle
  // handshake, by drain()).
  std::vector<double> ready_s_;  // submit offsets, execution order
  std::vector<double> cost_s_;   // per-job comm basis, execution order
  double comm_busy_s_ = 0.0;
  double comm_virtual_s_ = 0.0;
  std::int64_t executed_ = 0;
  std::chrono::steady_clock::time_point step_start_;

  std::thread slot_;  // the dedicated communicator slot
};

/// Per-rank bridge from the backward walk to bucket completion: counts
/// grad-ready marks against the contribution counts recorded on a
/// sequential step and fires `on_bucket_done(bucket)` exactly once per
/// bucket, on the mark that completes it.  finish() flushes what is left
/// (zero-contribution parameters and any count drift) in layout order —
/// correctness never depends on the counts being tight, only overlap does.
class BucketReadyTracker final : public autograd::GradReadySink {
 public:
  using BucketDoneFn = std::function<void(std::size_t bucket)>;

  BucketReadyTracker(const BucketLayout& layout,
                     const std::vector<int>& contrib_counts,
                     BucketDoneFn on_bucket_done);

  void grad_ready(int param_id) override;

  /// Fire every bucket not yet completed, in layout order.  Call exactly
  /// once, after the rank's backward returns.
  void finish();

 private:
  std::vector<int> bucket_of_;            // param -> bucket (-1: unbucketed)
  std::vector<std::int64_t> remaining_;   // contributions left per bucket
  std::vector<std::uint8_t> fired_;
  BucketDoneFn done_;
};

/// Counts participants into each bucket; the LAST publisher submits the
/// bucket to the engine.  publish() uses acquire-release ordering on the
/// per-bucket counter, so the comm thread observes every rank's bucket
/// data once the job is queued.
class OverlapCoordinator {
 public:
  OverlapCoordinator(std::size_t num_buckets, int num_parts,
                     AsyncCollectiveEngine& engine);

  /// Rank-side: bucket `b`'s gradients for one participant are final and
  /// copied out.  Thread-safe; the call that brings the count to zero
  /// submits the bucket job.
  void publish(std::size_t bucket);

 private:
  std::vector<std::atomic<int>> remaining_;
  AsyncCollectiveEngine* engine_;
};

}  // namespace easyscale::comm
