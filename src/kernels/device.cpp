#include "kernels/device.hpp"

#include "common/error.hpp"

namespace easyscale::kernels {

namespace {
// Capability ratios approximate the paper's cluster: V100 > P100 > T4 for
// training throughput.
constexpr DeviceSpec kSpecs[kNumDeviceTypes] = {
    {"V100", 16.0, 1.00},
    {"P100", 16.0, 0.45},
    {"T4", 16.0, 0.30},
};
}  // namespace

const DeviceSpec& device_spec(DeviceType type) {
  return kSpecs[static_cast<int>(type)];
}

std::string device_name(DeviceType type) { return device_spec(type).name; }

DeviceType parse_device(const std::string& name) {
  for (int i = 0; i < kNumDeviceTypes; ++i) {
    if (name == kSpecs[i].name) return static_cast<DeviceType>(i);
  }
  ES_THROW("unknown device type: " << name);
}

}  // namespace easyscale::kernels
