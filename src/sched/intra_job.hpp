// Live intra-job scheduler (§3.4, the AIMaster side): bridges the
// companion module's plans to a running EasyScaleEngine.
//
//  Role-1: apply the best configuration available (apply_best_plan);
//  Role-2: form scale-out resource proposals for the inter-job scheduler
//          (make_proposals);
//  Role-3: execute an approved plan immediately (apply_plan) and fall back
//          to the previous plan if the observed throughput regressed
//          (report_throughput).
#pragma once

#include "core/engine.hpp"
#include "fault/controller.hpp"
#include "sched/companion.hpp"

namespace easyscale::sched {

class IntraJobScheduler {
 public:
  IntraJobScheduler(core::EasyScaleEngine& engine, Companion companion,
                    bool allow_heter);

  /// Role-1: pick and apply the best plan under `available` GPUs.  Returns
  /// false (and leaves the engine untouched) when no valid plan exists.
  bool apply_best_plan(const GpuVector& available);

  /// Role-2: top-K scale-out proposals from the current plan.
  [[nodiscard]] std::vector<Companion::Proposal> make_proposals(
      const GpuVector& spare, std::size_t top_k = 3) const;

  /// Role-3: reconfigure the engine onto `plan` (checkpoint + rescale).
  void apply_plan(const Plan& plan);

  /// Report measured throughput (mini-batches/s).  If the most recent
  /// apply_plan was a scale-out and the observation regressed, the
  /// scheduler reverts to the previous plan and returns true.
  bool report_throughput(double observed_mbps);

  /// EST re-balancing on the comm straggler signal: when the worst-stalled
  /// worker's cumulative link-stall time (engine.comm_stall_per_worker)
  /// exceeds `threshold_s`, move one of its ESTs to the least-stalled
  /// worker and reconfigure — the EasyScale answer to a persistently slow
  /// link (bitwise neutral, like every remap).  Returns whether a move
  /// happened; requires the engine's resilient comm substrate.
  bool rebalance_stragglers(double threshold_s);

  /// SDC quarantine: vacate worker `slot` (condemned by the integrity
  /// witness), blocklist its device spec, and deal its orphaned ESTs to the
  /// least-loaded survivors — the same bitwise-neutral remap machinery the
  /// straggler path uses, so quarantining never perturbs training bits.
  /// Returns false (engine untouched) when the slot cannot be vacated
  /// (out of range, or it is the last worker).
  bool quarantine_worker(std::int64_t slot);

  /// Device specs removed by quarantine_worker; a blocklisted spec stands
  /// for a condemned physical device the scheduler must never hand back.
  [[nodiscard]] const std::vector<core::WorkerSpec>& quarantine_blocklist()
      const {
    return blocklist_;
  }

  /// Consume COMMITTED kQuarantine entries from the replicated decision
  /// log (fault/controller.hpp): each unseen entry's slot (arg1) is vacated
  /// via quarantine_worker.  An internal cursor makes repeated calls
  /// idempotent — replaying the log after a controller failover applies
  /// each quarantine exactly once.  Returns the number of workers vacated
  /// this call.
  int apply_quarantine_decisions(const fault::DecisionLog& log);

  /// Log entries already consumed by apply_quarantine_decisions.
  [[nodiscard]] std::int64_t quarantine_log_cursor() const {
    return quarantine_cursor_;
  }

  /// Drop the current plan (the job pauses; GPUs return to the pool).  The
  /// engine keeps its last worker set but the cluster stops stepping it.
  void release() {
    previous_ = Plan{};
    current_ = Plan{};
  }

  [[nodiscard]] const Plan& current_plan() const { return current_; }
  [[nodiscard]] const Companion& companion() const { return companion_; }
  [[nodiscard]] bool allow_heter() const { return allow_heter_; }

 private:
  /// Translate a plan into (worker specs, EST assignment) for the engine.
  void reconfigure_engine(const Plan& plan);

  core::EasyScaleEngine* engine_;
  Companion companion_;
  bool allow_heter_;
  Plan current_;
  Plan previous_;
  double previous_observed_ = 0.0;
  std::vector<core::WorkerSpec> blocklist_;
  std::int64_t quarantine_cursor_ = 0;  // decision-log entries consumed
};

}  // namespace easyscale::sched
