// Composite layers used by the model zoo: residual blocks (ResNet), channel
// shuffle (ShuffleNetv2) and transformer encoder blocks (BERT / Electra /
// Swin).  Their parameter registration order intentionally mirrors typical
// PyTorch modules, where construction order differs from backward-ready
// order — that gap is what makes DDP's bucket rebuild observable (§3.3).
#pragma once

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/layer.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"

namespace easyscale::models {

using nn::Layer;
using nn::ParameterStore;
using nn::Shape;
using nn::StepContext;
using nn::Tensor;

/// conv-bn-relu-conv-bn + identity (or 1x1-conv downsample) skip.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::string name, std::int64_t in_ch, std::int64_t out_ch,
                std::int64_t stride);

  Tensor forward(StepContext& ctx, const Tensor& x) override;
  Tensor backward(StepContext& ctx, const Tensor& grad_out) override;
  void register_parameters(ParameterStore& store) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  void init_weights(rng::Philox& init) override;
  [[nodiscard]] bool uses_vendor_tuned_kernels() const override { return true; }
  [[nodiscard]] const char* kind() const override { return "ResidualBlock"; }

 private:
  bool has_downsample_;
  nn::Conv2d conv1_;
  nn::BatchNorm2d bn1_;
  nn::ReLU relu1_;
  nn::Conv2d conv2_;
  nn::BatchNorm2d bn2_;
  nn::Conv2d down_conv_;
  nn::BatchNorm2d down_bn_;
  nn::ReLU relu_out_;
};

/// ShuffleNet channel shuffle: regroups channels across `groups`.
class ChannelShuffle : public Layer {
 public:
  explicit ChannelShuffle(std::int64_t groups) : groups_(groups) {}

  Tensor forward(StepContext& ctx, const Tensor& x) override;
  Tensor backward(StepContext& ctx, const Tensor& grad_out) override;
  [[nodiscard]] const char* kind() const override { return "ChannelShuffle"; }

 private:
  std::int64_t groups_;
  Shape cached_shape_;
};

/// Pre-norm transformer encoder block: x + attn(LN(x)); x + FF(LN(x)).
class TransformerBlock : public Layer {
 public:
  TransformerBlock(std::string name, std::int64_t dim, std::int64_t heads,
                   std::int64_t ff_dim, float dropout_p);

  Tensor forward(StepContext& ctx, const Tensor& x) override;
  Tensor backward(StepContext& ctx, const Tensor& grad_out) override;
  void register_parameters(ParameterStore& store) override;
  void init_weights(rng::Philox& init) override;
  [[nodiscard]] const char* kind() const override { return "TransformerBlock"; }

 private:
  std::int64_t dim_;
  nn::LayerNorm ln1_;
  nn::MultiheadSelfAttention attn_;
  nn::LayerNorm ln2_;
  nn::Linear ff1_;
  nn::GELU gelu_;
  nn::Dropout drop_;
  nn::Linear ff2_;
  Shape cached_shape_;
};

}  // namespace easyscale::models
