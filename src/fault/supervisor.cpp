#include "fault/supervisor.hpp"

#include <algorithm>
#include <optional>

#include "comm/resilient.hpp"
#include "comm/transport.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace easyscale::fault {

int resolve_peer_replicas(int config_replicas) {
  ES_CHECK(config_replicas >= 0,
           "peer_replicas must be >= 0, got " << config_replicas);
  if (config_replicas > 0) return config_replicas;
  const auto v = env_int64("EASYSCALE_PEER_REPLICAS", 0, 15);
  return static_cast<int>(v.value_or(0));
}

FaultSupervisor::FaultSupervisor(core::EasyScaleEngine& engine,
                                 core::CheckpointManager& checkpoints,
                                 FaultInjector injector,
                                 SupervisorConfig config)
    : engine_(&engine),
      checkpoints_(&checkpoints),
      injector_(std::move(injector)),
      config_(std::move(config)) {
  ES_CHECK(config_.checkpoint_every >= 1, "checkpoint interval must be >= 1");
  ES_CHECK(config_.max_retries >= 1, "need at least one retry");
  if (config_.sdc_defense) {
    ES_CHECK(config_.witness_every >= 1,
             "sdc defense needs a positive witness cadence");
    ES_CHECK(config_.checkpoint_every % config_.witness_every == 0,
             "checkpoint interval must be a multiple of witness_every so "
             "periodic saves land on witness-certified steps");
  }
  ES_CHECK(config_.peer_snapshot_every >= 1,
           "peer snapshot interval must be >= 1");
  ES_CHECK(config_.ranks_per_node >= 1, "need at least one rank per node");
  ES_CHECK(config_.peer_keep_epochs >= 1,
           "must keep at least one peer epoch");
  ES_CHECK(config_.controller_replicas == 0 ||
               (config_.controller_replicas >= 3 &&
                config_.controller_replicas % 2 == 1),
           "controller_replicas must be 0 (disabled) or odd and >= 3, got "
               << config_.controller_replicas);
}

std::optional<DecisionRecord> FaultSupervisor::decide(DecisionKind kind,
                                                      std::int64_t arg0,
                                                      std::int64_t arg1,
                                                      std::int64_t arg2) {
  if (!control_) return std::nullopt;
  // Propose-then-apply: the caller acts only AFTER the entry committed on a
  // majority.  The controller fabric's virtual-time delta (commit rounds,
  // elections, partition waits) is charged to the wall model; the decision
  // CONTENT never depends on wall time, so the committed stream is bitwise
  // identical across failover histories.
  const double before = control_->stats().virtual_time_s;
  DecisionRecord rec =
      control_->propose(kind, engine_->global_step(), arg0, arg1, arg2);
  const double spent = control_->stats().virtual_time_s - before;
  stats_.controller_wall_s += spent;
  stats_.total_wall_s += spent;
  ++stats_.controller_decisions;
  // Every commit carries the leader's fencing epoch forward to the
  // checkpoint store: a deposed leader's writes die at the fence.
  checkpoints_->raise_fence(rec.epoch);
  return rec;
}

void FaultSupervisor::rearm_hooks() {
  // configure_workers rebuilds every Worker (fresh ExecContexts), so hooks
  // must be re-installed after EVERY reconfiguration.  Idempotent.
  for (std::int64_t s = 0; s < engine_->num_workers(); ++s) {
    kernels::PostOpHook* hook = nullptr;
    const std::int64_t dev = device_of_slot_[static_cast<std::size_t>(s)];
    if (condemned_.count(dev) == 0) {
      const auto it = corrupt_.find(dev);
      if (it != corrupt_.end()) hook = it->second.corruptor.get();
    }
    engine_->set_post_op_hook(s, hook);
  }
}

void FaultSupervisor::reshape_workers() {
  ES_CHECK(static_cast<std::int64_t>(device_of_slot_.size()) == workers_,
           "worker-slot/device bookkeeping out of sync");
  engine_->configure_workers(
      std::vector<core::WorkerSpec>(static_cast<std::size_t>(workers_)));
  rearm_hooks();
}

void FaultSupervisor::drop_slot(std::int64_t slot) {
  ES_CHECK(slot >= 0 &&
               slot < static_cast<std::int64_t>(device_of_slot_.size()),
           "dropping worker slot " << slot << " out of range");
  // The device leaves the job for good, and its DRAM — replica shelf
  // included — leaves with it.
  peer_mark_device_dead(device_of_slot_[static_cast<std::size_t>(slot)]);
  device_of_slot_.erase(device_of_slot_.begin() + slot);
}

void FaultSupervisor::peer_mark_device_dead(std::int64_t device) {
  if (!peer_) return;
  // Replacement devices (id >= the initial world) never joined the peer
  // fabric and hold no replicas.
  if (device < 0 || device >= peer_->world()) return;
  const int rank = static_cast<int>(device);
  if (peer_->rank_alive(rank)) {
    peer_->mark_dead(rank);
    peer_fabric_->kill(rank);
  }
}

std::set<int> FaultSupervisor::peer_excluded() const {
  std::set<int> excluded;
  if (!peer_) return excluded;
  for (const auto dev : condemned_) {
    if (dev >= 0 && dev < peer_->world()) {
      excluded.insert(static_cast<int>(dev));
    }
  }
  return excluded;
}

int FaultSupervisor::peer_requester() const {
  if (!peer_) return -1;
  for (int r = 0; r < peer_->world(); ++r) {
    if (peer_->rank_alive(r) && condemned_.count(r) == 0) return r;
  }
  return -1;
}

void FaultSupervisor::take_peer_snapshot() {
  if (!peer_) return;
  // Under sdc_defense a peer epoch must be as trustworthy as a verified
  // disk generation: only witness-certified states enter the stores.
  if (config_.sdc_defense &&
      engine_->last_clean_witness_step() != engine_->global_step()) {
    return;
  }
  // Copy-on-snapshot staging is the only critical-path cost; the frame
  // pushes ride the dedicated fabric's clock and surface as
  // peer_background_s at the end of the run.
  if (control_) {
    // Replicated path: the epoch commit is a control decision.  Frames are
    // staged and pushed first, the blessing commits on the decision log,
    // and only then does the epoch become recoverable — a leader that dies
    // between push and bless leaves an unblessed epoch the next leader's
    // replayed log knows nothing about (exactly like a torn phase-1 disk
    // write).
    peer_->stage(engine_->global_step(), engine_->checkpoint());
    if (peer_->replicate_staged(peer_excluded())) {
      decide(DecisionKind::kBlessPeerEpoch, engine_->global_step());
      peer_->commit_prepared();
      ++stats_.peer_snapshots;
    } else {
      ++stats_.peer_snapshot_aborts;
    }
  } else if (peer_->snapshot(engine_->global_step(), engine_->checkpoint(),
                             peer_excluded())) {
    ++stats_.peer_snapshots;
  } else {
    ++stats_.peer_snapshot_aborts;
  }
  stats_.peer_wall_s += config_.peer_stage_s;
  stats_.total_wall_s += config_.peer_stage_s;
}

void FaultSupervisor::arm_sdc(const FaultEvent& event) {
  ++stats_.sdc_events;
  const std::int64_t slot = event.worker % workers_;
  const std::int64_t device = device_of_slot_[static_cast<std::size_t>(slot)];
  // A device is sticky: once corrupt (or condemned) a second event is a
  // no-op rather than a re-seed, mirroring hardware that stays bad.
  if (corrupt_.count(device) != 0 || condemned_.count(device) != 0) return;
  SdcProfile prof;
  prof.mode = event.kind == FaultKind::kSdcBitFlip ? SdcMode::kBitFlip
                                                   : SdcMode::kPerturb;
  prof.seed = event.payload_seed;
  prof.ops_rate = config_.sdc_ops_rate;
  prof.magnitude = config_.sdc_magnitude;
  prof.mantissa_bit = config_.sdc_mantissa_bit;
  CorruptDevice cd;
  cd.corruptor = std::make_unique<SdcCorruptor>(prof);
  cd.since_step = engine_->global_step();
  corrupt_.emplace(device, std::move(cd));
  ES_LOG_WARN("device " << device << " (slot " << slot
                        << ") turns silently corrupt at step "
                        << engine_->global_step() << " ("
                        << to_string(event.kind) << ")");
  rearm_hooks();
}

void FaultSupervisor::charge_witness_wall() {
  const std::int64_t replays = engine_->witness_stats().replays;
  const double wall = static_cast<double>(replays - last_witness_replays_) *
                      config_.est_step_s;
  last_witness_replays_ = replays;
  if (wall > 0.0) {
    stats_.witness_wall_s += wall;
    stats_.total_wall_s += wall;
  }
}

double FaultSupervisor::step_cost() const {
  const std::int64_t ests = engine_->num_ests();
  const std::int64_t per_worker = (ests + workers_ - 1) / workers_;
  return config_.est_step_s * static_cast<double>(per_worker);
}

void FaultSupervisor::save_checkpoint() {
  // Replicated path: the blessing is a control decision FIRST; the write
  // then carries the committing leader's fencing epoch so a deposed
  // leader's save is rejected at the store.
  const auto bless =
      decide(DecisionKind::kBlessCheckpoint, config_.sdc_defense ? 1 : 0);
  if (config_.sdc_defense) {
    // Record the parameter digest chain with the payload, then bless the
    // fresh generation ONLY when the engine state it captures is witness-
    // certified: either the anchor (step 0) or a step the re-execution
    // witness just cleared.  A generation written while an undetected
    // corruption was live stays un-blessed and is skipped by the SDC
    // walk-back.
    if (bless.has_value()) {
      checkpoints_->save_fenced(bless->epoch, engine_->checkpoint(),
                                engine_->params_digest_chain());
    } else {
      checkpoints_->save(engine_->checkpoint(),
                         engine_->params_digest_chain());
    }
    if (engine_->last_clean_witness_step() == engine_->global_step() &&
        checkpoints_->verify_generation(0)) {
      ++stats_.verified_checkpoints;
    }
  } else if (bless.has_value()) {
    checkpoints_->save_fenced(bless->epoch, engine_->checkpoint());
  } else {
    checkpoints_->save(engine_->checkpoint());
  }
  ++stats_.checkpoints_saved;
  stats_.checkpoint_wall_s += config_.checkpoint_time_s;
  stats_.total_wall_s += config_.checkpoint_time_s;
}

bool FaultSupervisor::recover(bool shrink_one, int consecutive_faults) {
  ++stats_.recoveries;
  const std::int64_t before = engine_->global_step();
  const double cost_before = step_cost();
  const bool shrinking = config_.policy == RecoveryPolicy::kElasticScaleIn &&
                         shrink_one && workers_ > 1;
  // Two-phase condemnation on the decision log: the crashed device is
  // proposed, then committed, BEFORE any state mutates — a failover in
  // between replays both entries and lands in the same place.
  if (shrinking) {
    decide(DecisionKind::kCondemnPropose, device_of_slot_.back());
    decide(DecisionKind::kCondemnCommit, device_of_slot_.back());
  }
  // The crashed device's DRAM is gone BEFORE any fetch: its replica store
  // must not serve the recovery.  (By convention the highest slot dies —
  // which slot is immaterial to training bits.)
  if (shrinking) peer_mark_device_dead(device_of_slot_.back());
  // Recovery lattice: peer quorum first (the newest commonly-available
  // committed epoch, fetched in-fabric), disk walk-back only when no intact
  // quorum exists.
  std::optional<std::vector<std::uint8_t>> bytes;
  if (peer_) {
    const int requester = peer_requester();
    if (requester >= 0) {
      const double fetch_before = peer_->stats().fetch_virtual_s;
      auto rec = peer_->recover(requester, peer_excluded());
      const double fetch_s = peer_->stats().fetch_virtual_s - fetch_before;
      stats_.recovery_wall_s += fetch_s;
      stats_.total_wall_s += fetch_s;
      if (rec.has_value()) {
        bytes = std::move(rec->snapshot);
        ++stats_.peer_recoveries;
      }
    }
  }
  const bool from_peer = bytes.has_value();
  if (!bytes.has_value()) {
    bytes = control_ ? checkpoints_->load_latest_valid_fenced(control_->epoch())
                     : checkpoints_->load_latest_valid();
    if (bytes.has_value()) ++stats_.disk_recoveries;
  }
  if (!bytes.has_value()) {
    ES_LOG_WARN("no peer quorum and no valid checkpoint generation on disk; "
                "job lost");
    return false;
  }
  // Which saved state this recovery restores from (0 = peer quorum,
  // 1 = disk walk-back) is itself a committed decision.
  decide(DecisionKind::kRecoveryPoint, from_peer ? 0 : 1, before);
  if (shrinking) {
    drop_slot(workers_ - 1);
    --workers_;
    ++stats_.scale_ins;
    decide(DecisionKind::kMembershipEpoch, workers_, -1, 2);
  }
  reshape_workers();
  engine_->restore(*bytes);
  const std::int64_t lost = std::max<std::int64_t>(
      0, before - engine_->global_step());
  stats_.lost_steps += lost;
  stats_.lost_wall_s += static_cast<double>(lost) * cost_before;
  // Bounded, jittered exponential backoff: the delay doubles per
  // consecutive fault but never beyond backoff_max_s, and the deterministic
  // jitter keeps a fleet of recovering jobs out of phase.
  comm::BackoffPolicy backoff;
  backoff.base_s = config_.backoff_base_s;
  backoff.max_s = std::max(config_.backoff_base_s, config_.backoff_max_s);
  backoff.jitter_seed = config_.backoff_jitter_seed;
  bool capped = false;
  double wait = config_.restore_time_s +
                backoff.delay_s(consecutive_faults, &capped);
  if (capped) ++stats_.capped_backoffs;
  if (config_.policy == RecoveryPolicy::kGangRestart) {
    wait += config_.replacement_wait_s;  // block until the gang is whole
  }
  stats_.recovery_wall_s += wait;
  stats_.total_wall_s += wait;
  return true;
}

bool FaultSupervisor::recover_from_sdc(const core::IntegrityError& e,
                                       int consecutive_faults) {
  ++stats_.recoveries;
  ++stats_.sdc_detections;
  const std::int64_t before = engine_->global_step();
  const double cost_before = step_cost();
  const std::int64_t slot = e.worker();
  const std::int64_t device = device_of_slot_[static_cast<std::size_t>(slot)];
  // Two-phase condemnation + quarantine on the decision log (arg1 = 1
  // flags the SDC origin).  All three entries commit BEFORE any local
  // state mutates, so a mid-recovery failover replays them and the new
  // leader's quarantine view matches exactly.
  decide(DecisionKind::kCondemnPropose, device, 1);
  decide(DecisionKind::kCondemnCommit, device, 1);
  decide(DecisionKind::kQuarantine, device, slot);
  condemned_.insert(device);
  // Nothing the corrupt device holds is trusted again — not even replica
  // frames it stored for OTHER ranks (its DRAM integrity is in question).
  peer_mark_device_dead(device);
  if (ledger_ != nullptr) {
    const auto specs = engine_->current_worker_specs();
    ledger_->record(stats_.total_wall_s,
                    static_cast<int>(specs[static_cast<std::size_t>(slot)].device));
  }
  const auto it = corrupt_.find(device);
  if (it != corrupt_.end()) {
    stats_.sdc_detect_latency_steps += before - it->second.since_step;
  }
  ES_LOG_WARN("witness condemned device " << device << " (slot " << slot
                                          << ", est " << e.est()
                                          << ") at step " << before);
  // Quarantine the device.  Preferred route: the external scheduler's
  // bitwise-neutral remap (blocklist + EST redeal).  Fallbacks: elastic
  // jobs shrink around the device; a gang job (or the last worker) swaps
  // in a replacement device.
  bool remapped = false;
  if (quarantine_) remapped = quarantine_(slot);
  if (remapped) {
    drop_slot(slot);
    workers_ = engine_->num_workers();
    rearm_hooks();
  } else if (config_.policy == RecoveryPolicy::kElasticScaleIn &&
             workers_ > 1) {
    drop_slot(slot);
    --workers_;
    ++stats_.scale_ins;
    reshape_workers();
  } else {
    device_of_slot_[static_cast<std::size_t>(slot)] = next_device_id_++;
    reshape_workers();
    if (config_.policy == RecoveryPolicy::kGangRestart) {
      stats_.recovery_wall_s += config_.replacement_wait_s;
      stats_.total_wall_s += config_.replacement_wait_s;
    }
  }
  decide(DecisionKind::kMembershipEpoch, workers_, device, 3);
  ++stats_.devices_quarantined;
  stats_.recovery_wall_s += config_.sdc_repair_s;
  stats_.total_wall_s += config_.sdc_repair_s;
  // Restore lattice: peer quorum first — under sdc_defense peer epochs are
  // staged only at witness-certified steps, so a committed peer epoch is as
  // trustworthy as a verified disk generation, and newer.  Fall back to the
  // last VERIFIED disk generation.  Merely-valid generations are never
  // enough: one written during the detection window is well-formed but
  // captures poisoned parameters.
  std::optional<std::vector<std::uint8_t>> restored;
  if (peer_) {
    const int requester = peer_requester();
    if (requester >= 0) {
      const double fetch_before = peer_->stats().fetch_virtual_s;
      auto rec = peer_->recover(requester, peer_excluded());
      const double fetch_s = peer_->stats().fetch_virtual_s - fetch_before;
      stats_.recovery_wall_s += fetch_s;
      stats_.total_wall_s += fetch_s;
      if (rec.has_value()) {
        restored = std::move(rec->snapshot);
        ++stats_.peer_recoveries;
      }
    }
  }
  decide(DecisionKind::kRecoveryPoint, restored.has_value() ? 0 : 1, before);
  if (restored.has_value()) {
    engine_->restore(*restored);
  } else {
    if (control_) checkpoints_->check_fence(control_->epoch(), "SDC restore");
    const auto verified = checkpoints_->load_latest_verified();
    if (!verified.has_value()) {
      ES_LOG_WARN("no peer quorum and no verified checkpoint generation on "
                  "disk; job lost");
      return false;
    }
    ++stats_.disk_recoveries;
    engine_->restore(verified->first);
    ES_CHECK(engine_->params_digest_chain() == verified->second,
             "restored parameters disagree with the verified digest chain");
  }
  const std::int64_t lost =
      std::max<std::int64_t>(0, before - engine_->global_step());
  stats_.lost_steps += lost;
  stats_.lost_wall_s += static_cast<double>(lost) * cost_before;
  comm::BackoffPolicy backoff;
  backoff.base_s = config_.backoff_base_s;
  backoff.max_s = std::max(config_.backoff_base_s, config_.backoff_max_s);
  backoff.jitter_seed = config_.backoff_jitter_seed;
  bool capped = false;
  const double wait =
      config_.restore_time_s + backoff.delay_s(consecutive_faults, &capped);
  if (capped) ++stats_.capped_backoffs;
  stats_.recovery_wall_s += wait;
  stats_.total_wall_s += wait;
  return true;
}

GoodputStats FaultSupervisor::run_to(std::int64_t target_step,
                                     std::int64_t initial_workers) {
  ES_CHECK(initial_workers >= 1, "need at least one worker");
  ES_CHECK(initial_workers <= engine_->num_ests(), "more workers than ESTs");
  stats_ = GoodputStats{};
  workers_ = initial_workers;
  initial_workers_ = initial_workers;
  // Slot s starts on device s; replacements get fresh ids, condemned ids
  // never return.
  device_of_slot_.clear();
  for (std::int64_t s = 0; s < workers_; ++s) device_of_slot_.push_back(s);
  next_device_id_ = workers_;
  corrupt_.clear();
  condemned_.clear();
  last_witness_replays_ = 0;
  if (config_.sdc_defense) {
    engine_->set_witness_every(config_.witness_every);
  }
  // Peer pipeline: one service rank per INITIAL device, over a dedicated
  // storage fabric.  A single-worker job has nobody to replicate to.
  peer_.reset();
  peer_fabric_.reset();
  const int peer_replicas = resolve_peer_replicas(config_.peer_replicas);
  if (peer_replicas > 0 && initial_workers >= 2) {
    peer_fabric_ = std::make_unique<comm::SimTransport>(
        static_cast<int>(initial_workers), comm::TransportConfig{});
    PeerCheckpointConfig pcfg;
    pcfg.replicas =
        std::min(peer_replicas, static_cast<int>(initial_workers) - 1);
    pcfg.ranks_per_node = config_.ranks_per_node;
    pcfg.keep_epochs = config_.peer_keep_epochs;
    peer_ = std::make_unique<PeerCheckpointService>(*peer_fabric_, pcfg);
  }
  // Replicated control plane: 2f+1 supervisor replicas over their own
  // fabric.  Every decision below goes through decide() — proposed to the
  // log, applied only once committed on a majority.
  control_.reset();
  if (config_.controller_replicas > 0) {
    ControllerConfig ccfg = config_.controller;
    ccfg.replicas = config_.controller_replicas;
    control_ = std::make_unique<ControlPlane>(ccfg);
  }
  reshape_workers();
  try {
    // The run opens with a committed membership epoch: the initial worker
    // set is itself a decision a failed-over leader must replay.
    decide(DecisionKind::kMembershipEpoch, workers_, -1, 0);
    // Anchor generation: recovery is always possible, even when the very
    // first steps are hit.  Under sdc_defense it is verified (step 0 is the
    // witness chain's trusted root).
    save_checkpoint();
    take_peer_snapshot();
    run_loop(target_step);
  } catch (const ControllerUnavailableError& e) {
    // More than f of the 2f+1 replicas are gone: no quorum, no leader, no
    // decisions.  Honest unavailability — the job halts rather than let a
    // minority leader keep mutating state (split-brain).
    ES_LOG_WARN("control plane lost quorum; halting: " << e.what());
    stats_.controller_unavailable = true;
    stats_.failed = true;
  }
  stats_.steps_completed = engine_->global_step();
  stats_.witness_replays = engine_->witness_stats().replays;
  if (peer_) {
    stats_.peer_background_s = peer_->stats().replicate_virtual_s;
  }
  if (control_) {
    stats_.controller_failovers = control_->stats().failovers;
  }
  return stats_;
}

void FaultSupervisor::run_loop(std::int64_t target_step) {
  int consecutive_faults = 0;
  std::int64_t clean_steps = 0;
  while (engine_->global_step() < target_step) {
    const auto due = injector_.take_due(engine_->global_step());
    bool fatal = false;        // roll back to the last valid checkpoint
    bool lose_worker = false;  // a physical worker is gone for good
    double slowdown = 1.0;
    for (const auto& event : due) {
      ++stats_.faults_seen;
      switch (event.kind) {
        case FaultKind::kStraggler:
          slowdown = std::max(slowdown, event.slowdown);
          break;
        case FaultKind::kTornCheckpoint:
          // Adversary mangles the newest on-disk generation; noticed only
          // when a later recovery walks the generations.
          FaultInjector::tear_file(checkpoints_->path_for(0),
                                   event.payload_seed);
          break;
        case FaultKind::kGpuRevocation:
          if (config_.policy == RecoveryPolicy::kElasticScaleIn) {
            // Grace period: on-demand checkpoint, then shrink the worker
            // set.  configure_workers carries the live state across, so
            // nothing is lost and no rollback happens.
            save_checkpoint();
            if (workers_ > 1) {
              const std::int64_t slot =
                  static_cast<std::int64_t>(event.worker) % workers_;
              // The shrink is a committed membership decision (arg1 = the
              // revoked device, arg2 = 1 flags a graceful revocation).
              decide(DecisionKind::kMembershipEpoch, workers_ - 1,
                     device_of_slot_[static_cast<std::size_t>(slot)], 1);
              drop_slot(slot);
              --workers_;
              reshape_workers();
              ++stats_.scale_ins;
              stats_.reconfig_wall_s += config_.reconfigure_time_s;
              stats_.total_wall_s += config_.reconfigure_time_s;
            }
            clean_steps = 0;
          } else {
            // A gang job cannot run below strength: abort and restart.
            fatal = true;
            ++consecutive_faults;
          }
          break;
        case FaultKind::kWorkerCrash:
        case FaultKind::kCommDrop:
          // No grace: the in-flight step is lost (a dropped all-reduce
          // participant aborts the step for everyone).
          fatal = true;
          lose_worker = true;
          ++consecutive_faults;
          break;
        case FaultKind::kCommChunkDrop:
        case FaultKind::kCommStalledLink:
          // Transient link faults.  With the resilient substrate the
          // collective absorbs them (abort + bounded backoff + bitwise
          // re-execution); a gang job aborts the step like any sync fault.
          ++stats_.comm_faults;
          if (event.kind == FaultKind::kCommStalledLink) {
            ++stats_.straggler_reports;
          }
          if (config_.policy == RecoveryPolicy::kGangRestart) {
            fatal = true;
            ++consecutive_faults;
          } else if (engine_->resilient_comm_enabled() && workers_ > 1) {
            comm::CommFaultEvent ce;
            ce.kind = event.kind == FaultKind::kCommChunkDrop
                          ? comm::LinkFaultKind::kDropChunk
                          : comm::LinkFaultKind::kStallLink;
            ce.rank = static_cast<int>(event.worker % workers_);
            ce.stall_s = event.stall_s;
            ce.payload_seed = event.payload_seed;
            engine_->inject_comm_fault(ce);
          } else {
            // No failure-aware fabric: the sync layer still retransmits,
            // costing one detection window of wall time.
            ++stats_.comm_retries;
            stats_.comm_wall_s += config_.comm_detect_s;
            stats_.total_wall_s += config_.comm_detect_s;
          }
          break;
        case FaultKind::kCommRankDeath:
          // A rank goes silent mid-collective.  The resilient collective
          // condemns it via deadlines + heartbeat silence and aborts the
          // step (RankDeathError below); without the substrate — or for a
          // gang job — it degenerates to a worker crash.
          ++stats_.comm_faults;
          if (config_.policy == RecoveryPolicy::kElasticScaleIn &&
              engine_->resilient_comm_enabled() && workers_ > 1) {
            comm::CommFaultEvent ce;
            ce.kind = comm::LinkFaultKind::kRankDeath;
            ce.rank = static_cast<int>(event.worker % workers_);
            engine_->inject_comm_fault(ce);
          } else {
            fatal = true;
            lose_worker = true;
            ++consecutive_faults;
          }
          break;
        case FaultKind::kSdcBitFlip:
        case FaultKind::kSdcPerturb:
          // The device goes silently bad: every kernel output it produces
          // from now on is corrupted (no exception, no crash).  Detection —
          // if anyone is watching — happens at the next witness step.
          arm_sdc(event);
          break;
        case FaultKind::kControllerCrash:
          // A controller replica dies.  Training is untouched; the loss
          // surfaces at the next decision — a dead LEADER costs a lease
          // failover, a dead follower at worst thins the ack quorum.  With
          // the control plane disabled the event is a no-op (the in-process
          // supervisor has no replicas to lose).
          if (control_) {
            control_->crash_replica(static_cast<std::int64_t>(event.worker));
            ++stats_.controller_crashes;
          }
          break;
        case FaultKind::kControllerPartition:
          // The controller fabric partitions: a seeded minority subset
          // (never a majority — quorum math, not luck) is isolated until
          // partition_heal_s of fabric time passes.  Decisions stall or
          // fail over, they never fork.
          if (control_) {
            control_->partition(event.payload_seed);
            ++stats_.controller_partitions;
          }
          break;
        case FaultKind::kPeerReplicaLoss:
          // One frame evaporates from a rank's replica shelf (host OOM,
          // DRAM scrub, eviction).  Training is untouched — the loss shows
          // up only if a later recovery needed that copy.
          if (peer_) {
            const std::int64_t slot =
                static_cast<std::int64_t>(event.worker) % workers_;
            const std::int64_t dev =
                device_of_slot_[static_cast<std::size_t>(slot)];
            if (dev >= 0 && dev < peer_->world() &&
                peer_->drop_random_replica(static_cast<int>(dev),
                                           event.payload_seed)) {
              ++stats_.peer_replicas_lost;
            }
          }
          break;
        default:
          ES_THROW("unknown fault kind");
      }
    }
    if (fatal) {
      if (consecutive_faults > config_.max_retries ||
          !recover(lose_worker, consecutive_faults)) {
        stats_.failed = true;
        break;
      }
      clean_steps = 0;
      continue;  // re-check the schedule before stepping again
    }

    const double cost = step_cost() * slowdown;
    try {
      engine_->run_steps(1);
    } catch (const comm::RankDeathError& e) {
      // Condemned mid-collective: the in-flight all-reduce was aborted,
      // nothing was published.  Charge the detection window and roll back
      // to the last valid checkpoint on the survivors.
      ES_LOG_WARN("rank " << e.rank() << " condemned mid-collective");
      ++consecutive_faults;
      stats_.recovery_wall_s += config_.comm_detect_s;
      stats_.total_wall_s += config_.comm_detect_s;
      if (consecutive_faults > config_.max_retries ||
          !recover(/*shrink_one=*/true, consecutive_faults)) {
        stats_.failed = true;
        break;
      }
      clean_steps = 0;
      continue;
    } catch (const core::IntegrityError& e) {
      // The re-execution witness caught a silent corruption BEFORE the
      // all-reduce published it.  Charge the replays that ran, condemn +
      // quarantine the device, and walk back to the last verified
      // generation.
      charge_witness_wall();
      ++consecutive_faults;
      if (consecutive_faults > config_.max_retries ||
          !recover_from_sdc(e, consecutive_faults)) {
        stats_.failed = true;
        break;
      }
      clean_steps = 0;
      continue;
    }
    charge_witness_wall();
    if (engine_->resilient_comm_enabled() &&
        engine_->last_comm_report().has_value()) {
      const auto& rep = *engine_->last_comm_report();
      stats_.comm_retries += rep.attempts - 1;
      stats_.capped_backoffs += rep.capped_backoffs;
      stats_.comm_wall_s += rep.virtual_time_s;
      stats_.total_wall_s += rep.virtual_time_s;
    }
    ++stats_.steps_executed;
    stats_.step_wall_s += cost;
    stats_.total_wall_s += cost;
    consecutive_faults = 0;
    if (engine_->global_step() % config_.checkpoint_every == 0) {
      save_checkpoint();
    }
    if (peer_ &&
        engine_->global_step() % config_.peer_snapshot_every == 0) {
      take_peer_snapshot();
    }
    // Re-grow toward the designed worker count after a quiet period (the
    // refill behaviour of §5.3); bitwise-neutral like any scale event.
    if (config_.policy == RecoveryPolicy::kElasticScaleIn &&
        config_.regrow_after_clean_steps > 0 && workers_ < initial_workers_ &&
        ++clean_steps >= config_.regrow_after_clean_steps) {
      // Refill with a FRESH device: condemned ids never re-enter the slot
      // map, so a quarantined device stays quarantined forever.  The
      // reshard choice (new extent, new device) commits first.
      decide(DecisionKind::kReshard, workers_ + 1, next_device_id_);
      device_of_slot_.push_back(next_device_id_++);
      ++workers_;
      reshape_workers();
      ++stats_.scale_outs;
      stats_.reconfig_wall_s += config_.reconfigure_time_s;
      stats_.total_wall_s += config_.reconfigure_time_s;
      clean_steps = 0;
    }
  }
}

}  // namespace easyscale::fault
