// Determinism levels (§3.3).
//
//  D0 (static):        fixed RNG seeds recorded in contexts/checkpoints +
//                      deterministic kernel implementations.  Reproducible
//                      on a fixed set of GPUs; loses the gradient-bucket
//                      mapping across restarts, so rescaling diverges.
//  D1 (elastic):       D0 + constant virtual communication ranks + bucket
//                      layout recorded in the checkpoint with channel
//                      rebuild disabled.  Bitwise-stable across any number
//                      of homogeneous GPUs.
//  +D2 (heterogeneous): hardware-agnostic kernel implementations, bitwise-
//                      stable across GPU *types*, at a real throughput cost
//                      for conv-heavy models (Fig 12).
#pragma once

#include "kernels/exec_context.hpp"
#include "models/workload.hpp"

namespace easyscale::core {

enum class DeterminismLevel : int { kD0 = 0, kD1 = 1 };

struct DeterminismConfig {
  DeterminismLevel level = DeterminismLevel::kD1;
  bool d2 = false;
};

/// Kernel policy implied by a determinism config.
[[nodiscard]] inline kernels::KernelPolicy kernel_policy(
    const DeterminismConfig& cfg) {
  return cfg.d2 ? kernels::KernelPolicy::kHardwareAgnostic
                : kernels::KernelPolicy::kDeterministic;
}

/// The model scan of §3.3: a workload whose layers never lower to
/// vendor-tuned kernels can enable D2 (and thus heterogeneous GPUs) at
/// negligible cost.  Conv-bearing workloads pay the canonical-kernel
/// penalty, so EasyScale schedules them onto homogeneous GPUs instead
/// unless the user opts in.
[[nodiscard]] inline bool d2_recommended(const models::Workload& workload) {
  return !workload.uses_vendor_tuned_kernels();
}

}  // namespace easyscale::core
