// GEMM kernels with controlled floating-point accumulation orders.
//
// C[m,n] (+)= A[m,k] * B[k,n].  The variant decides how the k-loop partial
// products are associated; see kernels/exec_context.hpp.
#pragma once

#include <cstdint>
#include <span>

#include "kernels/exec_context.hpp"

namespace easyscale::kernels {

/// General matrix multiply.  When `accumulate` is false C is overwritten,
/// otherwise the product is added to C.  B is packed (transposed) internally
/// for locality; packing does not change FP values, only the k-loop
/// association chosen by the variant does.
void gemm(const ExecContext& ctx, std::int64_t m, std::int64_t n,
          std::int64_t k, std::span<const float> a, std::span<const float> b,
          std::span<float> c, bool accumulate = false);

/// Like gemm but with an explicit variant (used by tests and by the
/// autotuner's probe path).  This overload runs sequentially and allocates
/// its own pack buffer — it needs no context.
void gemm_variant(GemmVariant variant, std::int64_t m, std::int64_t n,
                  std::int64_t k, std::span<const float> a,
                  std::span<const float> b, std::span<float> c,
                  bool accumulate = false);

/// Explicit variant with a context: uses the context's intra-op pool and
/// scratch arena.  Bitwise identical to the sequential overload above for
/// every thread count.
void gemm_variant(const ExecContext& ctx, GemmVariant variant, std::int64_t m,
                  std::int64_t n, std::int64_t k, std::span<const float> a,
                  std::span<const float> b, std::span<float> c,
                  bool accumulate = false);

/// C[m,n] (+)= A^T[k,m]^T... convenience wrappers used by backward passes:
/// gemm_tn computes C = A^T * B with A stored [k,m];
/// gemm_nt computes C = A * B^T with B stored [n,k].
void gemm_tn(const ExecContext& ctx, std::int64_t m, std::int64_t n,
             std::int64_t k, std::span<const float> a,
             std::span<const float> b, std::span<float> c,
             bool accumulate = false);
void gemm_nt(const ExecContext& ctx, std::int64_t m, std::int64_t n,
             std::int64_t k, std::span<const float> a,
             std::span<const float> b, std::span<float> c,
             bool accumulate = false);

}  // namespace easyscale::kernels
