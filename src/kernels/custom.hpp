// User-customizable D2 kernels — the paper's stated future work ("we will
// allow the users to customize D2 kernels via Cutlass", §3.3).
//
// A custom GEMM kernel is a dot-product routine with a caller-chosen,
// hardware-independent accumulation order.  Registering one returns a
// handle; setting ExecContext::custom_gemm to that handle makes the
// hardware-agnostic policy use it instead of the built-in pinned variant —
// letting users trade speed for numerics (e.g. Kahan compensation) while
// keeping bitwise D2 consistency across device types.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "kernels/exec_context.hpp"

namespace easyscale::kernels {

/// Dot product over k contiguous elements of x and y.
using CustomDotFn =
    std::function<float(const float* x, const float* y, std::int64_t k)>;

/// Register a custom kernel; returns its handle (>= 1).  Registration is
/// process-global and append-only (handles stay valid).
[[nodiscard]] int register_custom_gemm(std::string name, CustomDotFn fn);

/// Look up a registered kernel.  Throws for unknown handles.
[[nodiscard]] const CustomDotFn& custom_gemm(int handle);
[[nodiscard]] const std::string& custom_gemm_name(int handle);

/// Number of registered custom kernels.
[[nodiscard]] int num_custom_gemms();

/// A ready-made example: Kahan-compensated summation — slower, but with
/// far smaller accumulation error than any built-in variant.
[[nodiscard]] float kahan_dot(const float* x, const float* y, std::int64_t k);

}  // namespace easyscale::kernels
