// Weighted max-min fair-share allocator with SLA-aware preemption order.
//
// The allocator works on *tenant aggregates* (total GPUs, not device
// types): guaranteed and burst tenants are first made whole up to
// min(demand, quota), then the surplus is water-filled across all unmet
// demand proportionally to tenant weight.  Integer GPUs come out of a
// deterministic largest-remainder rounding (ties toward the lower tenant
// id), so the same inputs always produce the same allocation.
//
// Preemption never kills a job here: when capacity shrinks, the service
// re-runs the allocator and routes the *difference* through the elastic
// scale-in path (jobs shrink toward — but, for guaranteed tenants, never
// below — their fair share), in SLA order: spot first, burst next,
// guaranteed last.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/tenant.hpp"

namespace easyscale::cluster {

struct ShareRequest {
  std::int64_t tenant = 0;
  SlaTier tier = SlaTier::kBurst;
  std::int64_t quota = 0;
  double weight = 1.0;
  std::int64_t demand = 0;  // sum over the tenant's jobs of min(maxP, want)
};

/// result[i] is the GPU share of requests[i]; sums to at most capacity and
/// never exceeds the request's demand.
[[nodiscard]] std::vector<std::int64_t> fair_share(
    const std::vector<ShareRequest>& requests, std::int64_t capacity);

/// Jain's fairness index over per-tenant normalized service x_i =
/// received_i / weight_i: (Σx)² / (n·Σx²), 1.0 = perfectly fair.
[[nodiscard]] double jain_index(const std::vector<double>& normalized);

}  // namespace easyscale::cluster
