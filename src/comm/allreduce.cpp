#include "comm/allreduce.hpp"

#include "comm/ring.hpp"
#include "common/error.hpp"

namespace easyscale::comm {

GradientSet GradientSet::zeros_like(const autograd::ParameterStore& params) {
  GradientSet set;
  set.grads.reserve(params.size());
  for (const auto* p : params.all()) {
    set.grads.emplace_back(p->grad.shape());
  }
  return set;
}

GradientSet GradientSet::from_store(const autograd::ParameterStore& params) {
  GradientSet set;
  set.grads.reserve(params.size());
  for (const auto* p : params.all()) set.grads.push_back(p->grad);
  return set;
}

void GradientSet::to_store(autograd::ParameterStore& params) const {
  ES_CHECK(grads.size() == params.size(), "gradient set size mismatch");
  for (std::size_t i = 0; i < grads.size(); ++i) {
    params.all()[i]->grad = grads[i];
  }
}

void GradientSet::zero() {
  for (auto& g : grads) g.zero();
}

void GradientSet::save(ByteWriter& w) const {
  w.write<std::uint64_t>(grads.size());
  for (const auto& g : grads) g.save(w);
}

GradientSet GradientSet::load(ByteReader& r) {
  GradientSet set;
  const auto n = r.read<std::uint64_t>();
  set.grads.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    set.grads.push_back(tensor::Tensor::load(r));
  }
  return set;
}

std::int64_t gradient_bytes(const GradientSet& set) {
  std::int64_t bytes = 0;
  for (const auto& g : set.grads) {
    bytes += g.numel() * static_cast<std::int64_t>(sizeof(float));
  }
  return bytes;
}

void validate_allreduce_inputs(const BucketLayout& layout,
                               const std::vector<GradientSet*>& parts) {
  ES_CHECK(!parts.empty(), "allreduce over zero participants");
  for (std::size_t r = 0; r < parts.size(); ++r) {
    ES_CHECK(parts[r] != nullptr, "allreduce part " << r << " is null");
    ES_CHECK(parts[r]->grads.size() == parts[0]->grads.size(),
             "allreduce part " << r << " has " << parts[r]->grads.size()
                               << " gradients, part 0 has "
                               << parts[0]->grads.size());
  }
  const auto num_grads = static_cast<std::int64_t>(parts[0]->grads.size());
  std::vector<bool> seen(parts[0]->grads.size(), false);
  for (std::size_t b = 0; b < layout.buckets.size(); ++b) {
    for (int id : layout.buckets[b]) {
      ES_CHECK(id >= 0 && id < num_grads,
               "bucket " << b << " references gradient " << id
                         << " outside [0, " << num_grads << ")");
      ES_CHECK(!seen[static_cast<std::size_t>(id)],
               "gradient " << id << " appears in two buckets");
      seen[static_cast<std::size_t>(id)] = true;
      for (std::size_t r = 1; r < parts.size(); ++r) {
        ES_CHECK(parts[r]->grads[static_cast<std::size_t>(id)].numel() ==
                     parts[0]->grads[static_cast<std::size_t>(id)].numel(),
                 "gradient " << id << " shape disagrees between part 0 and "
                             << "part " << r
                             << " (bucket layout cannot apply)");
      }
    }
  }
}

void allreduce_average_bucket(const BucketLayout& layout, std::size_t b,
                              const std::vector<GradientSet*>& parts) {
  ES_CHECK(b < layout.buckets.size(), "bucket index out of range");
  const auto& bucket = layout.buckets[b];
  const float inv_world = 1.0f / static_cast<float>(parts.size());
  std::int64_t flat_len = 0;
  for (int id : bucket) {
    flat_len += parts[0]->grads[static_cast<std::size_t>(id)].numel();
  }
  // Flatten every participant's bucket (pure data movement).
  std::vector<std::vector<float>> flats(parts.size());
  for (std::size_t r = 0; r < parts.size(); ++r) {
    flats[r].resize(static_cast<std::size_t>(flat_len));
    std::int64_t off = 0;
    for (int id : bucket) {
      const auto& g = parts[r]->grads[static_cast<std::size_t>(id)];
      std::copy(g.data().begin(), g.data().end(), flats[r].begin() + off);
      off += g.numel();
    }
  }
  std::vector<std::span<const float>> views;
  views.reserve(parts.size());
  for (const auto& f : flats) views.emplace_back(f);
  std::vector<float> reduced(static_cast<std::size_t>(flat_len));
  ring_allreduce_sum(views, reduced);
  for (auto& v : reduced) v *= inv_world;
  // Scatter the averaged bucket back into every participant.
  for (auto* part : parts) {
    std::int64_t off = 0;
    for (int id : bucket) {
      auto& g = part->grads[static_cast<std::size_t>(id)];
      std::copy(reduced.begin() + off, reduced.begin() + off + g.numel(),
                g.data().begin());
      off += g.numel();
    }
  }
}

void allreduce_average(const BucketLayout& layout,
                       std::vector<GradientSet*>& parts) {
  validate_allreduce_inputs(layout, parts);
  for (std::size_t b = 0; b < layout.buckets.size(); ++b) {
    allreduce_average_bucket(layout, b, parts);
  }
}

}  // namespace easyscale::comm
