#include "sim/recovery_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "rng/philox.hpp"

namespace easyscale::sim {

double peer_fetch_seconds(const comm::TransportConfig& fabric,
                          std::int64_t frame_bytes) {
  ES_CHECK(fabric.link_bandwidth_bps > 0.0, "fabric bandwidth must be > 0");
  return fabric.link_latency_s +
         static_cast<double>(frame_bytes) / fabric.link_bandwidth_bps;
}

namespace {

/// One strategy's job timeline: wall clock and completed-step counter.
struct JobTimeline {
  double t_s = 0.0;
  std::int64_t steps = 0;
};

/// Advance `job` to the failure instant, then roll back to its newest
/// recovery point (`every`-step cadence) and charge `restore_s`.  Returns
/// the steps lost to the rollback.
std::int64_t fail_and_recover(JobTimeline& job, double fail_t_s,
                              double step_s, std::int64_t every,
                              double restore_s) {
  if (fail_t_s > job.t_s) {
    job.steps +=
        static_cast<std::int64_t>((fail_t_s - job.t_s) / step_s);
    job.t_s = fail_t_s;
  }
  const std::int64_t lost = job.steps % every;
  job.steps -= lost;
  job.t_s += restore_s;
  return lost;
}

}  // namespace

RecoveryModelResult model_recovery(
    const std::vector<ClusterFailureEvent>& failures,
    const RecoveryModelConfig& config) {
  ES_CHECK(config.step_s > 0.0, "step time must be positive");
  ES_CHECK(config.disk_every >= 1, "disk cadence must be >= 1");
  ES_CHECK(config.peer_every >= 1, "peer cadence must be >= 1");
  ES_CHECK(config.world >= 1, "need at least one rank");
  ES_CHECK(config.peer_replicas >= 0, "replicas must be >= 0");
  ES_CHECK(config.replica_loss_rate >= 0.0 && config.replica_loss_rate <= 1.0,
           "replica loss rate must be a probability");

  std::vector<ClusterFailureEvent> sorted = failures;
  std::sort(sorted.begin(), sorted.end(),
            [](const ClusterFailureEvent& a, const ClusterFailureEvent& b) {
              return a.t_s < b.t_s;
            });

  const std::int64_t frame_bytes =
      (config.snapshot_bytes + config.world - 1) / config.world;
  const double fetch_s = peer_fetch_seconds(config.fabric, frame_bytes);

  RecoveryModelResult result;
  JobTimeline disk_job;
  JobTimeline peer_job;
  rng::Philox gen(config.seed);
  for (const auto& ev : sorted) {
    ++result.failures;
    // Disk-only strategy: lose up to a full disk interval, pay the disk
    // restore.
    result.lost_steps_disk += fail_and_recover(
        disk_job, ev.t_s, config.step_s, config.disk_every,
        config.disk_restore_s);
    result.recovery_s_disk += config.disk_restore_s;

    // Peer-first strategy: the dead rank's owner copy dies with it; the
    // quorum holds if any peer replica survives the seeded loss draw.
    // The draws are consumed unconditionally (fixed count per failure) so
    // the stream stays aligned across configs.
    bool quorum = false;
    for (int r = 0; r < config.peer_replicas; ++r) {
      if (gen.next_double() >= config.replica_loss_rate) quorum = true;
    }
    if (quorum) {
      result.lost_steps_peer += fail_and_recover(
          peer_job, ev.t_s, config.step_s, config.peer_every, fetch_s);
      result.recovery_s_peer += fetch_s;
      ++result.peer_recoveries;
    } else {
      result.lost_steps_peer += fail_and_recover(
          peer_job, ev.t_s, config.step_s, config.disk_every,
          config.disk_restore_s);
      result.recovery_s_peer += config.disk_restore_s;
      ++result.disk_fallbacks;
    }
  }
  result.steps_done_disk = disk_job.steps;
  result.steps_done_peer = peer_job.steps;
  return result;
}

}  // namespace easyscale::sim
