// Live inter-job (cluster) scheduler — the top of the §3.4 hierarchy,
// operating on REAL running jobs (EasyScaleEngine + IntraJobScheduler
// pairs), not simulator stubs.
//
// Jobs register with the cluster; each scheduling round the cluster
//  1. grants GPU-less jobs their best available plan (FIFO),
//  2. collects Role-2 proposals from every job's intra-job scheduler, and
//  3. greedily approves the proposal with the highest marginal
//     speedup-per-GPU (ties broken toward more GPUs), until nothing fits.
// Capacity changes (e.g. serving jobs claiming GPUs) are applied with
// set_capacity; affected jobs scale in at the next round — the co-location
// behaviour of §5.3, but executing real training underneath.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/intra_job.hpp"

namespace easyscale::sched {

class InterJobScheduler {
 public:
  explicit InterJobScheduler(GpuVector capacity) : capacity_(capacity) {}

  /// Register a running job.  The cluster does not own the engine.
  void add_job(std::string name, core::EasyScaleEngine& engine,
               Companion companion, bool allow_heter);

  /// Remove a finished job, releasing its GPUs.
  void remove_job(const std::string& name);

  /// Change total capacity (serving jobs arriving/leaving).  Shrinking may
  /// force scale-ins at the next round.
  void set_capacity(const GpuVector& capacity) { capacity_ = capacity; }
  [[nodiscard]] const GpuVector& capacity() const { return capacity_; }

  /// Spot-style revocation: remove `revoked` GPUs from the capacity and
  /// reschedule immediately, so affected jobs scale in within the grace
  /// period instead of failing (fault::FaultSupervisor's cluster-level
  /// counterpart).  Returns the number of plan changes applied.
  int revoke(const GpuVector& revoked);

  /// One scheduling round; returns the number of plan changes applied.
  int reschedule();

  /// GPUs currently granted to `name` (zero vector when unscheduled).
  [[nodiscard]] GpuVector allocation(const std::string& name) const;

  [[nodiscard]] GpuVector free_pool() const;
  [[nodiscard]] std::size_t num_jobs() const { return jobs_.size(); }

 private:
  struct Job {
    std::string name;
    std::unique_ptr<IntraJobScheduler> intra;
  };

  [[nodiscard]] Job* find(const std::string& name);

  GpuVector capacity_{};
  std::vector<Job> jobs_;
};

}  // namespace easyscale::sched
