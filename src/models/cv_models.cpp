#include "models/cv_models.hpp"

#include "tensor/ops.hpp"

namespace easyscale::models {

float ImageClassifier::train_step(autograd::StepContext& ctx,
                                  const data::Batch& batch) {
  ES_CHECK(batch.x.defined(), "image classifier needs image input");
  Tensor logits = net_.forward(ctx, batch.x);
  const float loss = loss_.forward(ctx, logits, batch.y);
  net_.backward(ctx, loss_.backward());
  return loss;
}

std::vector<std::int64_t> ImageClassifier::predict(autograd::StepContext& ctx,
                                                   const data::Batch& batch) {
  const bool was_training = ctx.training;
  ctx.training = false;
  Tensor logits = net_.forward(ctx, batch.x);
  ctx.training = was_training;
  return tensor::argmax_rows(logits);
}

void ImageClassifier::init(std::uint64_t seed) {
  rng::Philox gen(rng::derive_stream_key(seed, 0, 41));
  net_.init_weights(gen);
}

std::vector<tensor::Tensor*> ImageClassifier::buffers() {
  std::vector<tensor::Tensor*> out;
  net_.collect_buffers(out);
  return out;
}

ShuffleNetV2Mini::ShuffleNetV2Mini() {
  // Stem.
  net_.emplace<nn::Conv2d>("stem.conv", 3, 8, 3, 1, 1);
  net_.emplace<nn::BatchNorm2d>("stem.bn", 8);
  net_.emplace<nn::ReLU>();
  // Shuffle unit 1: grouped 1x1 -> shuffle -> depthwise 3x3 -> 1x1.
  net_.emplace<nn::Conv2d>("u1.pw1", 8, 8, 1, 1, 0, /*groups=*/2);
  net_.emplace<nn::BatchNorm2d>("u1.bn1", 8);
  net_.emplace<nn::ReLU>();
  net_.emplace<ChannelShuffle>(2);
  net_.emplace<nn::Conv2d>("u1.dw", 8, 8, 3, 1, 1, /*groups=*/8,
                           /*bias=*/false);
  net_.emplace<nn::BatchNorm2d>("u1.bn2", 8);
  net_.emplace<nn::Conv2d>("u1.pw2", 8, 8, 1, 1, 0, /*groups=*/2);
  net_.emplace<nn::BatchNorm2d>("u1.bn3", 8);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::MaxPool2d>(2);
  // Shuffle unit 2 (widening).
  net_.emplace<nn::Conv2d>("u2.pw1", 8, 16, 1, 1, 0, /*groups=*/2);
  net_.emplace<nn::BatchNorm2d>("u2.bn1", 16);
  net_.emplace<nn::ReLU>();
  net_.emplace<ChannelShuffle>(2);
  net_.emplace<nn::Conv2d>("u2.dw", 16, 16, 3, 1, 1, /*groups=*/16,
                           /*bias=*/false);
  net_.emplace<nn::BatchNorm2d>("u2.bn2", 16);
  net_.emplace<nn::Conv2d>("u2.pw2", 16, 16, 1, 1, 0, /*groups=*/2);
  net_.emplace<nn::BatchNorm2d>("u2.bn3", 16);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::GlobalAvgPool>();
  net_.emplace<nn::Linear>("fc", 16, 10);
  finalize();
}

ResNet50Mini::ResNet50Mini() {
  net_.emplace<nn::Conv2d>("stem.conv", 3, 8, 3, 1, 1);
  net_.emplace<nn::BatchNorm2d>("stem.bn", 8);
  net_.emplace<nn::ReLU>();
  net_.emplace<ResidualBlock>("layer1", 8, 8, 1);
  net_.emplace<ResidualBlock>("layer2", 8, 16, 2);
  net_.emplace<ResidualBlock>("layer3", 16, 16, 1);
  net_.emplace<nn::GlobalAvgPool>();
  net_.emplace<nn::Linear>("fc", 16, 10);
  finalize();
}

ResNet18Mini::ResNet18Mini() {
  net_.emplace<nn::Conv2d>("stem.conv", 3, 8, 3, 1, 1);
  net_.emplace<nn::BatchNorm2d>("stem.bn", 8);
  net_.emplace<nn::ReLU>();
  net_.emplace<ResidualBlock>("layer1", 8, 8, 1);
  net_.emplace<ResidualBlock>("layer2", 8, 16, 2);
  net_.emplace<nn::GlobalAvgPool>();
  net_.emplace<nn::Linear>("fc", 16, 10);
  finalize();
}

VGG19Mini::VGG19Mini() {
  net_.emplace<nn::Conv2d>("conv1a", 3, 8, 3, 1, 1);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Conv2d>("conv1b", 8, 8, 3, 1, 1);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::MaxPool2d>(2);
  net_.emplace<nn::Conv2d>("conv2a", 8, 16, 3, 1, 1);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Conv2d>("conv2b", 16, 16, 3, 1, 1);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::MaxPool2d>(2);
  net_.emplace<nn::Flatten>();
  net_.emplace<nn::Linear>("fc1", 16 * 2 * 2, 32);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Dropout>(0.5f);
  net_.emplace<nn::Linear>("fc2", 32, 10);
  finalize();
}

}  // namespace easyscale::models
