// The float32 tensor that underlies the whole training engine.
//
// Design rules (all in service of bitwise determinism):
//  - always contiguous row-major storage;
//  - no implicit broadcasting — shape mismatches throw;
//  - every op that reduces floats documents (and fixes) its summation order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/serialize.hpp"
#include "tensor/shape.hpp"

namespace easyscale::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}
  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    ES_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
             "data size " << data_.size() << " != numel " << shape_.numel());
  }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return shape_.numel(); }
  [[nodiscard]] bool defined() const { return shape_.rank() > 0 || !data_.empty(); }

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }
  [[nodiscard]] float* raw() { return data_.data(); }
  [[nodiscard]] const float* raw() const { return data_.data(); }

  float& at(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] float at(std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// Reinterpret as a new shape with the same number of elements.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const {
    ES_CHECK(new_shape.numel() == shape_.numel(),
             "reshape " << shape_.to_string() << " -> " << new_shape.to_string());
    return Tensor(std::move(new_shape), data_);
  }

  void fill(float v) {
    for (auto& x : data_) x = v;
  }
  void zero() { fill(0.0f); }

  void save(ByteWriter& w) const {
    w.write_vector(shape_.dims());
    w.write_vector(data_);
  }
  static Tensor load(ByteReader& r) {
    auto dims = r.read_vector<std::int64_t>();
    auto data = r.read_vector<float>();
    return Tensor(Shape(std::move(dims)), std::move(data));
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Integer tensor used for labels / token ids / sample indices.
class LongTensor {
 public:
  LongTensor() = default;
  explicit LongTensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), 0) {}
  LongTensor(Shape shape, std::vector<std::int64_t> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    ES_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
             "data size mismatch");
  }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return shape_.numel(); }
  [[nodiscard]] std::span<std::int64_t> data() { return data_; }
  [[nodiscard]] std::span<const std::int64_t> data() const { return data_; }
  std::int64_t& at(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] std::int64_t at(std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  void save(ByteWriter& w) const {
    w.write_vector(shape_.dims());
    w.write_vector(data_);
  }
  static LongTensor load(ByteReader& r) {
    auto dims = r.read_vector<std::int64_t>();
    auto data = r.read_vector<std::int64_t>();
    return LongTensor(Shape(std::move(dims)), std::move(data));
  }

 private:
  Shape shape_;
  std::vector<std::int64_t> data_;
};

}  // namespace easyscale::tensor
