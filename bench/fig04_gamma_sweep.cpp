// Fig 4: the hyper-parameter-reasoning experiment.  StepLR's decay factor
// gamma is swept over {0.1, 0.3, 0.5}.  With fixed-DoP DDP the resulting
// train-loss curves separate cleanly after the decay epoch, so a developer
// can reason about gamma; with Pollux run at a different GPU count per
// gamma, the elastic adaptation confounds the sweep.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/elastic_baselines.hpp"
#include "bench_util.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"

namespace {

using namespace easyscale;

constexpr std::int64_t kTrain = 512;
constexpr std::int64_t kEpochs = 16;
constexpr std::int64_t kDecayEpoch = 4;
constexpr std::uint64_t kSeed = 42;
constexpr const char* kModel = "ResNet50";

std::vector<double> epoch_mean_loss(const std::vector<float>& losses,
                                    std::int64_t steps_per_epoch) {
  std::vector<double> out;
  for (std::size_t s = 0; s + static_cast<std::size_t>(steps_per_epoch) <=
                          losses.size();
       s += static_cast<std::size_t>(steps_per_epoch)) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < steps_per_epoch; ++i) sum += losses[s + i];
    out.push_back(sum / static_cast<double>(steps_per_epoch));
  }
  return out;
}

std::vector<double> run_ddp(float gamma, const models::WorkloadData& wd) {
  ddp::DDPConfig cfg;
  cfg.workload = kModel;
  cfg.world_size = 4;
  cfg.batch_per_worker = 8;
  cfg.seed = kSeed;
  cfg.optim.lr = 0.2f;  // wide post-decay LR spread so the gamma trend shows
  cfg.lr_step_epochs = kDecayEpoch;
  cfg.gamma = gamma;
  ddp::DDPTrainer t(cfg, *wd.train, wd.augment);
  t.run_epochs(kEpochs);
  return epoch_mean_loss(t.loss_history(), t.steps_per_epoch());
}

std::vector<double> run_pollux(float gamma, std::int64_t world,
                               const models::WorkloadData& wd) {
  baselines::ElasticBaselineConfig cfg;
  cfg.workload = kModel;
  cfg.base_world = 4;
  cfg.base_batch = 8;
  cfg.base_lr = 0.2f;
  cfg.seed = kSeed;
  cfg.lr_step_epochs = kDecayEpoch;
  cfg.gamma = gamma;
  baselines::PolluxTrainer t(cfg, *wd.train, wd.augment);
  t.reconfigure(world);
  std::vector<float> all;
  for (std::int64_t e = 0; e < kEpochs; ++e) t.run_epochs(1);
  const std::int64_t spe =
      static_cast<std::int64_t>(t.loss_history().size()) / kEpochs;
  return epoch_mean_loss(t.loss_history(), spe);
}

void print_curves(const char* title,
                  const std::vector<std::pair<std::string,
                                              std::vector<double>>>& curves) {
  std::printf("\n%s\n%-22s", title, "epoch");
  for (std::int64_t e = 0; e < kEpochs; e += 2) {
    std::printf("%8lld", static_cast<long long>(e + 1));
  }
  std::printf("\n");
  for (const auto& [name, c] : curves) {
    std::printf("%-22s", name.c_str());
    for (std::size_t e = 0; e < c.size(); e += 2) std::printf("%8.3f", c[e]);
    std::printf("\n");
  }
}

/// Fraction of post-decay epochs where the losses order monotonically with
/// gamma, in whichever direction dominates — the "can a developer read the
/// trend?" metric.  A clean sweep orders the same way almost every epoch;
/// confounded elastic runs flip direction epoch to epoch.
double trend_clarity(const std::vector<std::vector<double>>& raw) {
  // 3-epoch moving average: developers read smoothed loss curves, and the
  // paper's figure plots visibly smoothed loss.
  std::vector<std::vector<double>> by_gamma(raw.size());
  for (std::size_t g = 0; g < raw.size(); ++g) {
    for (std::size_t e = 0; e < raw[g].size(); ++e) {
      const std::size_t lo = e >= 2 ? e - 2 : 0;
      double sum = 0.0;
      for (std::size_t i = lo; i <= e; ++i) sum += raw[g][i];
      by_gamma[g].push_back(sum / static_cast<double>(e - lo + 1));
    }
  }
  std::int64_t increasing = 0, decreasing = 0, total = 0;
  for (std::size_t e = static_cast<std::size_t>(kDecayEpoch);
       e < by_gamma[0].size(); ++e) {
    ++total;
    bool inc = true, dec = true;
    for (std::size_t g = 0; g + 1 < by_gamma.size(); ++g) {
      if (by_gamma[g][e] > by_gamma[g + 1][e]) inc = false;
      if (by_gamma[g][e] < by_gamma[g + 1][e]) dec = false;
    }
    if (inc) ++increasing;
    if (dec) ++decreasing;
  }
  return total ? static_cast<double>(std::max(increasing, decreasing)) /
                     static_cast<double>(total)
               : 0.0;
}

}  // namespace

int main() {
  bench::banner("Fig 4",
                "train loss of ResNet50 under StepLR gamma in {0.1,0.3,0.5}: "
                "DDP fixed 4 GPUs vs Pollux on 1/2/4 GPUs");
  auto wd = models::make_dataset_for(kModel, kTrain, 64, kSeed);

  std::vector<std::pair<std::string, std::vector<double>>> ddp_curves;
  std::vector<std::vector<double>> ddp_by_gamma;
  for (float g : {0.1f, 0.3f, 0.5f}) {
    auto c = run_ddp(g, wd);
    ddp_by_gamma.push_back(c);
    ddp_curves.emplace_back("DDP-4GPU-gamma" + std::to_string(g).substr(0, 3),
                            std::move(c));
  }
  std::vector<std::pair<std::string, std::vector<double>>> px_curves;
  std::vector<std::vector<double>> px_by_gamma;
  const std::int64_t worlds[] = {1, 2, 4};
  int wi = 0;
  for (float g : {0.1f, 0.3f, 0.5f}) {
    auto c = run_pollux(g, worlds[wi], wd);
    px_by_gamma.push_back(c);
    px_curves.emplace_back("Pollux-" + std::to_string(worlds[wi]) +
                               "GPU-gamma" + std::to_string(g).substr(0, 3),
                           std::move(c));
    ++wi;
  }
  print_curves("PyTorch DDP, fixed 4 GPUs (mean train loss per epoch):",
               ddp_curves);
  print_curves("Pollux, gamma confounded with GPU count:", px_curves);
  std::printf(
      "\npost-decay trend clarity (fraction of epochs where loss orders "
      "monotonically with gamma):\n  DDP: %.0f%%   Pollux: %.0f%%\n",
      100.0 * trend_clarity(ddp_by_gamma), 100.0 * trend_clarity(px_by_gamma));
  bench::note("expected: DDP near 100%, Pollux substantially lower (paper "
              "Fig 4 shows oscillating, trend-free Pollux curves).");
  return 0;
}
