#include "kernels/reduce.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace easyscale::kernels {

namespace {

float sum_sequential(std::span<const float> v) {
  float acc = 0.0f;
  for (float x : v) acc += x;
  return acc;
}

/// Two-level reduction: leaves of `width` summed sequentially, leaf partials
/// folded pairwise bottom-up — the shape of a GPU block reduction.
float sum_pairwise(std::span<const float> v, std::int64_t width) {
  std::vector<float> partials;
  partials.reserve(v.size() / static_cast<std::size_t>(width) + 1);
  for (std::size_t b0 = 0; b0 < v.size(); b0 += static_cast<std::size_t>(width)) {
    const std::size_t b1 =
        std::min(v.size(), b0 + static_cast<std::size_t>(width));
    float part = 0.0f;
    for (std::size_t i = b0; i < b1; ++i) part += v[i];
    partials.push_back(part);
  }
  // Pairwise fold of the partials.
  while (partials.size() > 1) {
    std::vector<float> next;
    next.reserve((partials.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
      next.push_back(partials[i] + partials[i + 1]);
    }
    if (partials.size() % 2) next.push_back(partials.back());
    partials = std::move(next);
  }
  return partials.empty() ? 0.0f : partials[0];
}

}  // namespace

float reduce_sum_variant(ReduceVariant variant, std::span<const float> v) {
  switch (variant) {
    case ReduceVariant::kSequential:
      return sum_sequential(v);
    case ReduceVariant::kPairwise64:
      return sum_pairwise(v, 64);
    case ReduceVariant::kPairwise128:
      return sum_pairwise(v, 128);
    case ReduceVariant::kPairwise256:
      return sum_pairwise(v, 256);
  }
  ES_THROW("unreachable reduce variant");
}

float reduce_sum(const ExecContext& ctx, std::span<const float> values) {
  return reduce_sum_variant(select_reduce_variant(ctx), values);
}

float reduce_sum_strided(const ExecContext& ctx, std::span<const float> values,
                         std::int64_t offset, std::int64_t stride,
                         std::int64_t count) {
  ES_CHECK(stride > 0, "stride must be positive");
  std::vector<float> gathered(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    gathered[static_cast<std::size_t>(i)] =
        values[static_cast<std::size_t>(offset + i * stride)];
  }
  return reduce_sum(ctx, gathered);
}

void reduce_sum_strided_batch(const ExecContext& ctx,
                              std::span<const float> values,
                              std::int64_t stride, std::int64_t count,
                              std::span<float> out) {
  ES_CHECK(stride > 0, "stride must be positive");
  const ReduceVariant variant = select_reduce_variant(ctx);
  const SimdOps& ops = ctx.simd_ops();
  // Output slots are disjoint (owner-computes).  The vector path assigns
  // lanes to adjacent slots — the strided loads values[s + i * stride] are
  // contiguous across lanes — with each slot keeping its variant's exact
  // leaf/fold order, so it is bitwise-equal to the scalar gather below
  // (which stays as the scalar backend's reference path, chunk-local
  // buffer and all).
  parallel_for(
      ctx, static_cast<std::int64_t>(out.size()),
      std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, count)),
      [&](int /*chunk*/, std::int64_t s0, std::int64_t s1) {
        if (ops.reduce_batch != nullptr) {
          ops.reduce_batch(variant, values.data(), stride, count, s0, s1,
                           out.data());
          return;
        }
        std::vector<float> gathered(static_cast<std::size_t>(count));
        for (std::int64_t s = s0; s < s1; ++s) {
          for (std::int64_t i = 0; i < count; ++i) {
            gathered[static_cast<std::size_t>(i)] =
                values[static_cast<std::size_t>(s + i * stride)];
          }
          out[static_cast<std::size_t>(s)] +=
              reduce_sum_variant(variant, gathered);
        }
      });
  ctx.notify_post_op(KernelFamily::kReduce, out.data(),
                     static_cast<std::int64_t>(out.size()));
}

}  // namespace easyscale::kernels
