// Cluster simulator invariants for the trace and co-location experiments.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "sim/colocation.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace easyscale::sim {
namespace {

std::vector<JobSpec> small_trace(std::int64_t n = 20) {
  trace::TraceConfig cfg;
  cfg.num_jobs = n;
  cfg.mean_interarrival_s = 60.0;
  return trace::philly_like_trace(cfg);
}

SimConfig sim_config(SchedulerPolicy policy) {
  SimConfig cfg;
  cfg.cluster = {8, 4, 4};
  cfg.policy = policy;
  return cfg;
}

class PolicyTest : public ::testing::TestWithParam<SchedulerPolicy> {};

TEST_P(PolicyTest, AllJobsFinishWithValidTimestamps) {
  const auto jobs = small_trace();
  const auto r = simulate_trace(jobs, sim_config(GetParam()));
  ASSERT_EQ(r.outcomes.size(), jobs.size());
  for (const auto& o : r.outcomes) {
    EXPECT_GE(o.start_s, o.arrival_s);
    EXPECT_GT(o.finish_s, o.start_s);
    EXPECT_LE(o.finish_s, r.makespan);
  }
  EXPECT_GT(r.avg_jct, 0.0);
}

TEST_P(PolicyTest, AllocationNeverExceedsCluster) {
  const auto jobs = small_trace();
  const auto cfg = sim_config(GetParam());
  const auto r = simulate_trace(jobs, cfg);
  const std::int64_t total = sched::total(cfg.cluster);
  for (const auto& point : r.timeline) {
    EXPECT_LE(point.allocated_gpus, total);
    EXPECT_GE(point.allocated_gpus, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(SchedulerPolicy::kYarnCS,
                                           SchedulerPolicy::kEasyScaleHomo,
                                           SchedulerPolicy::kEasyScaleHeter));

TEST(Simulator, YarnIsFIFO) {
  const auto jobs = small_trace();
  const auto r = simulate_trace(jobs, sim_config(SchedulerPolicy::kYarnCS));
  // Start order must follow arrival order (strict FIFO admission).
  auto sorted = r.outcomes;
  std::sort(sorted.begin(), sorted.end(),
            [](const JobOutcome& a, const JobOutcome& b) {
              return a.arrival_s < b.arrival_s;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i].start_s, sorted[i - 1].start_s);
  }
}

TEST(Simulator, ElasticBeatsGangSchedulingOnJctAndMakespan) {
  const auto jobs = small_trace(30);
  const auto yarn = simulate_trace(jobs, sim_config(SchedulerPolicy::kYarnCS));
  const auto homo =
      simulate_trace(jobs, sim_config(SchedulerPolicy::kEasyScaleHomo));
  EXPECT_LT(homo.avg_jct, yarn.avg_jct);
  EXPECT_LE(homo.makespan, yarn.makespan);
}

TEST(Simulator, HeterUsesAtLeastAsManyGpusAsHomo) {
  const auto jobs = small_trace(30);
  const auto homo =
      simulate_trace(jobs, sim_config(SchedulerPolicy::kEasyScaleHomo));
  const auto heter =
      simulate_trace(jobs, sim_config(SchedulerPolicy::kEasyScaleHeter));
  double homo_mean = 0.0, heter_mean = 0.0;
  for (const auto& p : homo.timeline) homo_mean += static_cast<double>(p.allocated_gpus);
  for (const auto& p : heter.timeline) heter_mean += static_cast<double>(p.allocated_gpus);
  homo_mean /= static_cast<double>(homo.timeline.size());
  heter_mean /= static_cast<double>(heter.timeline.size());
  EXPECT_GE(heter_mean, homo_mean * 0.95);
}

TEST(Simulator, EmptyTraceThrows) {
  EXPECT_THROW(simulate_trace({}, sim_config(SchedulerPolicy::kYarnCS)),
               Error);
}

TEST(Colocation, ConservationAndBounds) {
  trace::ServingLoadConfig lcfg;
  lcfg.minutes = 2880;
  lcfg.total_gpus = 1000;
  const auto demand = trace::serving_load_curve(lcfg);
  ColocationConfig cfg;
  cfg.total_gpus = 1000;
  cfg.max_training_gpus = 300;
  const auto r = simulate_colocation(demand, cfg);
  ASSERT_EQ(r.day2.size(), 1440u);
  for (const auto& p : r.day2) {
    EXPECT_LE(p.serving_gpus + p.training_gpus, cfg.total_gpus);
    EXPECT_LE(p.training_gpus, cfg.max_training_gpus);
    EXPECT_GE(p.training_gpus, 0);
    EXPECT_GE(p.alloc_ratio, 0.0);
    EXPECT_LE(p.alloc_ratio, 1.0);
    EXPECT_LE(p.sm_util, 1.0);
  }
}

TEST(Colocation, Day2ImprovesAllocationAndUtilization) {
  trace::ServingLoadConfig lcfg;
  const auto demand = trace::serving_load_curve(lcfg);
  ColocationConfig cfg;
  cfg.total_gpus = lcfg.total_gpus;
  const auto r = simulate_colocation(demand, cfg);
  EXPECT_GT(r.day2_alloc_ratio, r.day1_alloc_ratio);
  EXPECT_GT(r.day2_util, r.day1_util);
  EXPECT_GT(r.avg_training_gpus_day2, 0.0);
  EXPECT_EQ(r.failed_jobs, 0);
}

TEST(Colocation, ScaleInIsImmediate) {
  // A demand spike must be absorbed within the same minute.
  std::vector<std::int64_t> demand(120, 100);  // 2 "days" of 60 min
  for (std::size_t m = 90; m < 120; ++m) demand[m] = 900;  // day-2 spike
  ColocationConfig cfg;
  cfg.total_gpus = 1000;
  cfg.max_training_gpus = 900;
  const auto r = simulate_colocation(demand, cfg);
  for (std::size_t m = 30; m < 60; ++m) {
    EXPECT_LE(r.day2[m].serving_gpus + r.day2[m].training_gpus, 1000);
  }
  EXPECT_GT(r.preemptions, 0);
}

TEST(Colocation, OddSizedDemandThrows) {
  std::vector<std::int64_t> demand(3, 10);
  EXPECT_THROW(simulate_colocation(demand, ColocationConfig{}), Error);
}

TEST(Colocation, GangModeFailsJobsWhereElasticPreempts) {
  // Same demand spike as ScaleInIsImmediate, but with gang-scheduled
  // training jobs (§2.1 baseline): every reclamation kills a job.
  std::vector<std::int64_t> demand(120, 100);
  for (std::size_t m = 90; m < 120; ++m) demand[m] = 900;
  ColocationConfig cfg;
  cfg.total_gpus = 1000;
  cfg.max_training_gpus = 900;
  const auto elastic = simulate_colocation(demand, cfg);
  cfg.elastic = false;
  const auto gang = simulate_colocation(demand, cfg);
  EXPECT_GT(elastic.preemptions, 0);
  EXPECT_EQ(elastic.failed_jobs, 0);
  EXPECT_EQ(gang.failed_jobs, gang.preemptions);
  EXPECT_GT(gang.failed_jobs, 0);
}

// ---------------------------------------------------------------------------
// Cluster failures / spot revocations in the trace simulator
// ---------------------------------------------------------------------------

std::vector<JobSpec> failure_trace_jobs() {
  // Two gang-sized jobs sharing one V100 partition; a revocation while
  // both run forces the gang baseline to kill one of them.
  std::vector<JobSpec> jobs(2);
  for (std::int64_t i = 0; i < 2; ++i) {
    jobs[static_cast<std::size_t>(i)].id = i;
    jobs[static_cast<std::size_t>(i)].workload = "ResNet50";
    jobs[static_cast<std::size_t>(i)].max_p = 4;
    jobs[static_cast<std::size_t>(i)].arrival_s = 0.0;
    jobs[static_cast<std::size_t>(i)].total_steps = 5000;
    jobs[static_cast<std::size_t>(i)].allow_heter = false;
    jobs[static_cast<std::size_t>(i)].preferred_type =
        kernels::DeviceType::kV100;
  }
  return jobs;
}

SimConfig failure_sim_config(SchedulerPolicy policy) {
  SimConfig cfg;
  cfg.cluster = {8, 0, 0};
  cfg.policy = policy;
  // Two V100s revoked at t=100s, repaired 500s later.
  cfg.failures = {{100.0, 0, 500.0}, {100.0, 0, 500.0}};
  return cfg;
}

TEST(SimulatorFailures, EasyScaleSurvivesRevocationsWithoutFailedJobs) {
  const auto r = simulate_trace(failure_trace_jobs(),
                                failure_sim_config(SchedulerPolicy::kEasyScaleHomo));
  EXPECT_EQ(r.outcomes.size(), 2u);
  EXPECT_GT(r.revocations, 0);
  EXPECT_EQ(r.failed_jobs, 0) << "elastic jobs scale in instead of dying";
  EXPECT_EQ(r.lost_progress, 0);
}

TEST(SimulatorFailures, GangBaselineKillsAndLosesProgress) {
  const auto r = simulate_trace(failure_trace_jobs(),
                                failure_sim_config(SchedulerPolicy::kYarnCS));
  EXPECT_EQ(r.outcomes.size(), 2u);  // killed jobs restart and still finish
  EXPECT_GT(r.revocations, 0);
  EXPECT_GT(r.failed_jobs, 0) << "gang jobs cannot shrink below strength";
  EXPECT_GT(r.lost_progress, 0) << "restart discards un-checkpointed steps";
}

TEST(SimulatorFailures, GangCheckpointKeepFractionBoundsLoss) {
  auto cfg = failure_sim_config(SchedulerPolicy::kYarnCS);
  cfg.gang_restart_progress_kept = 1.0;  // perfect per-step checkpointing
  const auto r = simulate_trace(failure_trace_jobs(), cfg);
  EXPECT_GT(r.failed_jobs, 0);
  EXPECT_EQ(r.lost_progress, 0);
}

TEST(SimulatorFailures, FailureFreeConfigMatchesBaselineBehaviour) {
  // With an empty failure list the new accounting fields stay zero and the
  // simulation is unchanged from the pre-failure path.
  const auto jobs = small_trace(10);
  const auto r = simulate_trace(jobs, sim_config(SchedulerPolicy::kYarnCS));
  EXPECT_EQ(r.revocations, 0);
  EXPECT_EQ(r.failed_jobs, 0);
  EXPECT_EQ(r.lost_progress, 0);
}

TEST(SimulatorFailures, CommFaultsDegradeGangJobsFarMoreThanElastic) {
  // Same trace, same seeded per-(job, tick) link-fault draws: the elastic
  // policy absorbs each fault in comm_recover_s while the gang baseline
  // stalls for a full restart — its degraded time must dominate.
  const auto jobs = small_trace(10);
  auto elastic_cfg = sim_config(SchedulerPolicy::kEasyScaleHomo);
  elastic_cfg.comm_fault_rate = 0.05;
  auto gang_cfg = sim_config(SchedulerPolicy::kYarnCS);
  gang_cfg.comm_fault_rate = 0.05;

  const auto elastic = simulate_trace(jobs, elastic_cfg);
  const auto gang = simulate_trace(jobs, gang_cfg);
  EXPECT_GT(elastic.comm_faults, 0);
  EXPECT_GT(gang.comm_faults, 0);
  EXPECT_GT(elastic.comm_degraded_s, 0.0);
  EXPECT_GT(gang.comm_degraded_s, elastic.comm_degraded_s)
      << "gang restarts must cost more job-time than in-collective recovery";

  // Deterministic: the same config replays the exact same fault draws.
  const auto replay = simulate_trace(jobs, elastic_cfg);
  EXPECT_EQ(replay.comm_faults, elastic.comm_faults);
  EXPECT_EQ(replay.comm_degraded_s, elastic.comm_degraded_s);

  // Rate zero keeps the pre-comm-fault accounting untouched.
  const auto off = simulate_trace(jobs, sim_config(SchedulerPolicy::kYarnCS));
  EXPECT_EQ(off.comm_faults, 0);
  EXPECT_EQ(off.comm_degraded_s, 0.0);
}

TEST(SimulatorOverlap, ZeroFracDegradesToAdditiveModelExactly) {
  // Bit-for-bit: at f = 0 the pipelined model IS the historical sum.
  for (const double c : {0.1, 1.0, 7.5}) {
    for (const double m : {0.0, 0.4, 12.0}) {
      EXPECT_EQ(overlapped_step_seconds(c, m, 0.0), c + m);
    }
  }
}

TEST(SimulatorOverlap, FullOverlapIsTheMaxAndPartialInterpolates) {
  EXPECT_EQ(overlapped_step_seconds(3.0, 2.0, 1.0), 3.0);
  EXPECT_EQ(overlapped_step_seconds(2.0, 5.0, 1.0), 5.0);
  const double half = overlapped_step_seconds(3.0, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(half, 0.5 * 5.0 + 0.5 * 3.0);
  EXPECT_THROW(overlapped_step_seconds(1.0, 1.0, 1.5), Error);
  EXPECT_THROW(overlapped_step_seconds(-1.0, 1.0, 0.5), Error);
}

TEST(SimulatorOverlap, ZeroFracTraceReplayMatchesNoCommModel) {
  // comm_fraction > 0 with overlap_frac = 0 multiplies step time by
  // (C + M) / (C + M) = 1: the fig14/fig16 replays stay reproducible.
  const auto jobs = small_trace(12);
  auto base = sim_config(SchedulerPolicy::kEasyScaleHeter);
  auto additive = base;
  additive.comm_fraction = 0.3;
  additive.comm_overlap_frac = 0.0;
  const auto r0 = simulate_trace(jobs, base);
  const auto r1 = simulate_trace(jobs, additive);
  ASSERT_EQ(r0.outcomes.size(), r1.outcomes.size());
  for (std::size_t i = 0; i < r0.outcomes.size(); ++i) {
    EXPECT_EQ(r0.outcomes[i].finish_s, r1.outcomes[i].finish_s);
  }
  EXPECT_EQ(r0.makespan, r1.makespan);
}

TEST(SimulatorOverlap, OverlapNeverFinishesLater) {
  const auto jobs = small_trace(12);
  auto additive = sim_config(SchedulerPolicy::kEasyScaleHeter);
  additive.comm_fraction = 0.3;
  auto overlapped = additive;
  overlapped.comm_overlap_frac = 0.8;
  const auto slow = simulate_trace(jobs, additive);
  const auto fast = simulate_trace(jobs, overlapped);
  EXPECT_LE(fast.makespan, slow.makespan);
  EXPECT_LE(fast.avg_jct, slow.avg_jct);
}

TEST(SimulatorFailures, MtbfTraceDrivenRunCompletes) {
  // End-to-end: a generated MTBF failure process feeding the simulator.
  const auto jobs = small_trace(10);
  auto cfg = sim_config(SchedulerPolicy::kEasyScaleHeter);
  trace::FailureTraceConfig fcfg;
  fcfg.cluster = cfg.cluster;
  fcfg.horizon_s = 1.0e5;
  fcfg.mtbf_per_gpu_s = 2.0e4;  // aggressive so failures actually land
  cfg.failures = trace::gpu_failure_trace(fcfg);
  ASSERT_FALSE(cfg.failures.empty());
  const auto r = simulate_trace(jobs, cfg);
  EXPECT_EQ(r.outcomes.size(), jobs.size());
  EXPECT_EQ(r.failed_jobs, 0);
}

}  // namespace
}  // namespace easyscale::sim
