// EasyScale engine mechanics: checkpoints, determinism levels, the async
// loader path, context-switch accounting and the memory model.
#include <gtest/gtest.h>

#include "common/digest.hpp"
#include "core/engine.hpp"
#include "core/memory_model.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"

namespace easyscale::core {
namespace {

using kernels::DeviceType;

EasyScaleConfig config(const std::string& workload = "ResNet18") {
  EasyScaleConfig cfg;
  cfg.workload = workload;
  cfg.num_ests = 4;
  cfg.batch_per_est = 4;
  cfg.seed = 42;
  return cfg;
}

TEST(Engine, CheckpointRestoreIsBitwiseExact) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  EasyScaleEngine a(config(), *wd.train, wd.augment);
  a.configure_workers(std::vector<WorkerSpec>(2));
  a.run_steps(4);
  const auto ckpt = a.checkpoint();
  a.run_steps(3);

  EasyScaleEngine b(config(), *wd.train, wd.augment);
  b.configure_workers(std::vector<WorkerSpec>(3));  // different worker set
  b.restore(ckpt);
  b.run_steps(3);
  EXPECT_EQ(a.params_digest(), b.params_digest());
}

TEST(Engine, CheckpointCarriesGlobalStep) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  EasyScaleEngine a(config(), *wd.train, wd.augment);
  a.configure_workers(std::vector<WorkerSpec>(1));
  a.run_steps(5);
  const auto ckpt = a.checkpoint();
  EasyScaleEngine b(config(), *wd.train, wd.augment);
  b.configure_workers(std::vector<WorkerSpec>(1));
  b.restore(ckpt);
  EXPECT_EQ(b.global_step(), 5);
}

TEST(Engine, D0LosesBucketMappingAcrossRescale) {
  auto run = [&](DeterminismLevel level) {
    auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
    auto cfg = config();
    cfg.determinism.level = level;
    cfg.optim.lr = 0.05f;
    EasyScaleEngine e(cfg, *wd.train, wd.augment);
    e.configure_workers(std::vector<WorkerSpec>(4));
    e.run_steps(4);
    e.configure_workers(std::vector<WorkerSpec>(2));
    e.run_steps(4);
    return e.params_digest();
  };
  EXPECT_NE(run(DeterminismLevel::kD0), run(DeterminismLevel::kD1));
}

TEST(Engine, D0IsStaticallyDeterministicWithoutRescale) {
  auto run = [&] {
    auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
    auto cfg = config();
    cfg.determinism.level = DeterminismLevel::kD0;
    EasyScaleEngine e(cfg, *wd.train, wd.augment);
    e.configure_workers(std::vector<WorkerSpec>(2));
    e.run_steps(6);
    return e.params_digest();
  };
  EXPECT_EQ(run(), run());
}

TEST(Engine, HeterogeneousWorkersDivergeWithoutD2) {
  auto run = [&](std::vector<WorkerSpec> workers, bool d2) {
    auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
    auto cfg = config();
    cfg.determinism.d2 = d2;
    EasyScaleEngine e(cfg, *wd.train, wd.augment);
    e.configure_workers(workers);
    e.run_steps(4);
    return e.params_digest();
  };
  const std::vector<WorkerSpec> homo(2, WorkerSpec{DeviceType::kV100});
  const std::vector<WorkerSpec> mixed = {WorkerSpec{DeviceType::kV100},
                                         WorkerSpec{DeviceType::kT4}};
  EXPECT_NE(run(homo, false), run(mixed, false));
  EXPECT_EQ(run(homo, true), run(mixed, true));
}

TEST(Engine, D1D2MatchesDDPHeterOnAnyMix) {
  auto wd = models::make_dataset_for("Bert", 128, 16, 42);
  ddp::DDPConfig dcfg;
  dcfg.workload = "Bert";
  dcfg.world_size = 4;
  dcfg.batch_per_worker = 4;
  dcfg.seed = 42;
  dcfg.policy = kernels::KernelPolicy::kHardwareAgnostic;
  ddp::DDPTrainer reference(dcfg, *wd.train, wd.augment);
  reference.run_steps(5);

  auto cfg = config("Bert");
  cfg.determinism.d2 = true;
  EasyScaleEngine e(cfg, *wd.train, wd.augment);
  e.configure_workers({WorkerSpec{DeviceType::kT4},
                       WorkerSpec{DeviceType::kP100},
                       WorkerSpec{DeviceType::kV100}});
  e.run_steps(5);
  EXPECT_EQ(reference.params_digest(), e.params_digest());
}

TEST(Engine, AsyncLoaderIsBitwiseIdenticalToSync) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  EasyScaleEngine sync_engine(config(), *wd.train, wd.augment);
  sync_engine.configure_workers(std::vector<WorkerSpec>(2));
  sync_engine.run_steps(5);

  auto cfg = config();
  cfg.use_async_loader = true;
  cfg.loader.num_workers = 3;
  cfg.loader.augment = wd.augment;
  EasyScaleEngine async_engine(cfg, *wd.train, wd.augment);
  async_engine.configure_workers(std::vector<WorkerSpec>(2));
  async_engine.run_steps(5);
  EXPECT_EQ(sync_engine.params_digest(), async_engine.params_digest());
}

TEST(Engine, AsyncLoaderSurvivesCheckpointRescale) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  auto cfg = config();
  cfg.use_async_loader = true;
  cfg.loader.num_workers = 2;
  cfg.loader.augment = wd.augment;
  EasyScaleEngine e(cfg, *wd.train, wd.augment);
  e.configure_workers(std::vector<WorkerSpec>(4));
  e.run_steps(3);
  e.configure_workers(std::vector<WorkerSpec>(1));  // queuing buffer moves
  e.run_steps(2);

  EasyScaleEngine ref(config(), *wd.train, wd.augment);
  ref.configure_workers(std::vector<WorkerSpec>(2));
  ref.run_steps(5);
  EXPECT_EQ(e.params_digest(), ref.params_digest());
}

TEST(Engine, SwitchStatsCountGradientTraffic) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  EasyScaleEngine e(config(), *wd.train, wd.augment);
  e.configure_workers(std::vector<WorkerSpec>(1));
  e.run_steps(2);
  const auto& stats = e.switch_stats();
  EXPECT_EQ(stats.context_switches, 2 * 4);  // steps x ESTs
  EXPECT_GT(stats.gradient_bytes_swapped, 0);
  EXPECT_GT(stats.context_bytes_swapped, 0);
}

TEST(Engine, ContextSwitchingOffRequiresOneESTPerWorker) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  auto cfg = config();
  cfg.context_switching = false;
  EasyScaleEngine e(cfg, *wd.train, wd.augment);
  EXPECT_THROW(e.configure_workers(std::vector<WorkerSpec>(2)), Error);
  EXPECT_NO_THROW(e.configure_workers(std::vector<WorkerSpec>(4)));
}

TEST(Engine, InvalidAssignmentsThrow) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  EasyScaleEngine e(config(), *wd.train, wd.augment);
  using A = std::vector<std::vector<std::int64_t>>;
  EXPECT_THROW(
      e.configure_workers(std::vector<WorkerSpec>(2), A{{0, 1}, {1, 2}}),
      Error);  // duplicate
  EXPECT_THROW(
      e.configure_workers(std::vector<WorkerSpec>(2), A{{0, 1}, {2}}),
      Error);  // missing EST 3
  EXPECT_THROW(e.configure_workers(std::vector<WorkerSpec>(5)), Error);
}

TEST(Engine, ModelForEvalLoadsRequestedESTContext) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  EasyScaleEngine e(config(), *wd.train, wd.augment);
  e.configure_workers(std::vector<WorkerSpec>(2));
  e.run_steps(3);
  // Different ESTs saw different batches, so their BN running buffers
  // differ; model_for_eval must reflect the chosen context.
  auto& m0 = e.model_for_eval(0);
  Digest d0;
  for (auto* b : m0.buffers()) d0.update(b->data());
  auto& m3 = e.model_for_eval(3);
  Digest d3;
  for (auto* b : m3.buffers()) d3.update(b->data());
  EXPECT_NE(d0.value(), d3.value());
}

TEST(Engine, LRScheduleMatchesDDPOverEpochs) {
  auto wd = models::make_dataset_for("ResNet18", 64, 16, 42);
  auto cfg = config();
  cfg.lr_step_epochs = 1;
  cfg.gamma = 0.5f;
  EasyScaleEngine e(cfg, *wd.train, wd.augment);
  e.configure_workers(std::vector<WorkerSpec>(2));
  e.run_epochs(3);

  ddp::DDPConfig dcfg;
  dcfg.workload = "ResNet18";
  dcfg.world_size = 4;
  dcfg.batch_per_worker = 4;
  dcfg.seed = 42;
  dcfg.lr_step_epochs = 1;
  dcfg.gamma = 0.5f;
  ddp::DDPTrainer ref(dcfg, *wd.train, wd.augment);
  ref.run_epochs(3);
  EXPECT_EQ(e.params_digest(), ref.params_digest());
}

TEST(Engine, ParallelWorkersAreBitwiseIdenticalToSequential) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  EasyScaleEngine seq(config(), *wd.train, wd.augment);
  seq.configure_workers(std::vector<WorkerSpec>(4));
  seq.run_steps(5);

  auto cfg = config();
  cfg.parallel_workers = true;
  EasyScaleEngine par(cfg, *wd.train, wd.augment);
  par.configure_workers(std::vector<WorkerSpec>(4));
  par.run_steps(5);
  EXPECT_EQ(seq.params_digest(), par.params_digest());
  EXPECT_EQ(seq.switch_stats().gradient_bytes_swapped,
            par.switch_stats().gradient_bytes_swapped);
  EXPECT_EQ(seq.switch_stats().context_switches,
            par.switch_stats().context_switches);
}

TEST(Engine, ParallelWorkersSurviveRescale) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  auto cfg = config();
  cfg.parallel_workers = true;
  EasyScaleEngine e(cfg, *wd.train, wd.augment);
  e.configure_workers(std::vector<WorkerSpec>(4));
  e.run_steps(2);
  e.configure_workers(std::vector<WorkerSpec>(2));
  e.run_steps(2);

  EasyScaleEngine ref(config(), *wd.train, wd.augment);
  ref.configure_workers(std::vector<WorkerSpec>(1));
  ref.run_steps(4);
  EXPECT_EQ(e.params_digest(), ref.params_digest());
}

TEST(Engine, ResilientCommCleanRunMatchesPlainBitwise) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  EasyScaleEngine plain(config(), *wd.train, wd.augment);
  plain.configure_workers(std::vector<WorkerSpec>(3));
  plain.run_steps(5);

  auto cfg = config();
  cfg.resilient_comm = true;
  EasyScaleEngine resilient(cfg, *wd.train, wd.augment);
  resilient.configure_workers(std::vector<WorkerSpec>(3));
  resilient.run_steps(5);
  // The failure-aware path drives the exact same bucketed ring when no
  // fault fires: identical bits, one attempt, real fabric traffic.
  EXPECT_EQ(resilient.params_digest(), plain.params_digest());
  ASSERT_TRUE(resilient.last_comm_report().has_value());
  EXPECT_EQ(resilient.last_comm_report()->attempts, 1);
  EXPECT_GT(resilient.transport_stats().messages_sent, 0);
}

TEST(Engine, ResilientCommInjectedDropRecoversBitwise) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  EasyScaleEngine plain(config(), *wd.train, wd.augment);
  plain.configure_workers(std::vector<WorkerSpec>(3));
  plain.run_steps(5);

  auto cfg = config();
  cfg.resilient_comm = true;
  EasyScaleEngine victim(cfg, *wd.train, wd.augment);
  victim.configure_workers(std::vector<WorkerSpec>(3));
  victim.run_steps(2);
  comm::CommFaultEvent drop;
  drop.kind = comm::LinkFaultKind::kDropChunk;
  drop.rank = 1;  // collective = -1: fires during the next step's sync
  victim.inject_comm_fault(drop);
  victim.run_steps(3);
  EXPECT_EQ(victim.params_digest(), plain.params_digest());
  ASSERT_TRUE(victim.last_comm_report().has_value());
  EXPECT_GT(victim.transport_stats().drops, 0);
}

TEST(Engine, ResilientCommRankDeathAbortsTheStep) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  auto cfg = config();
  cfg.resilient_comm = true;
  EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  engine.configure_workers(std::vector<WorkerSpec>(3));
  engine.run_steps(2);
  comm::CommFaultEvent death;
  death.kind = comm::LinkFaultKind::kRankDeath;
  death.rank = 2;
  engine.inject_comm_fault(death);
  // A dead worker's EST gradients are unrecoverable mid-step: the engine
  // must surface the condemnation instead of silently dropping them.
  EXPECT_THROW(engine.run_steps(1), comm::RankDeathError);
  // The supervisor's rollback path: reconfigure onto survivors + restore.
  engine.configure_workers(std::vector<WorkerSpec>(2));
  EXPECT_FALSE(engine.last_comm_report().has_value());  // fabric was rebuilt
}

TEST(Engine, CommStallAccruesToTheVictimWorker) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  auto cfg = config();
  cfg.resilient_comm = true;
  EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  engine.configure_workers(std::vector<WorkerSpec>(3));
  EXPECT_EQ(engine.comm_stall_per_worker(), std::vector<double>(3, 0.0));
  comm::CommFaultEvent stall;
  stall.kind = comm::LinkFaultKind::kStallLink;
  stall.rank = 1;
  stall.stall_s = 0.1;  // within recv_deadline_s: slows, does not retry
  engine.inject_comm_fault(stall);
  engine.run_steps(1);
  const auto stalls = engine.comm_stall_per_worker();
  ASSERT_EQ(stalls.size(), 3u);
  EXPECT_DOUBLE_EQ(stalls[1], 0.1);
  EXPECT_DOUBLE_EQ(stalls[0], 0.0);
  EXPECT_DOUBLE_EQ(stalls[2], 0.0);
  ASSERT_TRUE(engine.last_comm_report().has_value());
  EXPECT_EQ(engine.last_comm_report()->attempts, 1);  // absorbed in-flight

  // Disabled engines expose no straggler signal.
  EasyScaleEngine off(config(), *wd.train, wd.augment);
  off.configure_workers(std::vector<WorkerSpec>(2));
  EXPECT_TRUE(off.comm_stall_per_worker().empty());
}

TEST(MemoryModel, PackingGrowsEasyScaleFlat) {
  const double pack1 = packing_memory_gb("ResNet50", 1);
  const double pack8 = packing_memory_gb("ResNet50", 8);
  EXPECT_NEAR(pack8, 8.0 * pack1, 1e-9);
  const double easy1 = easyscale_memory_gb("ResNet50", 1);
  const double easy16 = easyscale_memory_gb("ResNet50", 16);
  EXPECT_LT(easy16 - easy1, 0.5);
  EXPECT_TRUE(would_oom(packing_memory_gb("ResNet50", 16), 32.0));
  EXPECT_FALSE(would_oom(easyscale_memory_gb("ResNet50", 16), 32.0));
}

}  // namespace
}  // namespace easyscale::core
