// The parallelism plan: how a world of ranks factors into parallel
// dimensions, and how optimizer state is partitioned across them.
//
//   world_size = data_replicas × shard_degree        (pipeline_stages == 1,
//                                                     reserved scaffold)
//
// Ranks interleave across shard indices — shard_index(r) = r % shard_degree
// — so each group of shard_degree consecutive ranks forms one complete
// shard set, and each shard index is redundantly owned by data_replicas
// ranks (its "shard column").  The optimizer-state partition is a fixed
// list of contiguous chunks over the FLATTENED parameter space (parameters
// concatenated in registration order).  Chunk boundaries are a pure
// function of (total_numel, num_chunks) — ring_chunks-style near-equal
// split — and therefore independent of world_size AND shard_degree: every
// degree partitions the same element space identically, which is what makes
// resharding a pure re-assignment of ownership (no state is ever split or
// re-summed) and checkpoint chunk digests comparable across degrees.
//
// Ownership: chunk c belongs to shard index c % shard_degree.  The
// *canonical rank* of a chunk — the replica everyone copies from during
// all-gather and checkpointing — is the lowest rank with that shard index,
// which under interleaved assignment is the shard index itself.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/parameter.hpp"
#include "common/serialize.hpp"
#include "optim/optimizer.hpp"

namespace easyscale::parallel {

/// A contiguous [begin, end) range of the flattened parameter space.
struct ChunkBounds {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  friend bool operator==(const ChunkBounds&, const ChunkBounds&) = default;
};

/// Default chunk count: enough granularity for shard_degree up to 16 while
/// keeping slice lists short.
inline constexpr int kDefaultPlanChunks = 16;

/// Near-equal contiguous chunks of an n-element space, remainder spread
/// over the leading chunks (the ring_chunks convention).  Pure function of
/// (total_numel, num_chunks).
[[nodiscard]] std::vector<ChunkBounds> partition_chunks(
    std::int64_t total_numel, int num_chunks);

struct Plan {
  int world_size = 1;
  int shard_degree = 1;
  int pipeline_stages = 1;  // scaffold dimension: must be 1 today
  std::int64_t total_numel = 0;
  std::vector<ChunkBounds> chunks;

  [[nodiscard]] int data_replicas() const {
    return world_size / shard_degree;
  }
  [[nodiscard]] int shard_index(int rank) const {
    return rank % shard_degree;
  }
  [[nodiscard]] int chunk_owner(std::size_t chunk) const {
    return static_cast<int>(chunk) % shard_degree;
  }
  /// Lowest rank whose shard owns `chunk` — the canonical source replica.
  [[nodiscard]] int canonical_rank(std::size_t chunk) const {
    return chunk_owner(chunk);
  }
  [[nodiscard]] bool sharded() const { return shard_degree > 1; }

  friend bool operator==(const Plan&, const Plan&) = default;

  void save(ByteWriter& w) const;
  static Plan load(ByteReader& r);
};

/// Build the plan for a world over `params`.  Requires shard_degree >= 1,
/// shard_degree | world_size, shard_degree <= num_chunks (every shard must
/// own at least one chunk) and pipeline support is scaffold-only.
[[nodiscard]] Plan make_plan(int world_size, int shard_degree,
                             const autograd::ParameterStore& params,
                             int num_chunks = kDefaultPlanChunks);

/// Convert one chunk's global range into per-parameter slices, store order.
[[nodiscard]] std::vector<optim::ParamSlice> slices_for_chunk(
    const Plan& plan, const autograd::ParameterStore& params,
    std::size_t chunk);

/// All slices owned by shard index `shard` (chunks c with owner(c) ==
/// shard), in chunk order.
[[nodiscard]] std::vector<optim::ParamSlice> slices_for_shard(
    const Plan& plan, const autograd::ParameterStore& params, int shard);

/// The full publish map for all_gather_params: every chunk's slices plus,
/// aligned 1:1, the canonical source rank of each slice.
struct GatherMap {
  std::vector<optim::ParamSlice> slices;
  std::vector<int> source_of_slice;
};
[[nodiscard]] GatherMap gather_map(const Plan& plan,
                                   const autograd::ParameterStore& params);

}  // namespace easyscale::parallel
