#include "tensor/shape.hpp"

#include <sstream>

namespace easyscale::tensor {

std::string Shape::to_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << ", ";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace easyscale::tensor
