// Accuracy evaluation helpers (overall and per-class, as in Figs 2-3).
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "kernels/exec_context.hpp"
#include "models/workload.hpp"

namespace easyscale::models {

struct AccuracyReport {
  double overall = 0.0;               // fraction correct
  std::vector<double> per_class;      // fraction correct per label
  std::vector<std::int64_t> support;  // samples per label
};

/// Evaluate `workload` on the whole test set (eval mode, deterministic
/// kernels on the given device).
[[nodiscard]] AccuracyReport evaluate(Workload& workload,
                                      const data::Dataset& test,
                                      std::int64_t batch_size,
                                      std::int64_t num_classes,
                                      kernels::DeviceType device =
                                          kernels::DeviceType::kV100);

}  // namespace easyscale::models
