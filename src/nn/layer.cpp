#include "nn/layer.hpp"

namespace easyscale::nn {

Tensor Sequential::forward(StepContext& ctx, const Tensor& x) {
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->forward(ctx, cur);
  return cur;
}

Tensor Sequential::backward(StepContext& ctx, const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(ctx, cur);
  }
  return cur;
}

void Sequential::register_parameters(ParameterStore& store) {
  for (auto& layer : layers_) layer->register_parameters(store);
}

void Sequential::collect_buffers(std::vector<Tensor*>& out) {
  for (auto& layer : layers_) layer->collect_buffers(out);
}

void Sequential::init_weights(rng::Philox& init) {
  for (auto& layer : layers_) layer->init_weights(init);
}

bool Sequential::uses_vendor_tuned_kernels() const {
  for (const auto& layer : layers_) {
    if (layer->uses_vendor_tuned_kernels()) return true;
  }
  return false;
}

}  // namespace easyscale::nn
