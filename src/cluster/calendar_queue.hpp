// The cluster service's fast event core: an indexed calendar queue
// [Brown, CACM'88] plus a binary-heap reference queue with the same
// interface (the before/after pair measured by bench/cluster_service.cpp).
//
// A calendar queue hashes events into "days" (buckets) of a fixed width
// and pops by walking the current day — amortized O(1) enqueue/dequeue
// when the bucket count tracks the pending-event count, versus the heap's
// O(log n).  Week-long 100k-GPU traces push millions of events through
// this queue, which is why the cluster service runs in seconds.
//
// Determinism contract: ties on the timestamp pop in insertion order
// (a monotone sequence number), so replays of the same trace drain events
// in exactly the same order regardless of bucket-resize history.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace easyscale::cluster {

template <typename Payload>
struct TimedEvent {
  double t = 0.0;
  std::uint64_t seq = 0;  // insertion order, breaks timestamp ties
  Payload payload{};

  /// Priority order: earlier time first, then earlier insertion.
  [[nodiscard]] bool before(const TimedEvent& other) const {
    if (t != other.t) return t < other.t;
    return seq < other.seq;
  }
};

/// Indexed calendar queue.  Buckets are sorted vectors (events land near
/// the end in the common forward-in-time case, so insertion sort is cheap);
/// the structure resizes by powers of two when the event count outgrows or
/// undershoots the calendar, re-estimating the day width from the live
/// event-time span.
template <typename Payload>
class CalendarQueue {
 public:
  using Event = TimedEvent<Payload>;

  explicit CalendarQueue(double initial_day_s = 1.0)
      : day_s_(initial_day_s > 0.0 ? initial_day_s : 1.0) {
    buckets_.resize(kMinBuckets);
    seek(0.0);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::int64_t resizes() const { return resizes_; }

  void push(double t, Payload payload) {
    ES_CHECK(t >= 0.0, "event time must be non-negative");
    // The cursor may have walked ahead across days that were empty at the
    // time; an event landing behind it must pull the cursor back or it
    // would wait a whole calendar year [Brown'88 enqueue rule].
    if (day_of(t) < cursor_day_) seek(t);
    insert(Event{t, next_seq_++, std::move(payload)});
    ++size_;
    if (size_ > 2 * buckets_.size()) {
      resize(2 * buckets_.size());
    } else {
      maybe_adapt();
    }
  }

  /// The earliest pending event without removing it (invalidated by any
  /// push/pop).  Requires a non-empty queue.
  [[nodiscard]] const Event& peek() {
    return buckets_[locate()].back();
  }

  /// Remove and return the earliest event (time, then insertion order).
  Event pop() {
    auto& day = buckets_[locate()];
    Event out = std::move(day.back());
    day.pop_back();
    --size_;
    now_ = out.t;
    if (size_ * 4 < buckets_.size() && buckets_.size() > kMinBuckets) {
      resize(buckets_.size() / 2);
    } else {
      maybe_adapt();
    }
    return out;
  }

 private:
  static constexpr std::size_t kMinBuckets = 8;

  /// Absolute day index of time `t`.  Every cursor/walk comparison goes
  /// through this exact expression — never an accumulated floating-point
  /// "year end".  (An earlier draft advanced `year_end_ += day_s_` per hop;
  /// the accumulated rounding error eventually accepted a next-year event
  /// one day early, time ran past a smaller pending event, and that event
  /// was stranded behind the cursor forever.)
  [[nodiscard]] std::uint64_t day_of(double t) const {
    return static_cast<std::uint64_t>(t / day_s_);
  }

  [[nodiscard]] std::size_t bucket_of(double t) const {
    return static_cast<std::size_t>(day_of(t) % buckets_.size());
  }

  /// Advance the cursor to the day holding the earliest pending event and
  /// return its bucket index.  Each day's vector is sorted descending, so
  /// back() is the day's minimum; a day only yields events at or before the
  /// cursor's current day — far-future events that hash into an earlier
  /// index wait for their year to come around.
  [[nodiscard]] std::size_t locate() {
    ES_CHECK(size_ > 0, "locate on an empty calendar queue");
    for (std::size_t hop = 0; hop < buckets_.size(); ++hop) {
      const auto& day = buckets_[cursor_];
      if (!day.empty() && day_of(day.back().t) <= cursor_day_) {
        op_cost_ += static_cast<std::int64_t>(hop);
        return cursor_;
      }
      ++cursor_day_;
      cursor_ = (cursor_ + 1) % buckets_.size();
    }
    // Sparse calendar: every pending event lies beyond the scanned year.
    // Jump straight to the global earliest (the min over day minima); its
    // own year then yields it on the retry.
    const Event* earliest = nullptr;
    for (const auto& day : buckets_) {
      if (!day.empty() &&
          (earliest == nullptr || day.back().before(*earliest))) {
        earliest = &day.back();
      }
    }
    ES_CHECK(earliest != nullptr, "calendar queue lost an event");
    seek(earliest->t);
    return locate();
  }

  void insert(Event e) {
    auto& day = buckets_[bucket_of(e.t)];
    // Days are kept sorted DESCENDING so the earliest event is back() and
    // pops are O(1).  Events usually arrive later than everything pending,
    // so they land at the front after a short scan; the resize policy keeps
    // days a couple of events deep, so the vector shuffle is negligible.
    auto it = day.begin();
    while (it != day.end() && e.before(*it)) {
      ++it;
      ++op_cost_;
    }
    day.insert(it, std::move(e));
  }

  /// Width-adaptation trigger.  The size-threshold resizes alone are not
  /// enough: a queue in steady state (constant size) whose pending events
  /// compress into a narrow time band keeps a stale, too-wide day and
  /// degenerates to long within-day scans.  Track the work done by
  /// locate/insert and force a same-size resize (which re-estimates the
  /// width from the live events) when the average cost drifts up.
  void maybe_adapt() {
    if (++op_count_ < kAdaptWindow) return;
    const bool expensive = op_cost_ > 3 * op_count_;
    op_count_ = 0;
    op_cost_ = 0;
    if (expensive) resize(buckets_.size());
  }

  /// Re-point the cursor at the day containing time `t`.
  void seek(double t) {
    now_ = t;
    cursor_day_ = day_of(t);
    cursor_ = static_cast<std::size_t>(cursor_day_ % buckets_.size());
  }

  void resize(std::size_t new_buckets) {
    ++resizes_;
    std::vector<Event> all;
    all.reserve(size_);
    for (auto& day : buckets_) {
      for (auto& e : day) all.push_back(std::move(e));
      day.clear();
    }
    // New day width from the FRONT of the queue [Brown'88]: the mean gap
    // between the earliest events, doubled.  A full-span average would be
    // skewed arbitrarily wide by far-future outliers (a job arriving days
    // out must not dilate the day every near-term event hashes into).
    const std::size_t sample = std::min<std::size_t>(all.size(), 64);
    if (sample >= 2) {
      std::partial_sort(
          all.begin(), all.begin() + static_cast<std::ptrdiff_t>(sample),
          all.end(), [](const Event& a, const Event& b) { return a.before(b); });
      const double gap = (all[sample - 1].t - all[0].t) /
                         static_cast<double>(sample - 1);
      if (gap > 0.0) day_s_ = std::max(2.0 * gap, 1e-9);
    }
    buckets_.assign(new_buckets, {});
    for (auto& e : all) insert(std::move(e));
    // Reset AFTER reinsertion: the rebuild's own insert scans must not
    // count toward the next adaptation window, or every resize would
    // immediately look expensive and trigger another (rebuild thrash).
    op_count_ = 0;
    op_cost_ = 0;
    seek(now_);
  }

  std::vector<std::vector<Event>> buckets_;
  double day_s_;
  double now_ = 0.0;  // last popped time (events never go backward)
  std::uint64_t cursor_day_ = 0;  // absolute day index under the cursor
  std::size_t cursor_ = 0;        // cursor_day_ % buckets_.size()
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::int64_t resizes_ = 0;
  static constexpr std::int64_t kAdaptWindow = 2048;
  std::int64_t op_count_ = 0;  // pushes + pops since the last width check
  std::int64_t op_cost_ = 0;   // locate hops + insert scan steps in window
};

/// std::priority_queue reference with the identical interface and tie
/// rule — the "old queue" leg of the calendar-queue bench.
template <typename Payload>
class HeapEventQueue {
 public:
  using Event = TimedEvent<Payload>;

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  void push(double t, Payload payload) {
    heap_.push(Event{t, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] const Event& peek() const {
    ES_CHECK(!heap_.empty(), "peek on an empty heap queue");
    return heap_.top();
  }

  Event pop() {
    ES_CHECK(!heap_.empty(), "pop from an empty heap queue");
    Event out = heap_.top();
    heap_.pop();
    return out;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return b.before(a);
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

enum class QueueKind { kCalendar, kHeap };

/// Runtime-selected queue used by the cluster service, so the bench can
/// run the same trace through both implementations.
template <typename Payload>
class EventQueue {
 public:
  using Event = TimedEvent<Payload>;

  explicit EventQueue(QueueKind kind, double initial_day_s = 1.0)
      : kind_(kind), calendar_(initial_day_s) {}

  [[nodiscard]] bool empty() const {
    return kind_ == QueueKind::kCalendar ? calendar_.empty() : heap_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return kind_ == QueueKind::kCalendar ? calendar_.size() : heap_.size();
  }
  void push(double t, Payload payload) {
    if (kind_ == QueueKind::kCalendar) {
      calendar_.push(t, std::move(payload));
    } else {
      heap_.push(t, std::move(payload));
    }
  }
  Event pop() {
    return kind_ == QueueKind::kCalendar ? calendar_.pop() : heap_.pop();
  }
  [[nodiscard]] const Event& peek() {
    return kind_ == QueueKind::kCalendar ? calendar_.peek() : heap_.peek();
  }

 private:
  QueueKind kind_;
  CalendarQueue<Payload> calendar_;
  HeapEventQueue<Payload> heap_;
};

}  // namespace easyscale::cluster
