// Adam (Kingma & Ba) — the optimizer the paper's NLP workloads (BERT,
// Electra) train with in practice.  Like SGD's momentum buffers, Adam's
// moment estimates are identical on every replica (they are functions of
// the synchronized gradients), so EasyScale shares one Adam state per
// physical worker across all ESTs.
#pragma once

#include <vector>

#include "autograd/parameter.hpp"
#include "common/serialize.hpp"
#include "optim/optimizer.hpp"

namespace easyscale::optim {

class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;  // decoupled (AdamW-style) when nonzero
  };

  Adam(autograd::ParameterStore& params, Options opts);

  /// One update from the gradients currently in each parameter.
  void step() override;

  /// Update only the listed element ranges.  The bias-correction counter
  /// advances once per call regardless of coverage, so sharded callers see
  /// the same schedule as a full step.
  void step_slices(const std::vector<ParamSlice>& slices) override;

  /// State order: all first moments (m) per parameter, then all second
  /// moments (v) per parameter, registration order.
  [[nodiscard]] std::vector<tensor::Tensor*> state_tensors() override;

  void zero_grad() override { params_->zero_grads(); }

  [[nodiscard]] float lr() const override { return opts_.lr; }
  void set_lr(float lr) override { opts_.lr = lr; }
  [[nodiscard]] std::int64_t step_count() const { return step_count_; }

  void save(ByteWriter& w) const override;
  void load(ByteReader& r) override;

 private:
  autograd::ParameterStore* params_;
  Options opts_;
  std::int64_t step_count_ = 0;
  std::vector<tensor::Tensor> m_;  // first moment per parameter
  std::vector<tensor::Tensor> v_;  // second moment per parameter
};

}  // namespace easyscale::optim
