// SIMD backends with deterministic lane-tree accumulation.
//
// The contract (docs/PARALLELISM.md "SIMD backends and lane-tree
// determinism"): every vectorized kernel body assigns SIMD *lanes to
// distinct output elements* and replays, per lane, the exact scalar
// accumulation order of the selected variant.  The variant's interleaved
// accumulators become a fixed-width register tree folded in the pinned
// scalar order (total = 0 + acc[0] + acc[1] + ...), so the result of every
// kernel is bitwise identical across ISA levels (scalar / AVX2 / AVX-512),
// thread counts, and device-type variants — vectorization changes
// throughput, never bits.  Lane width therefore never appears in the
// numerics: AVX-512 processes 16 outputs where AVX2 processes 8, but each
// output's k-order sum is associated identically.
//
// Dispatch: resolved once per process from CPUID (+ what the compiler
// could build), overridable with the strict env knob EASYSCALE_SIMD
// (auto|avx512|avx2|scalar — anything else, including trailing spaces or
// case variants, fails loudly naming the variable).  ExecContext carries a
// per-context SimdBackend so tests and the cross-backend audit can pin
// backends explicitly; kAuto follows the process-wide resolution.
//
// The scalar backend publishes no function pointers: call sites fall back
// to the original scalar loops, which ARE the reference semantics the
// vector bodies must reproduce bit-for-bit (tests/simd_backend_test.cpp
// sweeps every variant across every available backend with memcmp).
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/variants.hpp"

namespace easyscale::kernels {

enum class SimdBackend : int {
  kAuto = 0,    // resolve from EASYSCALE_SIMD, else best supported
  kScalar = 1,  // portable fallback: the original scalar kernel loops
  kAvx2 = 2,    // 8-lane AVX2
  kAvx512 = 3,  // 16-lane AVX-512F
};

[[nodiscard]] const char* simd_backend_name(SimdBackend backend);

/// Geometry for one stride-1 direct-conv output-row interior: lanes are
/// output columns x in [x_lo, x_hi), where every tap (c, kh in
/// [kh_lo, kh_hi), kw) reads in-bounds input, so the per-lane accumulation
/// is the canonical c -> kh -> kw chain with no boundary tests.
struct ConvRowArgs {
  const float* in_n;   // sample input base [in_channels, in_h, in_w]
  const float* w_f;    // filter weights [cg, kernel_h, kernel_w]
  float* out_row;      // output row base (fixed n, f, y)
  std::int64_t ic0;    // first input channel of the group
  std::int64_t cg;     // input channels per group
  std::int64_t in_h;
  std::int64_t in_w;
  std::int64_t kernel_h;
  std::int64_t kernel_w;
  std::int64_t kh_lo;  // valid kernel-row range for this output row
  std::int64_t kh_hi;
  std::int64_t iy0;    // input row for kh == 0 (y - pad; stride 1)
  std::int64_t pad;    // ix = x - pad + kw
  float bias;
  std::int64_t x_lo;   // interior output columns: all taps in-bounds
  std::int64_t x_hi;
};

/// Function-pointer table of one backend's vector bodies.  Null members
/// mean "no vector form — use the scalar loop"; the scalar backend is all
/// null.  Every non-null body is bitwise-equal to its scalar counterpart.
struct SimdOps {
  SimdBackend kind = SimdBackend::kScalar;

  /// One GEMM row panel against UNPACKED B[k, n]:
  /// c_row[j] (+)= dot(a_row, B[:, j]) for j in [j0, j1), with `variant`'s
  /// exact per-output k-association (lanes are the j outputs).
  void (*gemm_panel)(GemmVariant variant, const float* a_row, const float* b,
                     std::int64_t k, std::int64_t n, std::int64_t j0,
                     std::int64_t j1, float* c_row, bool accumulate) = nullptr;

  /// Column-tile width of this backend's packed-B GEMM layout (a multiple
  /// of the lane count), or 0 when the backend has no packed panel.  The
  /// packed buffer holds ceil(n / width) tiles of k * width floats: tile t
  /// stores B columns [t*width, (t+1)*width) row-major at row stride
  /// `width`, zero-padded past column n.  Packing is pure data movement —
  /// it relocates each B element once and never re-associates a sum — so
  /// the packed panel is bitwise-equal to gemm_panel; it exists because
  /// power-of-two row strides (n = 128, 256, 1024...) alias L1 cache sets
  /// and TLB pages, and the packed tiles stream contiguously instead.
  std::int64_t gemm_tile_cols = 0;

  /// gemm_panel against B packed into the layout above (same j0/j1
  /// semantics; tiles are resolved internally, so chunk boundaries need
  /// not align to tiles).
  void (*gemm_panel_packed)(GemmVariant variant, const float* a_row,
                            const float* packed_b, std::int64_t k,
                            std::int64_t n, std::int64_t j0, std::int64_t j1,
                            float* c_row, bool accumulate) = nullptr;

  /// Kahan-compensated row panel (the built-in custom D2 kernel): per lane
  /// exactly kernels::kahan_dot's sum/comp recurrence.
  void (*kahan_panel)(const float* a_row, const float* b, std::int64_t k,
                      std::int64_t n, std::int64_t j0, std::int64_t j1,
                      float* c_row, bool accumulate) = nullptr;

  /// Batched strided reduction: out[s] += reduce(variant, values[s + i *
  /// stride], i < count) for s in [s0, s1) — lanes are the output slots,
  /// each keeping its variant's leaf/fold order.
  void (*reduce_batch)(ReduceVariant variant, const float* values,
                       std::int64_t stride, std::int64_t count,
                       std::int64_t s0, std::int64_t s1, float* out) = nullptr;

  /// Direct-conv stride-1 row interior (see ConvRowArgs).
  void (*conv_row)(const ConvRowArgs& args) = nullptr;

  // Elementwise maps: per-lane expression identical to the scalar loop.
  /// out[i] = x[i] > 0 ? x[i] : 0
  void (*relu_fwd)(const float* x, float* out, std::int64_t n) = nullptr;
  /// gin[i] = x[i] > 0 ? g[i] : 0
  void (*relu_bwd)(const float* x, const float* g, float* gin,
                   std::int64_t n) = nullptr;
  /// gin[i] = g[i] * s[i] * (1 - s[i])
  void (*sigmoid_bwd)(const float* s, const float* g, float* gin,
                      std::int64_t n) = nullptr;
  /// out[i] += c
  void (*add_scalar)(float* out, float c, std::int64_t n) = nullptr;
  /// out[i] += add[i]
  void (*add_vec)(float* out, const float* add, std::int64_t n) = nullptr;
  /// out[i] = out[i] / c
  void (*div_scalar)(float* out, float c, std::int64_t n) = nullptr;
  /// xhat[i] = (x[i] - mean) * inv_std; out[i] = gamma[i] * xhat[i] + beta[i]
  void (*norm_affine_vec)(const float* x, const float* gamma,
                          const float* beta, float mean, float inv_std,
                          float* xhat, float* out, std::int64_t n) = nullptr;
  /// xhat[i] = (x[i] - mean) * inv_std; out[i] = gamma * xhat[i] + beta
  void (*norm_affine_scalar)(const float* x, float gamma, float beta,
                             float mean, float inv_std, float* xhat,
                             float* out, std::int64_t n) = nullptr;
};

/// Best backend this process can run: CPUID support AND compiled-in.
[[nodiscard]] SimdBackend detected_simd_backend();

/// True when `backend` can execute here (kScalar always; kAuto always).
[[nodiscard]] bool simd_backend_available(SimdBackend backend);

/// Every concrete backend available here, scalar first.
[[nodiscard]] std::vector<SimdBackend> available_simd_backends();

/// Uncached strict parse of EASYSCALE_SIMD: re-reads the environment every
/// call so tests can exercise the rejection path without fighting the
/// process-lifetime cache.  Unset/empty -> kAuto; a value outside
/// {auto, avx512, avx2, scalar} (exact match — "avx2 " and "AVX-512" are
/// typos, not requests) throws an Error naming the variable; a valid value
/// the host cannot run (e.g. avx512 on an AVX2 machine) also throws.
[[nodiscard]] SimdBackend parse_simd_backend_env();

/// Ops table for `backend`; kAuto resolves through EASYSCALE_SIMD (cached
/// at first use) then detection.  Throws for an unavailable backend.
[[nodiscard]] const SimdOps& simd_ops(SimdBackend backend);

namespace detail {
// Per-ISA tables, null when that TU was compiled without its ISA flag.
[[nodiscard]] const SimdOps* avx2_ops();
[[nodiscard]] const SimdOps* avx512_ops();
}  // namespace detail

}  // namespace easyscale::kernels
