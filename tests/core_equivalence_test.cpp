// The paper's headline property (§3.1): EasyScale training is bitwise
// identical to PyTorch-DDP training at the model-designed DoP, for ANY
// mapping of ESTs onto physical workers, across scale events, and (with
// D2) across heterogeneous device types.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"

namespace easyscale {
namespace {

using core::DeterminismLevel;
using core::EasyScaleConfig;
using core::EasyScaleEngine;
using core::WorkerSpec;
using kernels::DeviceType;

constexpr std::int64_t kTrainSize = 128;
constexpr std::uint64_t kSeed = 42;

EasyScaleConfig base_config(const std::string& workload) {
  EasyScaleConfig cfg;
  cfg.workload = workload;
  cfg.num_ests = 4;
  cfg.batch_per_est = 4;
  cfg.seed = kSeed;
  cfg.determinism.level = DeterminismLevel::kD1;
  return cfg;
}

ddp::DDPConfig ddp_config(const std::string& workload) {
  ddp::DDPConfig cfg;
  cfg.workload = workload;
  cfg.world_size = 4;
  cfg.batch_per_worker = 4;
  cfg.seed = kSeed;
  return cfg;
}

std::uint64_t ddp_digest_after(const std::string& workload,
                               std::int64_t steps) {
  auto wd = models::make_dataset_for(workload, kTrainSize, 32, kSeed);
  ddp::DDPTrainer trainer(ddp_config(workload), *wd.train, wd.augment);
  trainer.run_steps(steps);
  return trainer.params_digest();
}

std::uint64_t easyscale_digest_after(const std::string& workload,
                                     const std::vector<WorkerSpec>& workers,
                                     std::int64_t steps) {
  auto wd = models::make_dataset_for(workload, kTrainSize, 32, kSeed);
  EasyScaleEngine engine(base_config(workload), *wd.train, wd.augment);
  engine.configure_workers(workers);
  engine.run_steps(steps);
  return engine.params_digest();
}

TEST(CoreEquivalence, FourWorkersMatchesDDP) {
  const auto ddp = ddp_digest_after("ResNet18", 6);
  const auto es = easyscale_digest_after(
      "ResNet18", std::vector<WorkerSpec>(4, WorkerSpec{}), 6);
  EXPECT_EQ(ddp, es);
}

TEST(CoreEquivalence, TwoWorkersMatchesDDP) {
  const auto ddp = ddp_digest_after("ResNet18", 6);
  const auto es = easyscale_digest_after(
      "ResNet18", std::vector<WorkerSpec>(2, WorkerSpec{}), 6);
  EXPECT_EQ(ddp, es);
}

TEST(CoreEquivalence, OneWorkerMatchesDDP) {
  const auto ddp = ddp_digest_after("ResNet18", 6);
  const auto es = easyscale_digest_after(
      "ResNet18", std::vector<WorkerSpec>(1, WorkerSpec{}), 6);
  EXPECT_EQ(ddp, es);
}

TEST(CoreEquivalence, UnbalancedMappingMatchesDDP) {
  auto wd = models::make_dataset_for("ResNet18", kTrainSize, 32, kSeed);
  EasyScaleEngine engine(base_config("ResNet18"), *wd.train, wd.augment);
  engine.configure_workers(std::vector<WorkerSpec>(2, WorkerSpec{}),
                           std::vector<std::vector<std::int64_t>>{{2, 0, 3},
                                                                  {1}});
  engine.run_steps(6);
  EXPECT_EQ(ddp_digest_after("ResNet18", 6), engine.params_digest());
}

TEST(CoreEquivalence, RescaleMidTrainingMatchesDDP) {
  auto wd = models::make_dataset_for("ResNet18", kTrainSize, 32, kSeed);
  EasyScaleEngine engine(base_config("ResNet18"), *wd.train, wd.augment);
  engine.configure_workers(std::vector<WorkerSpec>(4, WorkerSpec{}));
  engine.run_steps(3);
  engine.configure_workers(std::vector<WorkerSpec>(2, WorkerSpec{}));
  engine.run_steps(2);
  engine.configure_workers(std::vector<WorkerSpec>(3, WorkerSpec{}));
  engine.run_steps(1);
  EXPECT_EQ(ddp_digest_after("ResNet18", 6), engine.params_digest());
}

TEST(CoreEquivalence, LossHistoryMatchesDDPExactly) {
  auto wd = models::make_dataset_for("VGG19", kTrainSize, 32, kSeed);
  ddp::DDPTrainer ddp(ddp_config("VGG19"), *wd.train, wd.augment);
  ddp.run_steps(5);

  auto wd2 = models::make_dataset_for("VGG19", kTrainSize, 32, kSeed);
  EasyScaleEngine engine(base_config("VGG19"), *wd2.train, wd2.augment);
  engine.configure_workers(std::vector<WorkerSpec>(2, WorkerSpec{}));
  engine.run_steps(5);

  ASSERT_EQ(ddp.loss_history().size(), engine.loss_history().size());
  for (std::size_t i = 0; i < ddp.loss_history().size(); ++i) {
    EXPECT_EQ(ddp.loss_history()[i], engine.loss_history()[i])
        << "loss diverged at step " << i;
  }
}

}  // namespace
}  // namespace easyscale
