// v3 (shard-aware) checkpoint frames: cross-degree restores, the
// per-chunk digest chain, and torn-write detection at every byte offset.
//
// The load-bearing property: chunk bounds are a pure function of the
// model, NOT of shard_degree, so a checkpoint saved at degree N restores
// bitwise at ANY degree dividing the same world — and the per-chunk
// digest chain of the restored run is identical to the saved one.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint_io.hpp"
#include "models/datasets.hpp"
#include "parallel/trainer.hpp"

namespace easyscale {
namespace {

using core::ShardFrameMeta;
using parallel::Trainer;
using parallel::TrainerConfig;

constexpr std::int64_t kTrainSize = 128;
constexpr std::uint64_t kSeed = 42;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TrainerConfig config(int shard_degree, std::int64_t world = 8) {
  TrainerConfig cfg;
  cfg.workload = "ResNet18";
  cfg.world_size = world;
  cfg.batch_per_worker = 4;
  cfg.seed = kSeed;
  cfg.shard_degree = shard_degree;
  return cfg;
}

std::unique_ptr<Trainer> make_trainer(const models::WorkloadData& wd,
                                      int shard_degree,
                                      std::int64_t world = 8) {
  return std::make_unique<Trainer>(config(shard_degree, world), *wd.train,
                                   wd.augment);
}

TEST(ShardCheckpoint, FrameMetaSerializationRoundTrip) {
  ShardFrameMeta meta;
  meta.world_size = 8;
  meta.shard_degree = 4;
  meta.total_numel = 100;
  meta.chunk_begin = {0, 25, 50, 75};
  meta.chunk_end = {25, 50, 75, 100};
  meta.chunk_chain.push(0, 0x1111);
  meta.chunk_chain.push(1, 0x2222);
  ByteWriter w;
  meta.save(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(ShardFrameMeta::load(r), meta);
}

TEST(ShardCheckpoint, FrameMetaRejectsBadFactorization) {
  ShardFrameMeta meta;
  meta.world_size = 8;
  meta.shard_degree = 3;  // does not divide 8
  ByteWriter w;
  meta.save(w);
  ByteReader r(w.bytes());
  EXPECT_THROW(ShardFrameMeta::load(r), Error);
}

/// Save at shard_degree N = 4, restore at every M in {1, N/2, N, 2N} of
/// the same world, continue training: every trajectory must land on the
/// unsharded sequential run's exact parameter bits, and the chunk digest
/// chain a restored trainer writes must equal the one it read.
TEST(ShardCheckpoint, SaveAtDegreeFourRestoresBitwiseAtEveryDegree) {
  auto wd = models::make_dataset_for("ResNet18", kTrainSize, 32, kSeed);

  // Unsharded reference trajectory, 6 steps straight through.
  auto ref = make_trainer(wd, 1);
  ref->run_steps(6);
  const auto ref_digest = ref->params_digest();

  // Saver: degree 4, 3 steps, checkpoint.
  const auto path = temp_path("deg4.ckpt");
  auto saver = make_trainer(wd, 4);
  saver->run_steps(3);
  saver->save_checkpoint(path);

  DigestChain chain;
  std::optional<ShardFrameMeta> saved_meta;
  (void)core::load_checkpoint_file(path, &chain, &saved_meta);
  ASSERT_TRUE(saved_meta.has_value());
  EXPECT_EQ(saved_meta->shard_degree, 4);
  EXPECT_EQ(saved_meta->world_size, 8);

  for (const int degree : {1, 2, 4, 8}) {
    SCOPED_TRACE("restore degree " + std::to_string(degree));
    auto restored = make_trainer(wd, degree);
    restored->restore_checkpoint(path);
    EXPECT_EQ(restored->global_step(), 3);
    // The restored trainer's own checkpoint carries the SAME chunk chain:
    // the partition is degree-independent, so the canonical bytes are too.
    const auto repath = temp_path("restored.ckpt");
    restored->save_checkpoint(repath);
    std::optional<ShardFrameMeta> remeta;
    DigestChain rechain;
    (void)core::load_checkpoint_file(repath, &rechain, &remeta);
    ASSERT_TRUE(remeta.has_value());
    EXPECT_EQ(remeta->shard_degree, degree);
    EXPECT_TRUE(remeta->chunk_chain == saved_meta->chunk_chain);
    std::remove(repath.c_str());

    restored->run_steps(3);
    EXPECT_EQ(restored->params_digest(), ref_digest)
        << "degree " << degree << " diverged after restore";
  }
  std::remove(path.c_str());
}

TEST(ShardCheckpoint, RestoreRejectsWorldSizeMismatch) {
  auto wd = models::make_dataset_for("ResNet18", kTrainSize, 32, kSeed);
  const auto path = temp_path("world8.ckpt");
  auto saver = make_trainer(wd, 2, /*world=*/8);
  saver->run_steps(1);
  saver->save_checkpoint(path);
  auto other = make_trainer(wd, 2, /*world=*/4);
  EXPECT_THROW(other->restore_checkpoint(path), Error);
  std::remove(path.c_str());
}

TEST(ShardCheckpoint, RestoreRejectsPreShardFrames) {
  // A v2 file (no shard frame) cannot answer a planner restore: the
  // trainer needs the chunk chain to attest the canonical bytes.
  auto wd = models::make_dataset_for("ResNet18", kTrainSize, 32, kSeed);
  const auto path = temp_path("v2only.ckpt");
  core::save_checkpoint_file(path, {1, 2, 3}, DigestChain());
  auto t = make_trainer(wd, 2);
  EXPECT_THROW(t->restore_checkpoint(path), Error);
  std::remove(path.c_str());
}

/// Crash-point sweep over the v3 frame: kill the writer after exactly k
/// bytes, for EVERY k — header, tensor chain, shard frame, chunk-bound
/// arrays, payload.  A torn v3 file must never load.
TEST(ShardCheckpoint, WriterKilledAtEveryByteOffsetIsDetected) {
  const auto path = temp_path("torn_v3.ckpt");
  DigestChain chain;
  chain.push(0, 0xABCD);
  chain.push(1, 0xEF01);
  ShardFrameMeta meta;
  meta.world_size = 4;
  meta.shard_degree = 2;
  meta.total_numel = 64;
  meta.chunk_begin = {0, 16, 32, 48};
  meta.chunk_end = {16, 32, 48, 64};
  for (std::uint64_t c = 0; c < 4; ++c) meta.chunk_chain.push(c, 0x100 + c);
  const std::vector<std::uint8_t> payload(57, 0x5A);
  core::save_checkpoint_file(path, payload, chain, meta);

  std::ifstream in(path, std::ios::binary);
  const std::vector<char> full((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(full.size(), payload.size());

  for (std::size_t k = 0; k < full.size(); ++k) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(k));
    }
    EXPECT_THROW((void)core::load_checkpoint_file(path), Error)
        << "torn v3 frame accepted at crash point " << k;
  }
  // The complete file round-trips with frame intact.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size()));
  }
  DigestChain chain2;
  std::optional<ShardFrameMeta> meta2;
  EXPECT_EQ(core::load_checkpoint_file(path, &chain2, &meta2), payload);
  ASSERT_TRUE(meta2.has_value());
  EXPECT_EQ(*meta2, meta);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace easyscale
