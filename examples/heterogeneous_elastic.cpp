// Heterogeneous elasticity with on-demand checkpoints.
//
// A D2-eligible transformer (Bert) trains across a mix of V100/P100/T4
// simulated GPUs, is checkpointed to bytes, "crashes", and is restored into
// a completely different worker set — landing bitwise exactly where an
// uninterrupted homogeneous run would.  Also demonstrates the §3.3 model
// scan deciding whether heterogeneous GPUs are advisable per workload.
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"

int main() {
  using namespace easyscale;
  using kernels::DeviceType;

  // --- model scan: which workloads should run on heterogeneous GPUs? -----
  std::printf("D2 eligibility scan (§3.3):\n");
  for (const auto& name : models::workload_names()) {
    const auto w = models::make_workload(name);
    std::printf("  %-18s -> %s\n", name.c_str(),
                core::d2_recommended(*w)
                    ? "heterogeneous OK (no vendor-tuned kernels)"
                    : "keep homogeneous (conv kernels; D2 is costly)");
  }

  const std::string workload = "Bert";
  const std::uint64_t seed = 7;
  auto wd = models::make_dataset_for(workload, 256, 64, seed);

  core::EasyScaleConfig cfg;
  cfg.workload = workload;
  cfg.num_ests = 4;
  cfg.batch_per_est = 4;
  cfg.seed = seed;
  cfg.determinism.level = core::DeterminismLevel::kD1;
  cfg.determinism.d2 = true;  // hardware-agnostic kernels

  core::EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  engine.configure_workers({core::WorkerSpec{DeviceType::kV100},
                            core::WorkerSpec{DeviceType::kP100}});
  engine.run_steps(20);
  std::printf("\n20 steps on V100+P100 done; taking on-demand checkpoint "
              "(EST contexts + extra states + parameters)...\n");
  const std::vector<std::uint8_t> ckpt = engine.checkpoint();
  std::printf("checkpoint size: %.1f KiB\n",
              static_cast<double>(ckpt.size()) / 1024.0);

  // "Crash": rebuild a fresh engine on completely different hardware.
  core::EasyScaleEngine revived(cfg, *wd.train, wd.augment);
  revived.configure_workers({core::WorkerSpec{DeviceType::kT4},
                             core::WorkerSpec{DeviceType::kT4},
                             core::WorkerSpec{DeviceType::kV100}});
  revived.restore(ckpt);
  revived.run_steps(20);
  std::printf("restored onto 2xT4 + 1xV100 and ran 20 more steps.\n");

  // Reference: the same 40 steps on fixed homogeneous DDP (D2 kernels).
  ddp::DDPConfig dcfg;
  dcfg.workload = workload;
  dcfg.world_size = 4;
  dcfg.batch_per_worker = 4;
  dcfg.seed = seed;
  dcfg.policy = kernels::KernelPolicy::kHardwareAgnostic;
  ddp::DDPTrainer reference(dcfg, *wd.train, wd.augment);
  reference.run_steps(40);

  std::printf("\nrevived  digest: %016llx\n",
              static_cast<unsigned long long>(revived.params_digest()));
  std::printf("DDP-heter digest: %016llx\n",
              static_cast<unsigned long long>(reference.params_digest()));
  if (revived.params_digest() == reference.params_digest()) {
    std::printf("=> bitwise IDENTICAL across crash + heterogeneous rescale.\n");
    return 0;
  }
  std::printf("=> MISMATCH (this is a bug)\n");
  return 1;
}
