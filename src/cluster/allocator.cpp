#include "cluster/allocator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace easyscale::cluster {

namespace {

/// Distribute `capacity` integer GPUs over `want` (fractional targets) by
/// largest remainder, never exceeding ceil of the target's demand cap.
/// Deterministic: remainder ties break toward the lower index.
std::vector<std::int64_t> round_shares(const std::vector<double>& want,
                                       const std::vector<std::int64_t>& cap,
                                       std::int64_t capacity) {
  const std::size_t n = want.size();
  std::vector<std::int64_t> out(n, 0);
  std::vector<std::pair<double, std::size_t>> frac;
  std::int64_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double clamped =
        std::min(want[i], static_cast<double>(cap[i]));
    out[i] = static_cast<std::int64_t>(std::floor(clamped));
    used += out[i];
    frac.push_back({clamped - std::floor(clamped), i});
  }
  std::sort(frac.begin(), frac.end(),
            [](const std::pair<double, std::size_t>& a,
               const std::pair<double, std::size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const auto& [rem, i] : frac) {
    if (used >= capacity) break;
    if (rem <= 0.0 || out[i] >= cap[i]) continue;
    ++out[i];
    ++used;
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> fair_share(const std::vector<ShareRequest>& reqs,
                                     std::int64_t capacity) {
  ES_CHECK(capacity >= 0, "negative capacity");
  const std::size_t n = reqs.size();
  std::vector<std::int64_t> alloc(n, 0);
  std::int64_t remaining = capacity;

  // Pass 1 — entitlements, guaranteed before burst: each quota-holding
  // tenant receives min(demand, quota) while capacity lasts (an
  // oversubscribed cluster serves guaranteed quotas first).
  for (SlaTier tier : {SlaTier::kGuaranteed, SlaTier::kBurst}) {
    for (std::size_t i = 0; i < n && remaining > 0; ++i) {
      if (reqs[i].tier != tier) continue;
      const std::int64_t granted = std::min(
          {reqs[i].demand, reqs[i].quota, remaining});
      alloc[i] += granted;
      remaining -= granted;
    }
  }

  // Pass 2 — weighted max-min water-fill of the surplus over unmet demand
  // (all tiers compete; spot only ever eats here).  Exact O(n log n):
  // sort by saturation level headroom/weight, walk until the water level
  // fits under the next tenant's cap; everyone before the walk point gets
  // their full headroom, everyone after gets weight × level.
  std::vector<std::int64_t> headroom(n, 0);
  std::vector<std::size_t> order;
  double weight_tail = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    headroom[i] = std::max<std::int64_t>(0, reqs[i].demand - alloc[i]);
    if (headroom[i] > 0 && reqs[i].weight > 0.0) {
      order.push_back(i);
      weight_tail += reqs[i].weight;
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double la = static_cast<double>(headroom[a]) / reqs[a].weight;
    const double lb = static_cast<double>(headroom[b]) / reqs[b].weight;
    if (la != lb) return la < lb;
    return a < b;
  });
  std::vector<double> extra(n, 0.0);
  double spare = static_cast<double>(remaining);
  std::size_t walk = 0;
  for (; walk < order.size() && weight_tail > 0.0; ++walk) {
    const std::size_t i = order[walk];
    const double level = spare / weight_tail;
    if (static_cast<double>(headroom[i]) / reqs[i].weight > level) break;
    extra[i] = static_cast<double>(headroom[i]);  // saturates below level
    spare -= extra[i];
    weight_tail -= reqs[i].weight;
  }
  if (weight_tail > 0.0) {
    const double level = spare / weight_tail;
    for (std::size_t k = walk; k < order.size(); ++k) {
      const std::size_t i = order[k];
      extra[i] = level * reqs[i].weight;
    }
  }
  const auto extra_int = round_shares(extra, headroom, remaining);
  for (std::size_t i = 0; i < n; ++i) alloc[i] += extra_int[i];
  return alloc;
}

double jain_index(const std::vector<double>& x) {
  if (x.empty()) return 1.0;
  double sum = 0.0, sq = 0.0;
  for (double v : x) {
    sum += v;
    sq += v * v;
  }
  if (sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(x.size()) * sq);
}

}  // namespace easyscale::cluster
