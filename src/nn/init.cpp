#include "nn/init.hpp"

#include <cmath>

#include "rng/sampling.hpp"

namespace easyscale::nn {

void kaiming_uniform(rng::Philox& gen, tensor::Tensor& w, std::int64_t fan_in) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  rng::fill_uniform(gen, w.data(), -bound, bound);
}

void xavier_uniform(rng::Philox& gen, tensor::Tensor& w, std::int64_t fan_in,
                    std::int64_t fan_out) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  rng::fill_uniform(gen, w.data(), -bound, bound);
}

void normal_init(rng::Philox& gen, tensor::Tensor& w, float stddev) {
  rng::fill_normal(gen, w.data(), 0.0f, stddev);
}

}  // namespace easyscale::nn
