#include <gtest/gtest.h>

#include <cmath>

#include "common/digest.hpp"
#include "kernels/conv.hpp"
#include "kernels/gemm.hpp"
#include "kernels/reduce.hpp"
#include "kernels/scatter.hpp"
#include "rng/sampling.hpp"

namespace easyscale::kernels {
namespace {

rng::Philox gen(1234);

std::vector<float> random_vec(std::size_t n, float stddev = 1.0f) {
  std::vector<float> v(n);
  rng::fill_normal(gen, v, 0.0f, stddev);
  return v;
}

/// Reference gemm in double precision.
std::vector<float> gemm_reference(std::int64_t m, std::int64_t n,
                                  std::int64_t k,
                                  std::span<const float> a,
                                  std::span<const float> b) {
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[static_cast<std::size_t>(i * k + kk)]) *
               static_cast<double>(b[static_cast<std::size_t>(kk * n + j)]);
      }
      c[static_cast<std::size_t>(i * n + j)] = static_cast<float>(acc);
    }
  }
  return c;
}

class GemmVariantTest : public ::testing::TestWithParam<GemmVariant> {};

TEST_P(GemmVariantTest, MatchesReferenceWithinTolerance) {
  const std::int64_t m = 7, n = 9, k = 33;
  const auto a = random_vec(static_cast<std::size_t>(m * k));
  const auto b = random_vec(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  gemm_variant(GetParam(), m, n, k, a, b, c, false);
  const auto ref = gemm_reference(m, n, k, a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f * (1.0f + std::abs(ref[i])));
  }
}

TEST_P(GemmVariantTest, AccumulateAddsToC) {
  const std::int64_t m = 3, n = 3, k = 8;
  const auto a = random_vec(static_cast<std::size_t>(m * k));
  const auto b = random_vec(static_cast<std::size_t>(k * n));
  std::vector<float> c0(static_cast<std::size_t>(m * n));
  gemm_variant(GetParam(), m, n, k, a, b, c0, false);
  std::vector<float> c1(static_cast<std::size_t>(m * n), 1.0f);
  gemm_variant(GetParam(), m, n, k, a, b, c1, true);
  for (std::size_t i = 0; i < c0.size(); ++i) {
    EXPECT_FLOAT_EQ(c1[i], 1.0f + c0[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, GemmVariantTest,
                         ::testing::Values(GemmVariant::kSequential,
                                           GemmVariant::kInterleaved2,
                                           GemmVariant::kInterleaved4,
                                           GemmVariant::kInterleaved8,
                                           GemmVariant::kBlocked8));

TEST(Gemm, VariantsAreBitwiseDistinct) {
  const std::int64_t m = 8, n = 32, k = 72;
  const auto a = random_vec(static_cast<std::size_t>(m * k));
  const auto b = random_vec(static_cast<std::size_t>(k * n));
  const GemmVariant variants[] = {
      GemmVariant::kSequential, GemmVariant::kInterleaved2,
      GemmVariant::kInterleaved4, GemmVariant::kInterleaved8};
  std::vector<std::uint64_t> digests;
  for (auto v : variants) {
    std::vector<float> c(static_cast<std::size_t>(m * n));
    gemm_variant(v, m, n, k, a, b, c, false);
    digests.push_back(digest_floats(c));
  }
  for (std::size_t i = 0; i < digests.size(); ++i) {
    for (std::size_t j = i + 1; j < digests.size(); ++j) {
      EXPECT_NE(digests[i], digests[j])
          << "variants " << i << " and " << j << " collided";
    }
  }
}

TEST(Gemm, PolicySelection) {
  ExecContext ctx;
  ctx.policy = KernelPolicy::kHardwareAgnostic;
  ctx.device = DeviceType::kT4;
  EXPECT_EQ(select_gemm_variant(ctx, 4, 4, 4), GemmVariant::kInterleaved4);
  ctx.policy = KernelPolicy::kDeterministic;
  EXPECT_EQ(select_gemm_variant(ctx, 4, 4, 4), GemmVariant::kInterleaved2);
  ctx.device = DeviceType::kV100;
  EXPECT_EQ(select_gemm_variant(ctx, 4, 4, 4), GemmVariant::kInterleaved8);
}

TEST(Gemm, HardwareAgnosticIsDeviceIndependent) {
  const std::int64_t m = 4, n = 4, k = 16;
  const auto a = random_vec(static_cast<std::size_t>(m * k));
  const auto b = random_vec(static_cast<std::size_t>(k * n));
  std::vector<std::uint64_t> digests;
  for (auto device : {DeviceType::kV100, DeviceType::kP100, DeviceType::kT4}) {
    ExecContext ctx;
    ctx.policy = KernelPolicy::kHardwareAgnostic;
    ctx.device = device;
    std::vector<float> c(static_cast<std::size_t>(m * n));
    gemm(ctx, m, n, k, a, b, c, false);
    digests.push_back(digest_floats(c));
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
}

TEST(Gemm, TransposedWrappersMatchReference) {
  const std::int64_t m = 5, n = 6, k = 7;
  ExecContext ctx;
  const auto a = random_vec(static_cast<std::size_t>(m * k));
  const auto b = random_vec(static_cast<std::size_t>(k * n));
  const auto ref = gemm_reference(m, n, k, a, b);
  // gemm_tn: A passed as [k, m].
  std::vector<float> at(static_cast<std::size_t>(k * m));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      at[static_cast<std::size_t>(kk * m + i)] =
          a[static_cast<std::size_t>(i * k + kk)];
    }
  }
  std::vector<float> c(static_cast<std::size_t>(m * n));
  gemm_tn(ctx, m, n, k, at, b, c, false);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f * (1.0f + std::abs(ref[i])));
  }
  // gemm_nt: B passed as [n, k].
  std::vector<float> bt(static_cast<std::size_t>(n * k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t j = 0; j < n; ++j) {
      bt[static_cast<std::size_t>(j * k + kk)] =
          b[static_cast<std::size_t>(kk * n + j)];
    }
  }
  gemm_nt(ctx, m, n, k, a, bt, c, false);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f * (1.0f + std::abs(ref[i])));
  }
}

TEST(Reduce, VariantsSumCorrectly) {
  const auto v = random_vec(1000);
  double ref = 0.0;
  for (float x : v) ref += x;
  for (auto variant :
       {ReduceVariant::kSequential, ReduceVariant::kPairwise64,
        ReduceVariant::kPairwise128, ReduceVariant::kPairwise256}) {
    EXPECT_NEAR(reduce_sum_variant(variant, v), ref, 1e-3);
  }
}

TEST(Reduce, VariantsAreBitwiseDistinct) {
  // Mixed magnitudes make association differences round differently.
  auto v = random_vec(4096);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] *= static_cast<float>(1 + (i % 7));
  }
  const float seq = reduce_sum_variant(ReduceVariant::kSequential, v);
  const float p64 = reduce_sum_variant(ReduceVariant::kPairwise64, v);
  const float p128 = reduce_sum_variant(ReduceVariant::kPairwise128, v);
  EXPECT_NE(seq, p64);
  EXPECT_NE(seq, p128);
}

TEST(Reduce, EmptyAndSingleton) {
  EXPECT_EQ(reduce_sum_variant(ReduceVariant::kPairwise64,
                               std::span<const float>()),
            0.0f);
  const float one[] = {3.5f};
  EXPECT_EQ(reduce_sum_variant(ReduceVariant::kPairwise64, one), 3.5f);
}

TEST(Reduce, StridedMatchesGather) {
  const auto v = random_vec(128);
  ExecContext ctx;
  std::vector<float> gathered;
  for (std::size_t i = 3; i < v.size(); i += 4) gathered.push_back(v[i]);
  EXPECT_EQ(reduce_sum_strided(ctx, v, 3, 4,
                               static_cast<std::int64_t>(gathered.size())),
            reduce_sum(ctx, gathered));
}

TEST(Scatter, DeterministicIsReproducible) {
  ExecContext det;
  det.policy = KernelPolicy::kDeterministic;
  std::vector<std::int64_t> idx(200);
  rng::fill_randint(gen, idx, 16);
  const auto src = random_vec(200 * 3);
  std::vector<float> a(16 * 3, 0.0f), b(16 * 3, 0.0f);
  scatter_add(det, idx, src, 3, a);
  scatter_add(det, idx, src, 3, b);
  EXPECT_EQ(digest_floats(a), digest_floats(b));
}

TEST(Scatter, EmulatedAtomicsVaryAcrossCalls) {
  ExecContext fast;
  fast.policy = KernelPolicy::kFastest;
  reset_atomic_emulation_counter();
  std::vector<std::int64_t> idx(300);
  rng::fill_randint(gen, idx, 4);  // heavy collisions
  const auto src = random_vec(300);
  std::vector<std::uint64_t> digests;
  for (int run = 0; run < 4; ++run) {
    std::vector<float> out(4, 0.0f);
    scatter_add(fast, idx, src, 1, out);
    digests.push_back(digest_floats(out));
  }
  bool any_diff = false;
  for (std::size_t i = 1; i < digests.size(); ++i) {
    if (digests[i] != digests[0]) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "atomic emulation should vary run to run";
}

TEST(Scatter, OutOfRangeThrows) {
  ExecContext det;
  std::vector<std::int64_t> idx{5};
  std::vector<float> src{1.0f};
  std::vector<float> out(4, 0.0f);
  EXPECT_THROW(scatter_add(det, idx, src, 1, out), Error);
}

TEST(Conv, Im2colMatchesDirectWithinTolerance) {
  Conv2dDims d{.batch = 2,
               .in_channels = 3,
               .in_h = 8,
               .in_w = 8,
               .out_channels = 4,
               .kernel_h = 3,
               .kernel_w = 3,
               .stride = 1,
               .pad = 1,
               .groups = 1};
  const auto input = random_vec(static_cast<std::size_t>(
      d.batch * d.in_channels * d.in_h * d.in_w));
  const auto weight = random_vec(static_cast<std::size_t>(
      d.out_channels * d.in_channels * d.kernel_h * d.kernel_w));
  const auto bias = random_vec(static_cast<std::size_t>(d.out_channels));
  const std::size_t out_n = static_cast<std::size_t>(
      d.batch * d.out_channels * d.out_h() * d.out_w());
  ExecContext vendor;
  vendor.policy = KernelPolicy::kDeterministic;
  ExecContext canonical;
  canonical.policy = KernelPolicy::kHardwareAgnostic;
  std::vector<float> out_v(out_n), out_c(out_n);
  conv2d_forward(vendor, d, input, weight, bias, out_v);
  conv2d_forward(canonical, d, input, weight, bias, out_c);
  for (std::size_t i = 0; i < out_n; ++i) {
    ASSERT_NEAR(out_v[i], out_c[i], 1e-4f * (1.0f + std::abs(out_c[i])));
  }
}

TEST(Conv, GroupedConvPartitionsChannels) {
  // With groups == in_channels == out_channels (depthwise), each output
  // channel depends only on its own input channel.
  Conv2dDims d{.batch = 1,
               .in_channels = 2,
               .in_h = 4,
               .in_w = 4,
               .out_channels = 2,
               .kernel_h = 3,
               .kernel_w = 3,
               .stride = 1,
               .pad = 1,
               .groups = 2};
  std::vector<float> input(2 * 16, 0.0f);
  for (int i = 0; i < 16; ++i) input[static_cast<std::size_t>(i)] = 1.0f;
  std::vector<float> weight(2 * 1 * 9, 1.0f);
  ExecContext ctx;
  std::vector<float> out(2 * 16);
  conv2d_forward(ctx, d, input, weight, {}, out);
  // Channel 1 of the input is zero, so output channel 1 must be all zeros.
  for (int i = 16; i < 32; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], 0.0f);
  }
  // Channel 0 center pixels see all 9 ones.
  EXPECT_EQ(out[5], 9.0f);
}

TEST(Conv, Im2colCol2imRoundTripAccumulates) {
  Conv2dDims d{.batch = 1,
               .in_channels = 1,
               .in_h = 4,
               .in_w = 4,
               .out_channels = 1,
               .kernel_h = 1,
               .kernel_w = 1,
               .stride = 1,
               .pad = 0,
               .groups = 1};
  const auto input = random_vec(16);
  std::vector<float> cols(16);
  ExecContext ctx;
  im2col(ctx, d, input, 0, cols);
  std::vector<float> back(16, 0.0f);
  col2im(ctx, d, cols, 0, back);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(back[i], input[i]);
}

}  // namespace
}  // namespace easyscale::kernels
