// Quickstart: train a model elastically with EasyScale and verify that the
// result is bitwise identical to fixed-DoP PyTorch-style DDP training.
//
//   1. design the model for 4 logical workers (ESTs);
//   2. start training on 2 simulated GPUs;
//   3. scale out to 4, then in to 1, mid-training;
//   4. compare the parameter digest with a DDP run on fixed 4 GPUs.
#include <cstdio>

#include "core/engine.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"
#include "models/eval.hpp"

int main() {
  using namespace easyscale;

  const std::string workload = "ResNet18";
  const std::uint64_t seed = 42;
  auto wd = models::make_dataset_for(workload, /*train=*/512, /*test=*/256,
                                     seed);

  // ---- EasyScale: 4 ESTs, elastic physical workers -----------------------
  core::EasyScaleConfig cfg;
  cfg.workload = workload;
  cfg.num_ests = 4;       // the DoP fixed at model-design time (maxP)
  cfg.batch_per_est = 8;  // per logical worker, like DDP per-GPU batch
  cfg.seed = seed;
  cfg.determinism.level = core::DeterminismLevel::kD1;

  core::EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  engine.configure_workers(std::vector<core::WorkerSpec>(2));  // 2 GPUs
  std::printf("training on 2 GPUs...\n");
  engine.run_epochs(2);

  engine.configure_workers(std::vector<core::WorkerSpec>(4));  // scale out
  std::printf("scaled out to 4 GPUs...\n");
  engine.run_epochs(2);

  engine.configure_workers(std::vector<core::WorkerSpec>(1));  // scale in
  std::printf("scaled in to 1 GPU...\n");
  engine.run_epochs(1);

  // ---- Reference: DDP on a fixed 4 GPUs ----------------------------------
  ddp::DDPConfig dcfg;
  dcfg.workload = workload;
  dcfg.world_size = 4;
  dcfg.batch_per_worker = 8;
  dcfg.seed = seed;
  ddp::DDPTrainer reference(dcfg, *wd.train, wd.augment);
  reference.run_epochs(5);

  const auto acc = models::evaluate(engine.model_for_eval(0), *wd.test, 32, 10);
  std::printf("\nvalidation accuracy after 5 epochs: %.1f%%\n",
              100.0 * acc.overall);
  std::printf("EasyScale params digest: %016llx\n",
              static_cast<unsigned long long>(engine.params_digest()));
  std::printf("DDP-4GPU  params digest: %016llx\n",
              static_cast<unsigned long long>(reference.params_digest()));
  if (engine.params_digest() == reference.params_digest()) {
    std::printf("=> bitwise IDENTICAL: elasticity did not change training.\n");
    return 0;
  }
  std::printf("=> MISMATCH (this is a bug)\n");
  return 1;
}
