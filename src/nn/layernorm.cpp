#include "nn/layernorm.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/reduce.hpp"

namespace easyscale::nn {

LayerNorm::LayerNorm(std::string name, std::int64_t dim, float eps)
    : dim_(dim),
      eps_(eps),
      gamma_(name + ".weight", Shape{dim}),
      beta_(name + ".bias", Shape{dim}) {}

void LayerNorm::register_parameters(ParameterStore& store) {
  store.register_parameter(&gamma_);
  store.register_parameter(&beta_);
}

void LayerNorm::init_weights(rng::Philox& /*init*/) {
  gamma_.value.fill(1.0f);
  beta_.value.zero();
}

Tensor LayerNorm::forward(StepContext& ctx, const Tensor& x) {
  const std::int64_t rows = x.numel() / dim_;
  ES_CHECK(rows * dim_ == x.numel(), "LayerNorm: bad size");
  cached_shape_ = x.shape();
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor(Shape{rows});
  Tensor out(x.shape());
  // Rows normalize independently — owner-computes over rows.  The
  // normalize-and-affine loop is a pure per-index map, so the vector body
  // (norm_affine_vec) is bitwise-equal to the scalar loop; the mean and
  // variance reductions keep their scalar accumulation order everywhere.
  const kernels::SimdOps& ops = ctx.ex().simd_ops();
  kernels::parallel_for(
      ctx.ex(), rows,
      std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, dim_)),
      [&](int /*chunk*/, std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          std::span<const float> row(x.raw() + r * dim_,
                                     static_cast<std::size_t>(dim_));
          const float mean =
              kernels::reduce_sum(ctx.ex(), row) / static_cast<float>(dim_);
          float var = 0.0f;
          for (std::int64_t i = 0; i < dim_; ++i) {
            const float d = row[static_cast<std::size_t>(i)] - mean;
            var += d * d;
          }
          var /= static_cast<float>(dim_);
          const float inv_std = 1.0f / std::sqrt(var + eps_);
          cached_inv_std_.at(r) = inv_std;
          if (ops.norm_affine_vec != nullptr) {
            ops.norm_affine_vec(row.data(), gamma_.value.raw(),
                                beta_.value.raw(), mean, inv_std,
                                cached_xhat_.raw() + r * dim_,
                                out.raw() + r * dim_, dim_);
            continue;
          }
          for (std::int64_t i = 0; i < dim_; ++i) {
            const float xh =
                (row[static_cast<std::size_t>(i)] - mean) * inv_std;
            cached_xhat_.at(r * dim_ + i) = xh;
            out.at(r * dim_ + i) = gamma_.value.at(i) * xh + beta_.value.at(i);
          }
        }
      });
  return out;
}

Tensor LayerNorm::backward(StepContext& ctx, const Tensor& grad_out) {
  const std::int64_t rows = grad_out.numel() / dim_;
  Tensor grad_in(cached_shape_);
  // Two owner-computes passes: grad_in rows are independent; gamma/beta
  // gradients accumulate per column in ascending-row order, exactly as the
  // single sequential loop did.
  kernels::parallel_for(
      ctx.ex(), rows,
      std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, dim_)),
      [&](int /*chunk*/, std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          float sum_dy = 0.0f, sum_dyxh = 0.0f;
          for (std::int64_t i = 0; i < dim_; ++i) {
            const float dy = grad_out.at(r * dim_ + i) * gamma_.value.at(i);
            sum_dy += dy;
            sum_dyxh += dy * cached_xhat_.at(r * dim_ + i);
          }
          const float inv_std = cached_inv_std_.at(r);
          const float m = static_cast<float>(dim_);
          for (std::int64_t i = 0; i < dim_; ++i) {
            const float dy = grad_out.at(r * dim_ + i) * gamma_.value.at(i);
            const float xh = cached_xhat_.at(r * dim_ + i);
            grad_in.at(r * dim_ + i) =
                inv_std * (dy - sum_dy / m - xh * sum_dyxh / m);
          }
        }
      });
  kernels::parallel_for(
      ctx.ex(), dim_,
      std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, rows)),
      [&](int /*chunk*/, std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t r = 0; r < rows; ++r) {
            const float xh = cached_xhat_.at(r * dim_ + i);
            gamma_.grad.at(i) += grad_out.at(r * dim_ + i) * xh;
            beta_.grad.at(i) += grad_out.at(r * dim_ + i);
          }
        }
      });
  ctx.mark_ready(gamma_.id);
  ctx.mark_ready(beta_.id);
  return grad_in;
}

}  // namespace easyscale::nn
