// Cluster-service throughput bench: the indexed calendar queue against the
// binary-heap reference ("old queue") on identical multi-tenant traces,
// plus the headline scale leg — a 100k-GPU, 7-simulated-day trace that must
// complete in seconds with a bitwise-identical replay.
//
// Emits BENCH_cluster.json: simulated-events/second for both queues on
// each leg, per-SLA-tier JCT percentiles, and the digest cross-checks
// (calendar == heap, run == replay).  Exit code is the self-check.
//
// Flags:
//   --smoke            run only the small leg (the CI cluster-smoke job)
//   --check-baseline F also compare the small leg's calendar events/s
//                      against the checked-in baseline F; fail on a >20%
//                      regression (guards the event core against rot)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/calendar_queue.hpp"
#include "cluster/metrics.hpp"
#include "cluster/service.hpp"
#include "cluster/tenant.hpp"
#include "rng/philox.hpp"

namespace {

using namespace easyscale;
using cluster::QueueKind;

constexpr double kMaxRegression = 0.20;  // vs the checked-in baseline

struct LegSpec {
  const char* name;
  std::int64_t tenants = 0;
  std::int64_t gpus = 0;  // split 1/2 V100, 1/4 P100, 1/4 T4
  double days = 0.0;
  double peak_jobs_per_tenant_day = 0.0;
  std::int64_t max_steps = 20000;
};

struct LegResult {
  LegSpec spec;
  std::int64_t jobs = 0;
  std::int64_t events = 0;
  std::int64_t preemptions = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  double wall_calendar_s = 0.0;
  double wall_heap_s = 0.0;
  double fairness = 0.0;
  double jct_p50[3] = {0.0, 0.0, 0.0};
  double jct_p99[3] = {0.0, 0.0, 0.0};
  double attainment[3] = {0.0, 0.0, 0.0};
  bool digest_match = false;  // calendar == heap
  bool replay_match = false;  // calendar == calendar rerun
  [[nodiscard]] double events_per_s_calendar() const {
    return wall_calendar_s > 0.0
               ? static_cast<double>(events) / wall_calendar_s
               : 0.0;
  }
  [[nodiscard]] double events_per_s_heap() const {
    return wall_heap_s > 0.0 ? static_cast<double>(events) / wall_heap_s
                             : 0.0;
  }
};

cluster::ClusterMetrics run_leg(const std::vector<cluster::Tenant>& tenants,
                                const std::vector<cluster::ClusterJob>& jobs,
                                const cluster::ClusterServiceConfig& base,
                                QueueKind queue, double* wall_s) {
  cluster::ClusterServiceConfig cfg = base;
  cfg.queue = queue;
  cluster::ClusterService service(tenants, jobs, cfg);
  cluster::ClusterMetrics metrics;
  const double wall =
      bench::time_seconds([&] { metrics = service.run(); });
  if (wall_s != nullptr) *wall_s = wall;
  return metrics;
}

LegResult run_spec(const LegSpec& spec) {
  const auto tenants =
      cluster::make_tenants(spec.tenants, spec.gpus, /*seed=*/23);
  cluster::TenantTraceConfig tcfg;
  tcfg.seed = 23;
  tcfg.horizon_s = spec.days * 86400.0;
  tcfg.peak_jobs_per_tenant_day = spec.peak_jobs_per_tenant_day;
  tcfg.max_steps = spec.max_steps;
  const auto jobs = cluster::tenant_trace(tenants, tcfg);

  cluster::ClusterServiceConfig cfg;
  cfg.capacity = {spec.gpus / 2, spec.gpus / 4, spec.gpus / 4};
  // A sprinkling of adversity so the capacity machinery is on the hot path.
  cfg.failures.push_back({tcfg.horizon_s * 0.25, 0, tcfg.horizon_s * 0.1});
  cfg.quarantines.push_back({tcfg.horizon_s * 0.4, 1});
  cfg.link_degrades.push_back(
      {tcfg.horizon_s * 0.5, tcfg.horizon_s * 0.2, 2, spec.gpus / 16, 0.3});

  LegResult r;
  r.spec = spec;
  r.jobs = static_cast<std::int64_t>(jobs.size());
  const auto cal = run_leg(tenants, jobs, cfg, QueueKind::kCalendar,
                           &r.wall_calendar_s);
  const auto heap =
      run_leg(tenants, jobs, cfg, QueueKind::kHeap, &r.wall_heap_s);
  const auto replay = run_leg(tenants, jobs, cfg, QueueKind::kCalendar,
                              nullptr);
  r.events = cal.events_processed;
  r.preemptions = cal.preemptions;
  r.cache_hits = cal.plan_cache_hits;
  r.cache_misses = cal.plan_cache_misses;
  r.fairness = cal.fairness;
  for (int t = 0; t < 3; ++t) {
    r.jct_p50[t] = cal.per_tier[t].jct_p50;
    r.jct_p99[t] = cal.per_tier[t].jct_p99;
    r.attainment[t] = cal.per_tier[t].attainment();
  }
  r.digest_match = cal.schedule_digest == heap.schedule_digest &&
                   cal.to_json() == heap.to_json();
  r.replay_match = cal.schedule_digest == replay.schedule_digest &&
                   cal.to_json() == replay.to_json();
  return r;
}

void print_leg(const LegResult& r) {
  std::printf("%-8s %7lld gpus=%-7lld jobs=%-6lld events=%-8lld "
              "cal=%.3fs heap=%.3fs ev/s cal=%.0f heap=%.0f "
              "speedup=%.2fx digest=%s replay=%s\n",
              r.spec.name, static_cast<long long>(r.spec.tenants),
              static_cast<long long>(r.spec.gpus),
              static_cast<long long>(r.jobs),
              static_cast<long long>(r.events), r.wall_calendar_s,
              r.wall_heap_s, r.events_per_s_calendar(),
              r.events_per_s_heap(),
              r.wall_calendar_s > 0.0 ? r.wall_heap_s / r.wall_calendar_s
                                      : 0.0,
              r.digest_match ? "MATCH" : "MISMATCH",
              r.replay_match ? "MATCH" : "MISMATCH");
  for (int t = 0; t < 3; ++t) {
    std::printf("  %-10s jct_p50=%9.1fs jct_p99=%9.1fs sla=%.3f\n",
                cluster::tier_name(static_cast<cluster::SlaTier>(t)),
                r.jct_p50[t], r.jct_p99[t], r.attainment[t]);
  }
}

// --- queue core (the before/after of the calendar-queue replacement) ------

struct CoreResult {
  std::int64_t pending = 0;
  std::int64_t ops = 0;
  double calendar_ops_per_s = 0.0;
  double heap_ops_per_s = 0.0;
};

/// Classic hold-model: keep `pending` events in steady state and run
/// pop-then-push transactions.  This is the queue pattern the service
/// generates (each finish prediction replaces a popped event), isolated
/// from the allocator so the O(1)-vs-O(log n) gap is what's measured.
template <typename Queue>
double hold_ops_per_s(Queue& q, std::int64_t pending, std::int64_t ops) {
  rng::Philox gen(7);
  double t = 0.0;
  for (std::int64_t i = 0; i < pending; ++i) {
    q.push(gen.next_double() * 1000.0, i);
  }
  std::int64_t sink = 0;
  const double wall = bench::time_seconds([&] {
    for (std::int64_t i = 0; i < ops; ++i) {
      auto e = q.pop();
      sink ^= e.payload;
      t = e.t;
      q.push(t + gen.next_double() * 2.0, e.payload);
    }
  });
  // Keep `sink` alive so the loop cannot be elided.
  if (sink == 0x5A5A5A5A5A5A5A5All) std::printf("~\n");
  return wall > 0.0 ? static_cast<double>(ops) / wall : 0.0;
}

CoreResult run_core(std::int64_t pending) {
  CoreResult r;
  r.pending = pending;
  r.ops = std::max<std::int64_t>(1000000, 4 * pending);
  cluster::CalendarQueue<std::int64_t> cal(1000.0 /
                                           static_cast<double>(pending));
  cluster::HeapEventQueue<std::int64_t> heap;
  r.calendar_ops_per_s = hold_ops_per_s(cal, pending, r.ops);
  r.heap_ops_per_s = hold_ops_per_s(heap, pending, r.ops);
  return r;
}

/// Pull "smoke_events_per_s": <v> out of the baseline file (fixed format,
/// written by this binary's own artifact — no JSON parser needed).
[[nodiscard]] double read_baseline(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return -1.0;
  double value = -1.0;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    const char* key = std::strstr(line, "\"smoke_events_per_s\"");
    if (key != nullptr) {
      std::sscanf(key, "\"smoke_events_per_s\": %lf", &value);
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke_only = false;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke_only = true;
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  bench::banner("Cluster",
                "multi-tenant cluster service: calendar queue vs heap "
                "(simulated events/second; see docs/SCHEDULER.md)");
  if (!bench::guard_release_build("BENCH_cluster.json")) return 2;
  // Strict parse: a malformed thread override dies here, loudly naming the
  // variable, instead of silently running single-threaded.
  std::optional<std::int64_t> threads;
  try {
    threads = env_int64("EASYSCALE_THREADS", 1, 256);
  } catch (const Error& e) {
    std::printf("ERROR: %s\n", e.what());
    return 2;
  }
  std::printf("build_type=%s EASYSCALE_THREADS=%s\n", bench::build_type(),
              threads.has_value() ? std::to_string(*threads).c_str()
                                  : "(default)");

  // The small leg is hot (demand ~ capacity) so preemption, SLA tiers and
  // the fair-share path are all on the clock; the scale leg is the
  // headline: 100k GPUs, a simulated week, tens of thousands of jobs.
  std::vector<LegSpec> specs;
  specs.push_back({"smoke", 32, 128, 2.0, 120.0, 20000});
  if (!smoke_only) {
    specs.push_back({"scale", 128, 100000, 7.0, 40.0, 50000});
  }

  std::vector<LegResult> legs;
  bool ok = true;
  for (const auto& spec : specs) {
    legs.push_back(run_spec(spec));
    const LegResult& r = legs.back();
    print_leg(r);
    if (!r.digest_match || !r.replay_match) ok = false;
    if (r.preemptions <= 0 && std::strcmp(spec.name, "smoke") == 0) {
      std::printf("ERROR: smoke leg exercised no preemption\n");
      ok = false;
    }
    // The calendar queue must not lose to the heap by more than noise.
    // Service legs run tens of milliseconds, so the tolerance is loose —
    // a degenerated queue is 10x+ slower, not 1.5x; the isolated hold-model
    // gate below is the sensitive one.
    if (r.wall_calendar_s > 1.5 * r.wall_heap_s) {
      std::printf("ERROR: calendar queue slower than the heap on %s "
                  "(%.3fs vs %.3fs)\n",
                  spec.name, r.wall_calendar_s, r.wall_heap_s);
      ok = false;
    }
  }

  // The queue core in isolation: the replacement must beat the old queue,
  // and the gap must widen with the pending-event count.
  std::vector<std::int64_t> core_sizes = {4096};
  if (!smoke_only) {
    core_sizes.push_back(65536);
    core_sizes.push_back(1048576);
  }
  std::vector<CoreResult> cores;
  for (const auto pending : core_sizes) {
    cores.push_back(run_core(pending));
    const CoreResult& c = cores.back();
    std::printf("core     pending=%-8lld ops=%-8lld cal=%.0f ops/s "
                "heap=%.0f ops/s speedup=%.2fx\n",
                static_cast<long long>(c.pending),
                static_cast<long long>(c.ops), c.calendar_ops_per_s,
                c.heap_ops_per_s,
                c.heap_ops_per_s > 0.0
                    ? c.calendar_ops_per_s / c.heap_ops_per_s
                    : 0.0);
  }
  // The replacement must beat the old queue decisively on at least one
  // hold-model leg (the small legs show ~2x and are the most stable
  // measurement on a noisy machine).
  double best_core_speedup = 0.0;
  for (const auto& c : cores) {
    if (c.heap_ops_per_s > 0.0) {
      best_core_speedup =
          std::max(best_core_speedup, c.calendar_ops_per_s / c.heap_ops_per_s);
    }
  }
  if (best_core_speedup <= 1.0) {
    std::printf("ERROR: calendar queue does not beat the heap on any "
                "hold-model leg (best %.2fx)\n", best_core_speedup);
    ok = false;
  }

  if (baseline_path != nullptr) {
    const double baseline = read_baseline(baseline_path);
    const double measured = legs.front().events_per_s_calendar();
    if (baseline <= 0.0) {
      std::printf("ERROR: cannot read baseline %s\n", baseline_path);
      ok = false;
    } else if (measured < (1.0 - kMaxRegression) * baseline) {
      std::printf("ERROR: events/s regression: %.0f vs baseline %.0f "
                  "(>%.0f%% drop)\n",
                  measured, baseline, kMaxRegression * 100.0);
      ok = false;
    } else {
      std::printf("baseline check OK: %.0f events/s vs baseline %.0f\n",
                  measured, baseline);
    }
  }

  std::FILE* f = std::fopen("BENCH_cluster.json", "w");
  if (f == nullptr) {
    std::printf("ERROR: cannot write BENCH_cluster.json\n");
    return 2;
  }
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"build_type\": \"%s\",\n", bench::build_type());
  std::fprintf(f, "    \"easyscale_threads\": \"%s\",\n",
               threads.has_value() ? std::to_string(*threads).c_str()
                                   : "default");
  std::fprintf(f, "    \"smoke_events_per_s\": %.1f\n",
               legs.front().events_per_s_calendar());
  std::fprintf(f, "  },\n  \"legs\": [\n");
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const LegResult& r = legs[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"tenants\": %lld, \"gpus\": %lld, "
        "\"days\": %.1f, \"jobs\": %lld, \"events\": %lld, "
        "\"preemptions\": %lld, \"plan_cache_hits\": %lld, "
        "\"plan_cache_misses\": %lld, \"fairness\": %.6f,\n"
        "     \"wall_calendar_s\": %.6f, \"wall_heap_s\": %.6f, "
        "\"events_per_s_calendar\": %.1f, \"events_per_s_heap\": %.1f,\n"
        "     \"jct_p50_s\": [%.3f, %.3f, %.3f], "
        "\"jct_p99_s\": [%.3f, %.3f, %.3f], "
        "\"sla_attainment\": [%.6f, %.6f, %.6f],\n"
        "     \"digest_match\": %s, \"replay_match\": %s}%s\n",
        r.spec.name, static_cast<long long>(r.spec.tenants),
        static_cast<long long>(r.spec.gpus), r.spec.days,
        static_cast<long long>(r.jobs), static_cast<long long>(r.events),
        static_cast<long long>(r.preemptions),
        static_cast<long long>(r.cache_hits),
        static_cast<long long>(r.cache_misses), r.fairness,
        r.wall_calendar_s, r.wall_heap_s, r.events_per_s_calendar(),
        r.events_per_s_heap(), r.jct_p50[0], r.jct_p50[1], r.jct_p50[2],
        r.jct_p99[0], r.jct_p99[1], r.jct_p99[2], r.attainment[0],
        r.attainment[1], r.attainment[2],
        r.digest_match ? "true" : "false",
        r.replay_match ? "true" : "false",
        i + 1 < legs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"queue_core\": [\n");
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const CoreResult& c = cores[i];
    std::fprintf(f,
                 "    {\"pending\": %lld, \"ops\": %lld, "
                 "\"calendar_ops_per_s\": %.1f, \"heap_ops_per_s\": %.1f}%s\n",
                 static_cast<long long>(c.pending),
                 static_cast<long long>(c.ops), c.calendar_ops_per_s,
                 c.heap_ops_per_s, i + 1 < cores.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"pass\": %s\n}\n", ok ? "true" : "false");
  std::fclose(f);
  bench::note(ok ? "cluster bench PASSED (BENCH_cluster.json written)"
                 : "cluster bench FAILED (see BENCH_cluster.json)");
  return ok ? 0 : 1;
}
