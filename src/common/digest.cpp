#include "common/digest.hpp"

#include <cstdio>

namespace easyscale {

std::string Digest::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash_));
  return std::string(buf);
}

std::uint64_t digest_floats(std::span<const float> values) {
  Digest d;
  d.update(values);
  return d.value();
}

std::uint64_t digest_bytes(std::span<const std::uint8_t> bytes) {
  Digest d;
  d.update(bytes);
  return d.value();
}

}  // namespace easyscale
