// Multi-head self-attention over [N, T, D] inputs (BERT / Electra / Swin
// mini models).  Attention lowers entirely to GEMM + softmax, both of which
// have cheap hardware-agnostic variants — which is why the paper's
// attention-based workloads show ~0 D2 overhead (Fig 12).
#pragma once

#include "nn/linear.hpp"

namespace easyscale::nn {

class MultiheadSelfAttention : public Layer {
 public:
  MultiheadSelfAttention(std::string name, std::int64_t dim,
                         std::int64_t heads);

  Tensor forward(StepContext& ctx, const Tensor& x) override;
  Tensor backward(StepContext& ctx, const Tensor& grad_out) override;
  void register_parameters(ParameterStore& store) override;
  void init_weights(rng::Philox& init) override;
  [[nodiscard]] const char* kind() const override {
    return "MultiheadSelfAttention";
  }

 private:
  std::int64_t dim_;
  std::int64_t heads_;
  std::int64_t head_dim_;
  Linear wq_, wk_, wv_, wo_;
  // Forward caches.
  Tensor cached_q_, cached_k_, cached_v_;  // [N*T, D]
  Tensor cached_probs_;                    // [N, heads, T, T]
  Shape cached_in_shape_;
};

}  // namespace easyscale::nn
