// Fig 12: the cost of accuracy-consistency.  Per-iteration training time of
// each Table-1 workload under
//   Baseline        — vendor-fastest kernels (stock framework),
//   EasyScale-D1    — deterministic device-native kernels,
//   EasyScale-D1+D2 — hardware-agnostic canonical kernels,
// on each simulated device type, normalized to the baseline.
//
// Paper shape: D1 ~ free everywhere; D1+D2 ~ free for NeuMF / Bert /
// Electra / SwinTransformer and expensive (avg 236%) for the conv models
// whose vendor kernels D2 must turn off.
#include <cstdio>

#include "bench_util.hpp"
#include "ddp/trainer.hpp"
#include "kernels/device.hpp"
#include "models/datasets.hpp"

namespace {

using namespace easyscale;

constexpr std::int64_t kSteps = 8;

double time_policy(const std::string& workload, kernels::DeviceType device,
                   kernels::KernelPolicy policy,
                   const models::WorkloadData& wd) {
  ddp::DDPConfig cfg;
  cfg.workload = workload;
  cfg.world_size = 1;
  cfg.batch_per_worker = 8;
  cfg.policy = policy;
  cfg.devices = {device};
  ddp::DDPTrainer t(cfg, *wd.train, wd.augment);
  t.run_steps(2);  // warm-up
  return bench::time_seconds([&] { t.run_steps(kSteps); }) /
         static_cast<double>(kSteps);
}

}  // namespace

int main() {
  bench::banner("Fig 12",
                "per-iteration time normalized to the vendor-fastest "
                "baseline, per device type (V100 / P100 / T4)");
  std::printf("%-18s %22s %22s\n", "workload", "EasyScale-D1",
              "EasyScale-D1+D2");
  std::printf("%-18s %7s %7s %7s %7s %7s %7s\n", "", "V100", "P100", "T4",
              "V100", "P100", "T4");
  constexpr kernels::DeviceType kDevices[] = {kernels::DeviceType::kV100,
                                              kernels::DeviceType::kP100,
                                              kernels::DeviceType::kT4};
  double conv_d2_sum = 0.0;
  int conv_d2_n = 0;
  for (const auto& name : models::workload_names()) {
    auto wd = models::make_dataset_for(name, 256, 32, 42);
    double d1[3], d2[3];
    for (int d = 0; d < 3; ++d) {
      const double base = time_policy(name, kDevices[d],
                                      kernels::KernelPolicy::kFastest, wd);
      d1[d] = time_policy(name, kDevices[d],
                          kernels::KernelPolicy::kDeterministic, wd) /
              base;
      d2[d] = time_policy(name, kDevices[d],
                          kernels::KernelPolicy::kHardwareAgnostic, wd) /
              base;
    }
    std::printf("%-18s %6.2fx %6.2fx %6.2fx %6.2fx %6.2fx %6.2fx\n",
                name.c_str(), d1[0], d1[1], d1[2], d2[0], d2[1], d2[2]);
    const auto workload = models::make_workload(name);
    if (workload->uses_vendor_tuned_kernels()) {
      for (double v : d2) {
        conv_d2_sum += v;
        ++conv_d2_n;
      }
    }
  }
  std::printf("\nconv-model average D2 cost: %.0f%% of baseline "
              "(paper: 236%% average)\n",
              100.0 * conv_d2_sum / conv_d2_n);
  bench::note(
      "expected: D1 ~1.0x everywhere; D1+D2 ~1.0x for NeuMF/Bert/Electra/"
      "Swin and several-fold for ShuffleNet/ResNet/VGG/YOLO.");
  return 0;
}
