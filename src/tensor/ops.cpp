#include "tensor/ops.hpp"

#include <cmath>

namespace easyscale::tensor {

namespace {

/// Elementwise grain: chunks below this are not worth a dispatch.
constexpr std::int64_t kElementwiseGrain = 4096;

void check_same_shape(const Tensor& a, const Tensor& b) {
  ES_CHECK(a.shape() == b.shape(), "shape mismatch " << a.shape().to_string()
                                                     << " vs "
                                                     << b.shape().to_string());
}

}  // namespace

void add(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b);
  check_same_shape(a, out);
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) out.at(i) = a.at(i) + b.at(i);
}

void add_(Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) a.at(i) += b.at(i);
}

void axpy_(Tensor& a, float alpha, const Tensor& b) {
  check_same_shape(a, b);
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) a.at(i) += alpha * b.at(i);
}

void sub(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b);
  check_same_shape(a, out);
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) out.at(i) = a.at(i) - b.at(i);
}

void mul(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b);
  check_same_shape(a, out);
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) out.at(i) = a.at(i) * b.at(i);
}

void scale_(Tensor& a, float s) {
  for (auto& v : a.data()) v *= s;
}

void add(const kernels::ExecContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out) {
  check_same_shape(a, b);
  check_same_shape(a, out);
  kernels::parallel_for(ctx, a.numel(), kElementwiseGrain,
                        [&](int /*chunk*/, std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            out.at(i) = a.at(i) + b.at(i);
                          }
                        });
}

void add_(const kernels::ExecContext& ctx, Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  kernels::parallel_for(ctx, a.numel(), kElementwiseGrain,
                        [&](int /*chunk*/, std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            a.at(i) += b.at(i);
                          }
                        });
}

void axpy_(const kernels::ExecContext& ctx, Tensor& a, float alpha,
           const Tensor& b) {
  check_same_shape(a, b);
  kernels::parallel_for(ctx, a.numel(), kElementwiseGrain,
                        [&](int /*chunk*/, std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            a.at(i) += alpha * b.at(i);
                          }
                        });
}

void sub(const kernels::ExecContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out) {
  check_same_shape(a, b);
  check_same_shape(a, out);
  kernels::parallel_for(ctx, a.numel(), kElementwiseGrain,
                        [&](int /*chunk*/, std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            out.at(i) = a.at(i) - b.at(i);
                          }
                        });
}

void mul(const kernels::ExecContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out) {
  check_same_shape(a, b);
  check_same_shape(a, out);
  kernels::parallel_for(ctx, a.numel(), kElementwiseGrain,
                        [&](int /*chunk*/, std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            out.at(i) = a.at(i) * b.at(i);
                          }
                        });
}

void scale_(const kernels::ExecContext& ctx, Tensor& a, float s) {
  std::span<float> data = a.data();
  kernels::parallel_for(ctx, a.numel(), kElementwiseGrain,
                        [&](int /*chunk*/, std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            data[static_cast<std::size_t>(i)] *= s;
                          }
                        });
}

float sum_sequential(std::span<const float> values) {
  float acc = 0.0f;
  for (float v : values) acc += v;
  return acc;
}

float max_value(const Tensor& a) {
  ES_CHECK(a.numel() > 0, "max over empty tensor");
  float m = a.at(0);
  for (std::int64_t i = 1; i < a.numel(); ++i) m = std::max(m, a.at(i));
  return m;
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  ES_CHECK(a.shape().rank() == 2, "argmax_rows expects a 2-D tensor");
  const auto rows = a.shape().dim(0);
  const auto cols = a.shape().dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t best = 0;
    float best_v = a.at(r * cols);
    for (std::int64_t c = 1; c < cols; ++c) {
      const float v = a.at(r * cols + c);
      if (v > best_v) {
        best_v = v;
        best = c;
      }
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

Tensor transpose2d(const Tensor& a) {
  ES_CHECK(a.shape().rank() == 2, "transpose2d expects a 2-D tensor");
  const auto rows = a.shape().dim(0);
  const auto cols = a.shape().dim(1);
  Tensor out(Shape{cols, rows});
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      out.at(c * rows + r) = a.at(r * cols + c);
    }
  }
  return out;
}

float l2_norm(const Tensor& a) {
  float acc = 0.0f;
  for (float v : a.data()) acc += v * v;
  return std::sqrt(acc);
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(a.at(i) - b.at(i)));
  }
  return m;
}

}  // namespace easyscale::tensor
