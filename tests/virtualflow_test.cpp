// VirtualFlow baseline: gradient accumulation gives elasticity but not
// bitwise consistency — the gap EasyScale's EST contexts close.
#include <gtest/gtest.h>

#include "baselines/virtualflow.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"

namespace easyscale::baselines {
namespace {

VirtualFlowConfig config(const std::string& workload = "ResNet18") {
  VirtualFlowConfig cfg;
  cfg.workload = workload;
  cfg.virtual_nodes = 4;
  cfg.batch_per_virtual = 4;
  cfg.seed = 42;
  return cfg;
}

std::uint64_t run(std::int64_t world, std::int64_t steps,
                  const std::string& workload = "ResNet18") {
  auto wd = models::make_dataset_for(workload, 128, 16, 42);
  VirtualFlowTrainer t(config(workload), *wd.train, wd.augment);
  t.reconfigure(world);
  t.run_steps(steps);
  return t.params_digest();
}

TEST(VirtualFlow, ReproducibleAtFixedWorld) {
  EXPECT_EQ(run(2, 5), run(2, 5));
}

TEST(VirtualFlow, MatchesDDPWhenOneVirtualPerWorker) {
  // With world == virtual_nodes there is no accumulation and the physical
  // streams coincide with the per-virtual streams: this IS plain DDP.
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  ddp::DDPConfig dcfg;
  dcfg.workload = "ResNet18";
  dcfg.world_size = 4;
  dcfg.batch_per_worker = 4;
  dcfg.seed = 42;
  ddp::DDPTrainer reference(dcfg, *wd.train, wd.augment);
  reference.run_steps(4);
  EXPECT_EQ(run(4, 4), reference.params_digest());
}

TEST(VirtualFlow, DivergesFromDDPWhenAccumulating) {
  // world < virtual_nodes: the dropout stream and BN buffers are shared by
  // the accumulated micro-batches, so training is bitwise different from
  // the designed 4-worker run — unlike EasyScale.
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  ddp::DDPConfig dcfg;
  dcfg.workload = "ResNet18";
  dcfg.world_size = 4;
  dcfg.batch_per_worker = 4;
  dcfg.seed = 42;
  ddp::DDPTrainer reference(dcfg, *wd.train, wd.augment);
  reference.run_steps(4);
  EXPECT_NE(run(2, 4), reference.params_digest());
  EXPECT_NE(run(1, 4), reference.params_digest());
}

TEST(VirtualFlow, DifferentWorldsDiverge) {
  EXPECT_NE(run(1, 4), run(2, 4));
}

TEST(VirtualFlow, SamplePartitionMatchesVirtualNodes) {
  // Loss histories track the last virtual node's micro-batch: it is the
  // same data at any world size; only the model state drifts.
  auto wd = models::make_dataset_for("VGG19", 128, 16, 42);
  VirtualFlowTrainer a(config("VGG19"), *wd.train, wd.augment);
  a.reconfigure(4);
  a.run_steps(1);
  VirtualFlowTrainer b(config("VGG19"), *wd.train, wd.augment);
  b.reconfigure(2);
  b.run_steps(1);
  // First step starts from identical weights; VGG19 has dropout only in
  // the classifier head, so differences stay small but the data is shared.
  EXPECT_EQ(a.loss_history().size(), 1u);
  EXPECT_EQ(b.loss_history().size(), 1u);
}

TEST(VirtualFlow, ParametersCarryAcrossRescale) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  VirtualFlowTrainer t(config(), *wd.train, wd.augment);
  t.reconfigure(4);
  t.run_steps(3);
  const auto before = t.params_digest();
  t.reconfigure(2);
  EXPECT_EQ(t.params_digest(), before);
}

TEST(VirtualFlow, RejectsImpossibleWorlds) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  VirtualFlowTrainer t(config(), *wd.train, wd.augment);
  EXPECT_THROW(t.reconfigure(0), Error);
  EXPECT_THROW(t.reconfigure(5), Error);
}

}  // namespace
}  // namespace easyscale::baselines
