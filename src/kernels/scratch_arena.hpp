// Per-context scratch buffers for kernel temporaries.
//
// gemm's B-pack, the gemm_tn/gemm_nt transpose materializations and conv's
// im2col column matrices used to be per-call heap allocations — pure churn
// on the training hot path.  Each ExecContext (one per physical worker)
// now owns a small slotted arena of grow-only buffers instead: after the
// first step every borrow is a pointer into memory that already fits.
//
// Contract: each slot has exactly one live user at a time.  The slot ids
// below encode the call graph (a kernel never borrows the slot of a kernel
// it can be nested inside), and the arena is only touched by the thread
// that owns the ExecContext — never from inside parallel_for chunk bodies.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace easyscale::kernels {

class ScratchArena {
 public:
  enum Slot : int {
    kGemmPackB = 0,     // gemm's transposed-B pack
    kGemmTranspose = 1, // gemm_tn's A^T / gemm_nt's B^T materialization
    kConvCols = 2,      // conv im2col column matrix
    kConvColsGrad = 3,  // conv backward d(cols)
    kNumSlots = 4,
  };

  /// Borrow `size` floats from `slot`.  Grows (never shrinks) the backing
  /// buffer; contents are unspecified on entry.
  [[nodiscard]] std::span<float> borrow(Slot slot, std::size_t size) {
    auto& buf = slots_[static_cast<std::size_t>(slot)];
    if (buf.size() < size) buf.resize(size);
    return std::span<float>(buf.data(), size);
  }

  /// Total bytes reserved across all slots — the quantity the
  /// no-allocation-growth test asserts is flat across training steps.
  [[nodiscard]] std::size_t reserved_bytes() const {
    std::size_t total = 0;
    for (const auto& buf : slots_) total += buf.capacity() * sizeof(float);
    return total;
  }

 private:
  std::array<std::vector<float>, kNumSlots> slots_;
};

}  // namespace easyscale::kernels
