#include "models/cv_models.hpp"
#include "models/neumf.hpp"
#include "models/nlp_models.hpp"
#include "models/workload.hpp"
#include "models/yolo.hpp"

namespace easyscale::models {

std::unique_ptr<Workload> make_workload(const std::string& name) {
  if (name == "ShuffleNetv2") return std::make_unique<ShuffleNetV2Mini>();
  if (name == "ResNet50") return std::make_unique<ResNet50Mini>();
  if (name == "ResNet18") return std::make_unique<ResNet18Mini>();
  if (name == "VGG19") return std::make_unique<VGG19Mini>();
  if (name == "YOLOv3") return std::make_unique<YoloV3Mini>();
  if (name == "NeuMF") return std::make_unique<NeuMF>();
  if (name == "Bert") return make_bert_mini();
  if (name == "Electra") return make_electra_mini();
  if (name == "SwinTransformer") return std::make_unique<SwinMini>();
  ES_THROW("unknown workload: " << name);
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> kNames = {
      "ShuffleNetv2", "ResNet50", "VGG19",   "YOLOv3",
      "NeuMF",        "Bert",     "Electra", "SwinTransformer"};
  return kNames;
}

}  // namespace easyscale::models
