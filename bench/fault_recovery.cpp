// Fault recovery goodput (§2.1 / §5.3): the same NeuMF job supervised
// through Philox-sampled fault schedules of increasing intensity, under
// EasyScale's elastic scale-in and under the gang-restart baseline.
//
// For each failure rate the run executes REAL training (checkpoint,
// rollback, EST remap), so the elastic column also certifies bitwise
// consistency: every surviving run must end with the fault-free digest.
//
//   fault_recovery [--sdc-only]        run only the silent-data-corruption
//                                      section (a CI smoke entry point)
//   fault_recovery [--recovery-only]   run only the peer-vs-disk recovery
//                                      section (emits BENCH_recovery.json)
//   fault_recovery [--check-baseline <path>]
//                                      additionally gate the recovery rows
//                                      against a checked-in baseline
//   fault_recovery [--controller-only] run only the replicated-control-
//                                      plane section: failover latency and
//                                      decisions/s under leader crashes
//                                      and partitions, cross-checked
//                                      against the sim failover model
//                                      (emits BENCH_controller.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/checkpoint_manager.hpp"
#include "core/engine.hpp"
#include "fault/controller.hpp"
#include "fault/injector.hpp"
#include "fault/supervisor.hpp"
#include "kernels/device.hpp"
#include "models/datasets.hpp"
#include "models/profile.hpp"
#include "models/workload.hpp"
#include "sim/failover_model.hpp"
#include "sim/recovery_model.hpp"
#include "trace/generators.hpp"

namespace {

using namespace easyscale;

core::EasyScaleConfig job_config() {
  core::EasyScaleConfig cfg;
  cfg.workload = "NeuMF";
  cfg.num_ests = 4;
  cfg.batch_per_est = 4;
  cfg.seed = 42;
  return cfg;
}

struct Row {
  double fault_rate = 0.0;
  fault::GoodputStats stats;
  bool bitwise_ok = false;
};

Row run_policy(models::WorkloadData& wd, fault::RecoveryPolicy policy,
               double fault_rate, std::int64_t steps, std::uint64_t clean) {
  core::EasyScaleEngine engine(job_config(), *wd.train, wd.augment);
  core::CheckpointManager mgr("/tmp/es_bench_fault_recovery", 3);
  mgr.clear();
  fault::FaultPlanConfig pcfg;
  pcfg.seed = 0xFA017;
  pcfg.horizon_steps = steps;
  pcfg.crash_rate = fault_rate * 0.4;
  pcfg.revocation_rate = fault_rate * 0.4;
  pcfg.torn_checkpoint_rate = fault_rate * 0.1;
  pcfg.straggler_rate = fault_rate * 0.1;
  fault::SupervisorConfig scfg;
  scfg.policy = policy;
  scfg.checkpoint_every = 4;
  fault::FaultSupervisor sup(engine, mgr,
                             fault::FaultInjector::from_config(pcfg), scfg);
  Row row;
  row.fault_rate = fault_rate;
  row.stats = sup.run_to(steps, 4);
  row.bitwise_ok = !row.stats.failed && engine.params_digest() == clean;
  mgr.clear();
  return row;
}

void print_row(const char* policy, const Row& r) {
  std::printf("%8s %8.2f %6lld %6lld %6lld %6lld %9.3f %10.4f %8s\n", policy,
              r.fault_rate, static_cast<long long>(r.stats.faults_seen),
              static_cast<long long>(r.stats.recoveries),
              static_cast<long long>(r.stats.scale_ins),
              static_cast<long long>(r.stats.lost_steps),
              r.stats.goodput_fraction(), r.stats.steps_per_second(),
              r.stats.failed ? "FAILED" : (r.bitwise_ok ? "exact" : "-"));
}

struct RecoveryRow {
  std::string workload;
  double step_s = 0.0;
  sim::RecoveryModelResult result;
};

/// Peer-quorum vs disk-only recovery under the per-GPU MTBF trace (the
/// PR 1 Fig-14 failure process: 64-GPU cluster, mtbf=5e4s/GPU, repair=600s,
/// seed 13), one row per Table-1 workload.  Each workload's step time comes
/// from the V100 throughput profile, its snapshot size from the memory
/// profile.  The self-check requires peer recovery to lose STRICTLY fewer
/// steps than disk walk-back for every workload.
bool run_recovery_section(const char* baseline_path) {
  std::printf("\npeer-replicated vs disk-only recovery (MTBF trace)\n");
  trace::FailureTraceConfig tcfg;
  tcfg.cluster = {32, 16, 16};  // the PR 1 Fig-14 cluster (V100, P100, T4)
  const auto failures = trace::gpu_failure_trace(tcfg);
  std::printf("trace: %zu failures over %.0fs (mtbf=%.0fs/GPU)\n",
              failures.size(), tcfg.horizon_s, tcfg.mtbf_per_gpu_s);
  std::printf("%-18s %8s %9s %9s %10s %10s %8s %8s\n", "workload", "step_s",
              "lost_disk", "lost_peer", "recov_disk", "recov_peer", "peer",
              "fallbk");
  std::vector<RecoveryRow> rows;
  bool ok = true;
  for (const auto& name : models::workload_names()) {
    RecoveryRow row;
    row.workload = name;
    row.step_s =
        1.0 / models::profiled_throughput(name, kernels::DeviceType::kV100);
    sim::RecoveryModelConfig mcfg;
    mcfg.step_s = row.step_s;
    mcfg.snapshot_bytes = static_cast<std::int64_t>(
        models::profiled_memory_gb(name) * 0.5 * 1024.0 * 1024.0 * 1024.0);
    row.result = sim::model_recovery(failures, mcfg);
    const bool strictly_fewer =
        row.result.lost_steps_peer < row.result.lost_steps_disk;
    ok = ok && strictly_fewer;
    std::printf("%-18s %8.3f %9lld %9lld %10.1f %10.1f %8lld %8lld%s\n",
                row.workload.c_str(), row.step_s,
                static_cast<long long>(row.result.lost_steps_disk),
                static_cast<long long>(row.result.lost_steps_peer),
                row.result.recovery_s_disk, row.result.recovery_s_peer,
                static_cast<long long>(row.result.peer_recoveries),
                static_cast<long long>(row.result.disk_fallbacks),
                strictly_fewer ? "" : "  NOT-FEWER");
    rows.push_back(row);
  }

  std::FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f == nullptr) {
    std::printf("ERROR: cannot write BENCH_recovery.json\n");
    return false;
  }
  std::fprintf(f, "{\n  \"build_type\": \"%s\",\n", bench::build_type());
  std::fprintf(f, "  \"trace_failures\": %zu,\n", failures.size());
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"step_s\": %.6f, "
        "\"lost_steps_disk\": %lld, \"lost_steps_peer\": %lld, "
        "\"recovery_s_disk\": %.3f, \"recovery_s_peer\": %.3f, "
        "\"peer_recoveries\": %lld, \"disk_fallbacks\": %lld}%s\n",
        r.workload.c_str(), r.step_s,
        static_cast<long long>(r.result.lost_steps_disk),
        static_cast<long long>(r.result.lost_steps_peer),
        r.result.recovery_s_disk, r.result.recovery_s_peer,
        static_cast<long long>(r.result.peer_recoveries),
        static_cast<long long>(r.result.disk_fallbacks),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  bench::note("per-workload lost steps and recovery latency written to "
              "BENCH_recovery.json");

  if (baseline_path != nullptr) {
    // Gate the deterministic integers against the checked-in baseline: the
    // model, trace and profiles are all seeded, so any drift is a real
    // behaviour change that must be reviewed (and the baseline re-pinned).
    std::FILE* b = std::fopen(baseline_path, "rb");
    if (b == nullptr) {
      std::printf("ERROR: cannot read baseline %s\n", baseline_path);
      return false;
    }
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), b)) > 0) text.append(buf, n);
    std::fclose(b);
    for (const auto& r : rows) {
      const std::string key = "\"workload\": \"" + r.workload + "\"";
      const char* at = std::strstr(text.c_str(), key.c_str());
      long long want_disk = -1;
      long long want_peer = -1;
      if (at == nullptr ||
          std::sscanf(std::strstr(at, "\"lost_steps_disk\":"),
                      "\"lost_steps_disk\": %lld", &want_disk) != 1 ||
          std::sscanf(std::strstr(at, "\"lost_steps_peer\":"),
                      "\"lost_steps_peer\": %lld", &want_peer) != 1) {
        std::printf("BASELINE: no row for %s in %s\n", r.workload.c_str(),
                    baseline_path);
        ok = false;
        continue;
      }
      if (want_disk != r.result.lost_steps_disk ||
          want_peer != r.result.lost_steps_peer) {
        std::printf(
            "BASELINE: %s drifted: lost_disk %lld (baseline %lld), "
            "lost_peer %lld (baseline %lld)\n",
            r.workload.c_str(),
            static_cast<long long>(r.result.lost_steps_disk), want_disk,
            static_cast<long long>(r.result.lost_steps_peer), want_peer);
        ok = false;
      }
    }
    if (ok) bench::note("recovery rows match the checked-in baseline");
  }
  return ok;
}

/// Replicated control plane under attack: one supervised NeuMF run per
/// replica count, with f leader/follower crashes and partitions on the
/// schedule.  Reports failover latency and committed decisions per second
/// of controller-fabric time, cross-checked against sim::model_failover.
/// Self-checks: the stormy digest must equal the controller-quiet digest,
/// at least one real failover must land, and every measured failover must
/// cost at least the model's detection floor (a failover cheaper than the
/// heartbeat deadline would mean the cost model is broken).
bool run_controller_section() {
  std::printf("\nreplicated control plane (leader crashes + partitions)\n");
  constexpr std::int64_t kSteps = 32;
  auto wd = models::make_dataset_for("NeuMF", 128, 16, 42);

  struct CtrlRow {
    int replicas = 0;
    bool stormy = false;
    fault::GoodputStats stats;
    fault::ControllerStats ctrl;
    std::uint64_t digest = 0;
    std::uint64_t content_tail = 0;
  };
  const auto run = [&](int replicas, bool stormy) {
    core::EasyScaleEngine engine(job_config(), *wd.train, wd.augment);
    core::CheckpointManager mgr("/tmp/es_bench_fault_recovery", 4);
    mgr.clear();
    std::vector<fault::FaultEvent> events;
    if (stormy) {
      const int f = (replicas - 1) / 2;
      // f crashes, the first one always the bootstrap leader, spread
      // across the run with a partition before and after each.
      for (int k = 0; k < f; ++k) {
        events.push_back(
            fault::FaultEvent{.kind = fault::FaultKind::kControllerPartition,
                              .step = 3 + 8 * k,
                              .payload_seed = 0x51D5u + static_cast<std::uint64_t>(k)});
        events.push_back(
            fault::FaultEvent{.kind = fault::FaultKind::kControllerCrash,
                              .step = 4 + 8 * k,
                              .worker = k == 0 ? 0 : 2 * k});
      }
    }
    fault::SupervisorConfig scfg;
    scfg.policy = fault::RecoveryPolicy::kElasticScaleIn;
    scfg.checkpoint_every = 2;
    scfg.peer_replicas = 1;
    scfg.peer_snapshot_every = 2;
    scfg.controller_replicas = replicas;
    fault::FaultSupervisor sup(engine, mgr,
                               fault::FaultInjector(std::move(events)), scfg);
    CtrlRow row;
    row.replicas = replicas;
    row.stormy = stormy;
    row.stats = sup.run_to(kSteps, 4);
    row.ctrl = sup.control_plane()->stats();
    row.digest = engine.params_digest();
    row.content_tail = sup.control_plane()->log().content_tail();
    mgr.clear();
    return row;
  };

  std::printf("%9s %6s %9s %9s %6s %9s %11s %11s %8s\n", "replicas", "mode",
              "decisions", "failovers", "elect", "ctrl_s", "failover_ms",
              "decis/s", "result");
  bool ok = true;
  std::vector<CtrlRow> rows;
  for (const int replicas : {3, 5}) {
    const CtrlRow quiet = run(replicas, /*stormy=*/false);
    const CtrlRow stormy = run(replicas, /*stormy=*/true);
    const bool bitwise = !quiet.stats.failed && !stormy.stats.failed &&
                         stormy.digest == quiet.digest &&
                         stormy.content_tail == quiet.content_tail;
    const bool failed_over = stormy.ctrl.failovers > 0;

    // Sim cross-check: the measured mean failover can never undercut the
    // model's detection floor (the heartbeat deadline).
    sim::FailoverModelConfig mcfg;
    mcfg.replicas = replicas;
    mcfg.log_entries = stormy.ctrl.decisions_committed;
    const auto model = sim::model_failover(mcfg);
    const double mean_failover_s =
        failed_over ? stormy.ctrl.failover_wall_s /
                          static_cast<double>(stormy.ctrl.failovers)
                    : 0.0;
    const bool floor_ok = !failed_over || mean_failover_s >= model.detect_s;
    ok = ok && bitwise && failed_over && floor_ok;

    for (const CtrlRow* r : {&quiet, &stormy}) {
      std::printf("%9d %6s %9lld %9lld %6lld %9.3f %11.2f %11.1f %8s\n",
                  r->replicas, r->stormy ? "storm" : "quiet",
                  static_cast<long long>(r->ctrl.decisions_committed),
                  static_cast<long long>(r->ctrl.failovers),
                  static_cast<long long>(r->ctrl.elections),
                  r->ctrl.virtual_time_s,
                  1e3 * (r->ctrl.failovers > 0
                             ? r->ctrl.failover_wall_s /
                                   static_cast<double>(r->ctrl.failovers)
                             : 0.0),
                  r->ctrl.decisions_per_second(),
                  r->stats.failed ? "FAILED" : (bitwise ? "exact" : "-"));
      rows.push_back(*r);
    }
    std::printf("%9s model: detect %.3fs + lease %.3fs + elect %.3fs + "
                "sync %.3fs = %.3fs per failover%s\n",
                "", model.detect_s, model.lease_wait_s, model.election_s,
                model.sync_s, model.total_s,
                floor_ok ? "" : "  MEASURED-UNDER-FLOOR");
  }

  std::FILE* f = std::fopen("BENCH_controller.json", "w");
  if (f == nullptr) {
    std::printf("ERROR: cannot write BENCH_controller.json\n");
    return false;
  }
  std::fprintf(f, "{\n  \"build_type\": \"%s\",\n  \"rows\": [\n",
               bench::build_type());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"replicas\": %d, \"mode\": \"%s\", \"decisions\": %lld, "
        "\"failovers\": %lld, \"controller_wall_s\": %.6f, "
        "\"failover_wall_s\": %.6f, \"decisions_per_second\": %.3f}%s\n",
        r.replicas, r.stormy ? "storm" : "quiet",
        static_cast<long long>(r.ctrl.decisions_committed),
        static_cast<long long>(r.ctrl.failovers), r.ctrl.virtual_time_s,
        r.ctrl.failover_wall_s, r.ctrl.decisions_per_second(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  bench::note("failover latency is controller-fabric virtual time: training "
              "bits never depend on it (the bitwise 'exact' column is the "
              "proof)");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool sdc_only = false;
  bool recovery_only = false;
  bool controller_only = false;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sdc-only") == 0) sdc_only = true;
    if (std::strcmp(argv[i], "--recovery-only") == 0) recovery_only = true;
    if (std::strcmp(argv[i], "--controller-only") == 0) controller_only = true;
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }
  if (controller_only) {
    bench::banner("Fault recovery (control plane)",
                  "failover latency and decisions/s of the replicated "
                  "controller under leader crashes and partitions");
    const bool ok = run_controller_section();
    bench::note(ok ? "controller bench PASSED (BENCH_controller.json written)"
                   : "controller bench FAILED (see BENCH_controller.json)");
    return ok ? 0 : 1;
  }
  if (recovery_only) {
    bench::banner("Fault recovery (peer replication)",
                  "lost steps and recovery latency: peer quorum vs disk "
                  "walk-back under the MTBF trace");
    const bool ok = run_recovery_section(baseline_path);
    bench::note(ok ? "recovery bench PASSED (BENCH_recovery.json written)"
                   : "recovery bench FAILED (see BENCH_recovery.json)");
    return ok ? 0 : 1;
  }
  bench::banner("Fault recovery (§2.1, §5.3)",
                "goodput vs failure rate: elastic scale-in vs gang restart");
  constexpr std::int64_t kSteps = 48;
  auto wd = models::make_dataset_for("NeuMF", 128, 16, 42);

  // Fault-free reference: the digest every elastic run must reproduce.
  std::uint64_t clean = 0;
  const double ref_s = bench::time_seconds([&] {
    core::EasyScaleEngine ref(job_config(), *wd.train, wd.augment);
    ref.configure_workers(std::vector<core::WorkerSpec>(4));
    ref.run_steps(kSteps);
    clean = ref.params_digest();
  });
  std::printf("fault-free run: %lld steps in %.2fs, digest %016llx\n\n",
              static_cast<long long>(kSteps), ref_s,
              static_cast<unsigned long long>(clean));

  if (!sdc_only) {
  std::printf("%8s %8s %6s %6s %6s %6s %9s %10s %8s\n", "policy", "rate",
              "faults", "recov", "scl_in", "lost", "goodput", "steps/s",
              "result");
  const double rates[] = {0.0, 0.05, 0.1, 0.2, 0.4};
  for (const double rate : rates) {
    const auto elastic = run_policy(wd, fault::RecoveryPolicy::kElasticScaleIn,
                                    rate, kSteps, clean);
    const auto gang = run_policy(wd, fault::RecoveryPolicy::kGangRestart, rate,
                                 kSteps, clean);
    print_row("elastic", elastic);
    print_row("gang", gang);
  }
  // --- Comm-fault schedule: in-collective faults under the failure-aware
  // fabric.  The elastic job routes gradient sync through the resilient
  // collective (transient faults absorbed in-flight, rank deaths rolled
  // back via checkpoint); the gang baseline treats every comm fault as a
  // full restart.  Recovered goodput vs gang-restart goodput is the §2.1
  // comparison at the link level.
  std::printf("\ncomm-fault schedule (resilient fabric vs gang restart)\n");
  std::printf("%8s %8s %6s %6s %6s %9s %9s %8s\n", "policy", "rate", "comm",
              "retry", "recov", "comm_s", "goodput", "result");
  auto run_comm = [&](fault::RecoveryPolicy policy, double rate) {
    auto ecfg = job_config();
    ecfg.resilient_comm = policy == fault::RecoveryPolicy::kElasticScaleIn;
    core::EasyScaleEngine engine(ecfg, *wd.train, wd.augment);
    core::CheckpointManager mgr("/tmp/es_bench_fault_recovery", 3);
    mgr.clear();
    fault::FaultPlanConfig pcfg;
    pcfg.seed = 0xFA017;
    pcfg.horizon_steps = kSteps;
    pcfg.chunk_drop_rate = rate * 0.5;
    pcfg.stalled_link_rate = rate * 0.3;
    pcfg.rank_death_rate = rate * 0.2;
    fault::SupervisorConfig scfg;
    scfg.policy = policy;
    scfg.checkpoint_every = 4;
    fault::FaultSupervisor sup(engine, mgr,
                               fault::FaultInjector::from_config(pcfg), scfg);
    Row row;
    row.fault_rate = rate;
    row.stats = sup.run_to(kSteps, 4);
    row.bitwise_ok = !row.stats.failed && engine.params_digest() == clean;
    mgr.clear();
    return row;
  };
  for (const double rate : {0.05, 0.1, 0.2}) {
    for (const auto policy : {fault::RecoveryPolicy::kElasticScaleIn,
                              fault::RecoveryPolicy::kGangRestart}) {
      const auto r = run_comm(policy, rate);
      std::printf(
          "%8s %8.2f %6lld %6lld %6lld %9.3f %9.3f %8s\n",
          policy == fault::RecoveryPolicy::kElasticScaleIn ? "elastic"
                                                           : "gang",
          r.fault_rate, static_cast<long long>(r.stats.comm_faults),
          static_cast<long long>(r.stats.comm_retries),
          static_cast<long long>(r.stats.recoveries),
          r.stats.comm_wall_s, r.stats.goodput_fraction(),
          r.stats.failed ? "FAILED" : (r.bitwise_ok ? "exact" : "-"));
    }
  }
  }  // !sdc_only

  // --- Silent-data-corruption schedule: sticky corrupt devices vs the
  // compute-integrity defense (witness + verified checkpoints + device
  // quarantine).  The defended job detects within one witness cadence,
  // quarantines, walks back to the last VERIFIED generation and ends
  // bitwise equal to the fault-free digest on the surviving devices; the
  // undefended job trains through the corruption and ends silently
  // poisoned (digest diverges).
  std::printf("\nsilent-data-corruption schedule (defended vs undefended)\n");
  std::printf("%10s %6s %6s %5s %6s %5s %8s %9s %9s %9s\n", "mode", "every",
              "rate", "sdc", "detect", "quar", "latency", "witness%",
              "goodput", "result");
  auto run_sdc = [&](bool defended, std::int64_t witness_every, double rate) {
    core::EasyScaleEngine engine(job_config(), *wd.train, wd.augment);
    core::CheckpointManager mgr("/tmp/es_bench_fault_recovery", 4);
    mgr.clear();
    fault::FaultPlanConfig pcfg;
    pcfg.seed = 0x5DC17;
    pcfg.horizon_steps = kSteps;
    pcfg.sdc_bitflip_rate = rate * 0.6;
    pcfg.sdc_perturb_rate = rate * 0.4;
    fault::SupervisorConfig scfg;
    scfg.policy = fault::RecoveryPolicy::kElasticScaleIn;
    scfg.checkpoint_every = 4;
    scfg.sdc_defense = defended;
    scfg.witness_every = witness_every;
    fault::FaultSupervisor sup(engine, mgr,
                               fault::FaultInjector::from_config(pcfg), scfg);
    Row row;
    row.fault_rate = rate;
    row.stats = sup.run_to(kSteps, 4);
    row.bitwise_ok = !row.stats.failed && engine.params_digest() == clean;
    mgr.clear();
    return row;
  };
  for (const double rate : {0.02, 0.05, 0.1}) {
    for (const std::int64_t every : {std::int64_t{1}, std::int64_t{2}}) {
      const auto r = run_sdc(/*defended=*/true, every, rate);
      const double latency =
          r.stats.sdc_detections > 0
              ? static_cast<double>(r.stats.sdc_detect_latency_steps) /
                    static_cast<double>(r.stats.sdc_detections)
              : 0.0;
      const double witness_pct =
          r.stats.total_wall_s > 0.0
              ? 100.0 * r.stats.witness_wall_s / r.stats.total_wall_s
              : 0.0;
      std::printf("%10s %6lld %6.2f %5lld %6lld %5lld %8.2f %9.2f %9.3f %9s\n",
                  "defended", static_cast<long long>(every), r.fault_rate,
                  static_cast<long long>(r.stats.sdc_events),
                  static_cast<long long>(r.stats.sdc_detections),
                  static_cast<long long>(r.stats.devices_quarantined), latency,
                  witness_pct, r.stats.goodput_fraction(),
                  r.stats.failed ? "FAILED" : (r.bitwise_ok ? "exact" : "-"));
    }
    const auto u = run_sdc(/*defended=*/false, 1, rate);
    std::printf("%10s %6s %6.2f %5lld %6lld %5lld %8s %9s %9.3f %9s\n",
                "undefended", "-", u.fault_rate,
                static_cast<long long>(u.stats.sdc_events),
                static_cast<long long>(u.stats.sdc_detections),
                static_cast<long long>(u.stats.devices_quarantined), "-", "-",
                u.stats.goodput_fraction(),
                u.stats.sdc_events == 0
                    ? (u.bitwise_ok ? "exact" : "-")
                    : (u.bitwise_ok ? "exact" : "POISONED"));
  }
  bench::note(
      "latency = average steps from a device turning corrupt to witness "
      "detection; witness% = verification overhead share of wall time");
  bench::note(
      "defended runs must end 'exact' (bitwise equal to fault-free); "
      "undefended runs with sdc > 0 end POISONED — the defense's point");

  if (!sdc_only) {
  bench::note(
      "goodput = fraction of simulated wall-clock spent on surviving steps "
      "(supervisor cost model, not host time)");
  bench::note(
      "'exact' = the recovered run's params digest equals the fault-free "
      "digest — EasyScale's consistent-accuracy claim under faults");
  bench::note(
      "gang restart pays a replacement wait per fault and fails after "
      "max_retries consecutive faults (§2.1 baseline)");
  if (!run_recovery_section(baseline_path)) return 1;
  }  // !sdc_only
  return 0;
}
