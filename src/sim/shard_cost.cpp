#include "sim/shard_cost.hpp"

#include "common/error.hpp"

namespace easyscale::sim {

namespace {
constexpr std::int64_t kFloatBytes = 4;
}  // namespace

std::int64_t owned_numel(const parallel::Plan& plan, int rank) {
  std::int64_t owned = 0;
  for (std::size_t c = 0; c < plan.chunks.size(); ++c) {
    if (plan.chunk_owner(c) == plan.shard_index(rank)) {
      owned += plan.chunks[c].end - plan.chunks[c].begin;
    }
  }
  return owned;
}

ShardStepCost shard_step_cost(const parallel::Plan& plan,
                              std::int64_t total_state_numel, int rank) {
  ES_CHECK(rank >= 0 && rank < plan.world_size,
           "rank " << rank << " outside world of " << plan.world_size);
  ES_CHECK(plan.total_numel == 0 ||
               total_state_numel % plan.total_numel == 0,
           "total_state_numel " << total_state_numel
                                << " is not a whole multiple of the "
                                   "parameter space "
                                << plan.total_numel);
  const std::int64_t n = plan.total_numel;
  const std::int64_t w = plan.world_size;
  const std::int64_t states_per_element =
      n > 0 ? total_state_numel / n : 0;

  ShardStepCost cost;
  cost.param_bytes = n * kFloatBytes;
  cost.grad_bytes = n * kFloatBytes;
  cost.state_bytes = plan.sharded()
                         ? states_per_element * owned_numel(plan, rank) *
                               kFloatBytes
                         : total_state_numel * kFloatBytes;
  // Ring wire volume per rank: the replicated all-reduce moves
  // 2·(W-1)/W · n; the sharded reduce-scatter + parameter all-gather each
  // move (W-1)/W · n — identical totals at every degree.
  cost.comm_bytes = w > 1 ? 2 * (w - 1) * n * kFloatBytes / w : 0;
  return cost;
}

}  // namespace easyscale::sim
