#include "sched/intra_job.hpp"

#include "common/log.hpp"

namespace easyscale::sched {

IntraJobScheduler::IntraJobScheduler(core::EasyScaleEngine& engine,
                                     Companion companion, bool allow_heter)
    : engine_(&engine),
      companion_(std::move(companion)),
      allow_heter_(allow_heter) {}

void IntraJobScheduler::reconfigure_engine(const Plan& plan) {
  ES_CHECK(plan.valid(), "cannot apply an invalid plan");
  std::vector<core::WorkerSpec> specs;
  for (int t = 0; t < kNumDeviceTypes; ++t) {
    for (std::int64_t i = 0; i < plan.gpus[static_cast<std::size_t>(t)];
         ++i) {
      specs.push_back(core::WorkerSpec{static_cast<DeviceType>(t)});
    }
  }
  // EST ranks are dealt contiguously following the plan's per-GPU counts.
  std::vector<std::vector<std::int64_t>> assignment(specs.size());
  std::int64_t next = 0;
  for (std::size_t g = 0; g < specs.size(); ++g) {
    for (std::int64_t k = 0; k < plan.ests[g]; ++k) {
      assignment[g].push_back(next++);
    }
  }
  ES_CHECK(next == companion_.max_p(), "plan does not place every EST");
  engine_->configure_workers(specs, assignment);
}

bool IntraJobScheduler::apply_best_plan(const GpuVector& available) {
  const Plan plan = companion_.best_plan(available, allow_heter_);
  if (!plan.valid()) return false;
  apply_plan(plan);
  return true;
}

std::vector<Companion::Proposal> IntraJobScheduler::make_proposals(
    const GpuVector& spare, std::size_t top_k) const {
  return companion_.proposals(current_, spare, allow_heter_, top_k);
}

void IntraJobScheduler::apply_plan(const Plan& plan) {
  reconfigure_engine(plan);
  previous_ = current_;
  current_ = plan;
  ES_LOG_DEBUG("intra-job scheduler applied plan with "
               << total(plan.gpus) << " GPU(s), est tp " << plan.throughput);
}

bool IntraJobScheduler::report_throughput(double observed_mbps) {
  companion_.report_throughput(current_, observed_mbps);
  const bool scaled_out =
      previous_.valid() && total(current_.gpus) > total(previous_.gpus);
  if (scaled_out && previous_observed_ > 0.0 &&
      observed_mbps < previous_observed_) {
    // Role-3 fallback: more GPUs made things slower — release them.
    ES_LOG_INFO("intra-job scheduler falling back after slowdown ("
                << observed_mbps << " < " << previous_observed_ << " mb/s)");
    const Plan back = previous_;
    reconfigure_engine(back);
    current_ = back;
    previous_ = Plan{};
    return true;
  }
  previous_observed_ = observed_mbps;
  return false;
}

bool IntraJobScheduler::rebalance_stragglers(double threshold_s) {
  const auto stalls = engine_->comm_stall_per_worker();
  if (stalls.size() < 2) return false;  // nothing to move between
  auto assignment = engine_->current_assignment();
  std::size_t best = 0;
  std::size_t worst = stalls.size();  // sentinel: none above threshold
  for (std::size_t w = 0; w < stalls.size(); ++w) {
    if (stalls[w] < stalls[best]) best = w;  // ties keep the lowest index
    if (stalls[w] > threshold_s && assignment[w].size() > 1 &&
        (worst == stalls.size() || stalls[w] > stalls[worst])) {
      worst = w;
    }
  }
  if (worst == stalls.size() || worst == best) return false;
  const std::int64_t est = assignment[worst].back();
  assignment[worst].pop_back();
  assignment[best].push_back(est);
  ES_LOG_INFO("rebalancing EST " << est << " off stalled worker " << worst
                                 << " (" << stalls[worst] << "s stall) onto "
                                 << best);
  engine_->configure_workers(engine_->current_worker_specs(),
                             std::move(assignment));
  if (current_.valid() && current_.ests.size() == stalls.size()) {
    --current_.ests[worst];
    ++current_.ests[best];
  }
  return true;
}

bool IntraJobScheduler::quarantine_worker(std::int64_t slot) {
  auto specs = engine_->current_worker_specs();
  auto assignment = engine_->current_assignment();
  if (slot < 0 || slot >= static_cast<std::int64_t>(specs.size()) ||
      specs.size() < 2) {
    return false;
  }
  const auto s = static_cast<std::size_t>(slot);
  const std::vector<std::int64_t> orphans = assignment[s];
  blocklist_.push_back(specs[s]);
  specs.erase(specs.begin() + slot);
  assignment.erase(assignment.begin() + slot);
  // Deal the condemned worker's ESTs to the least-loaded survivors (lowest
  // index wins ties, keeping the remap deterministic).
  for (const std::int64_t est : orphans) {
    std::size_t target = 0;
    for (std::size_t w = 1; w < assignment.size(); ++w) {
      if (assignment[w].size() < assignment[target].size()) target = w;
    }
    assignment[target].push_back(est);
  }
  ES_LOG_INFO("quarantining worker " << slot << ": " << orphans.size()
                                     << " EST(s) remapped onto "
                                     << specs.size() << " survivor(s)");
  engine_->configure_workers(specs, std::move(assignment));
  // The running plan no longer matches the worker set; drop it so the next
  // apply_best_plan starts from the quarantined capacity.
  previous_ = Plan{};
  current_ = Plan{};
  return true;
}

int IntraJobScheduler::apply_quarantine_decisions(
    const fault::DecisionLog& log) {
  // Only entries BEHIND the cursor are new; the cursor then jumps to the
  // log's end, so replaying the same committed log (e.g. after a controller
  // failover handed a follower the full history) applies nothing twice.
  int vacated = 0;
  const auto& records = log.records();
  for (std::size_t i = static_cast<std::size_t>(quarantine_cursor_);
       i < records.size(); ++i) {
    const auto& rec = records[i];
    if (rec.kind != fault::DecisionKind::kQuarantine) continue;
    // arg1 carries the condemned worker slot (arg0 is the device id, kept
    // for the cluster ledger).  A slot that cannot be vacated any more —
    // the membership already moved past it — is skipped, not an error:
    // the decision was applied by whoever committed it.
    if (quarantine_worker(rec.arg1)) ++vacated;
  }
  quarantine_cursor_ = static_cast<std::int64_t>(records.size());
  return vacated;
}

}  // namespace easyscale::sched
