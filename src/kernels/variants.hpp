// Kernel variant and policy enums, split out of exec_context.hpp so the
// SIMD dispatch layer (kernels/simd.hpp) can name them without pulling in
// the full ExecContext (which itself carries the chosen SimdBackend).
//
// A "variant" is a committed floating-point accumulation order.  §3.3 of
// the paper identifies hardware-specific kernel implementations as a
// nondeterminism source; here each device type's kernel is modeled as a
// distinct association of the same sum, so switching device types changes
// bits exactly the way real vendor kernels do — and pinning one variant
// (D2) restores bitwise identity across devices.
#pragma once

namespace easyscale::kernels {

enum class KernelPolicy : int {
  kFastest = 0,
  kDeterministic = 1,
  kHardwareAgnostic = 2,
};

/// GEMM kernel variants.  The number of interleaved accumulators decides
/// both the FP association order (bitwise-different results) and the
/// vectorization the compiler can apply (wider = faster) — mirroring how
/// real vendor kernels trade determinism for tuned throughput.
enum class GemmVariant : int {
  kSequential = 0,     // canonical single accumulator (D2 kernel; slow)
  kInterleaved2 = 1,   // T4-native
  kInterleaved4 = 2,   // P100-native
  kInterleaved8 = 3,   // V100-native (widest vectorization)
  kBlocked8 = 4,       // autotuner alternative: k-blocked partial sums
};

/// Reduction kernel variants, same idea for sum-reductions.
enum class ReduceVariant : int {
  kSequential = 0,
  kPairwise64 = 1,   // V100-native tree reduction, leaf width 64
  kPairwise128 = 2,  // P100-native
  kPairwise256 = 3,  // T4-native
};

/// Convolution implementation.  The "vendor" path lowers to im2col + the
/// device's native GEMM; the canonical path is a direct (slow) loop that is
/// identical on every device — this speed gap is the Fig-12 D2 overhead.
enum class ConvVariant : int {
  kDirectCanonical = 0,
  kIm2colNative = 1,
};

/// Kernel family of a completed entry-point call, for post-op observers.
enum class KernelFamily : int {
  kGemm = 0,
  kConv = 1,
  kReduce = 2,
  kScatter = 3,
};

}  // namespace easyscale::kernels
