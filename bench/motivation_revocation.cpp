// §2.1 motivation: on a shared cluster with resource revocation, gang
// -scheduled Sync-SGD jobs fail whenever ANY of their GPUs is revoked, so
// failures concentrate in large jobs (paper: jobs requesting >8 GPUs are
// 61.7% of revocation failures; 1-GPU jobs only 5.3%).  Elastic EasyScale
// jobs scale in instead and never fail (§5.3: 362 preemptions, 0 failures).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "rng/philox.hpp"

namespace {

using namespace easyscale;

struct SizeClass {
  std::int64_t gpus;
  double job_fraction;  // of submitted jobs
};

// Size mix loosely follows Philly: most jobs small, a heavy multi-GPU tail.
constexpr SizeClass kClasses[] = {
    {1, 0.30}, {2, 0.25}, {4, 0.20}, {8, 0.15}, {16, 0.10}};

}  // namespace

int main() {
  bench::banner("Motivation (§2.1)",
                "training failures under resource revocation, gang vs "
                "elastic");
  rng::Philox gen(2021);
  constexpr int kJobs = 20000;
  constexpr double kRevokeProbPerGpuHour = 0.004;
  constexpr double kJobHours = 6.0;

  double failures_total = 0.0;
  std::vector<double> failures_by_class(std::size(kClasses), 0.0);
  std::vector<double> jobs_by_class(std::size(kClasses), 0.0);
  for (int j = 0; j < kJobs; ++j) {
    // Sample a size class.
    double u = gen.next_double();
    std::size_t cls = 0;
    for (; cls + 1 < std::size(kClasses); ++cls) {
      if (u < kClasses[cls].job_fraction) break;
      u -= kClasses[cls].job_fraction;
    }
    jobs_by_class[cls] += 1.0;
    // Gang job fails if any of its GPUs is revoked during its runtime.
    const double p_gpu = kRevokeProbPerGpuHour * kJobHours;
    bool failed = false;
    for (std::int64_t g = 0; g < kClasses[cls].gpus; ++g) {
      if (gen.next_double() < p_gpu) failed = true;
    }
    if (failed) {
      failures_by_class[cls] += 1.0;
      failures_total += 1.0;
    }
  }
  std::printf("%10s %10s %14s %18s\n", "gpus", "jobs%", "job_fail_rate",
              "share_of_failures");
  double one_share = 0.0;
  for (std::size_t c = 0; c < std::size(kClasses); ++c) {
    const double share = failures_by_class[c] / failures_total;
    if (kClasses[c].gpus == 1) one_share = share;
    std::printf("%10lld %9.0f%% %13.1f%% %17.1f%%\n",
                static_cast<long long>(kClasses[c].gpus),
                100.0 * jobs_by_class[c] / kJobs,
                100.0 * failures_by_class[c] /
                    std::max(1.0, jobs_by_class[c]),
                100.0 * share);
  }
  double ge8_share = 0.0;
  for (std::size_t c = 0; c < std::size(kClasses); ++c) {
    if (kClasses[c].gpus >= 8) {
      ge8_share += failures_by_class[c] / failures_total;
    }
  }
  std::printf("\njobs requesting >=8 GPUs: %.1f%% of all revocation failures "
              "(paper: 61.7%%)\n",
              100.0 * ge8_share);
  std::printf("jobs requesting 1 GPU:    %.1f%% of all revocation failures "
              "(paper: 5.3%%)\n",
              100.0 * one_share);
  std::printf("elastic EasyScale jobs under the same revocations: 0 failures "
              "— each revocation is a scale-in (checkpoint + remap ESTs), "
              "paper §5.3.\n");
  return 0;
}
