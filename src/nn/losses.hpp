// Loss heads.  Each returns a scalar loss (mean over the batch) and the
// gradient of that loss w.r.t. its logits.  Batch-mean reductions use a
// fixed sequential order — losses are tiny, so no kernel variants here.
#pragma once

#include "autograd/step_context.hpp"
#include "tensor/tensor.hpp"

namespace easyscale::nn {

/// Softmax + negative log-likelihood over [N, C] logits.
class SoftmaxCrossEntropy {
 public:
  /// Returns mean loss; caches softmax probabilities.
  float forward(autograd::StepContext& ctx, const tensor::Tensor& logits,
                const tensor::LongTensor& labels);

  /// d(mean loss)/d(logits).
  [[nodiscard]] tensor::Tensor backward() const;

  [[nodiscard]] const tensor::Tensor& probs() const { return probs_; }

 private:
  tensor::Tensor probs_;
  tensor::LongTensor labels_;
};

/// Binary cross-entropy on logits (NeuMF implicit feedback, YOLO
/// objectness).  Targets are floats in [0, 1].
class BCEWithLogits {
 public:
  float forward(autograd::StepContext& ctx, const tensor::Tensor& logits,
                const tensor::Tensor& targets);
  [[nodiscard]] tensor::Tensor backward() const;

 private:
  tensor::Tensor sigmoid_;
  tensor::Tensor targets_;
};

/// Mean squared error (YOLO box regression).
class MSELoss {
 public:
  float forward(autograd::StepContext& ctx, const tensor::Tensor& pred,
                const tensor::Tensor& target);
  [[nodiscard]] tensor::Tensor backward() const;

 private:
  tensor::Tensor diff_;
};

}  // namespace easyscale::nn
