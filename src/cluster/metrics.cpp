#include "cluster/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "common/error.hpp"

namespace easyscale::cluster {

double percentile(std::vector<double> sample, double p) {
  ES_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sample.size())));
  return sample[rank > 0 ? rank - 1 : 0];
}

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string ClusterMetrics::to_json(double wall_s) const {
  std::string j;
  j += "{\n";
  append(j, "  \"makespan_s\": %.9f,\n", makespan);
  append(j, "  \"jobs_finished\": %lld,\n",
         static_cast<long long>(jobs_finished));
  append(j, "  \"preemptions\": %lld,\n", static_cast<long long>(preemptions));
  append(j, "  \"reallocations\": %lld,\n",
         static_cast<long long>(reallocations));
  append(j, "  \"events_processed\": %lld,\n",
         static_cast<long long>(events_processed));
  append(j, "  \"plan_cache_hits\": %lld,\n",
         static_cast<long long>(plan_cache_hits));
  append(j, "  \"plan_cache_misses\": %lld,\n",
         static_cast<long long>(plan_cache_misses));
  append(j, "  \"fairness_jain\": %.9f,\n", fairness);
  append(j, "  \"schedule_digest\": \"%016llx\",\n",
         static_cast<unsigned long long>(schedule_digest));
  if (wall_s >= 0.0) {
    append(j, "  \"wall_s\": %.9f,\n", wall_s);
    append(j, "  \"events_per_second\": %.3f,\n",
           wall_s > 0.0 ? static_cast<double>(events_processed) / wall_s : 0.0);
  }
  j += "  \"tiers\": {\n";
  for (int t = 0; t < 3; ++t) {
    const TierMetrics& m = per_tier[t];
    append(j,
           "    \"%s\": {\"finished\": %lld, \"sla_attainment\": %.9f, "
           "\"jct_p50_s\": %.9f, \"jct_p90_s\": %.9f, \"jct_p99_s\": %.9f}%s\n",
           tier_name(static_cast<SlaTier>(t)),
           static_cast<long long>(m.finished), m.attainment(), m.jct_p50,
           m.jct_p90, m.jct_p99, t < 2 ? "," : "");
  }
  j += "  },\n  \"tenants\": [\n";
  for (std::size_t i = 0; i < per_tenant.size(); ++i) {
    const TenantMetrics& m = per_tenant[i];
    append(j,
           "    {\"tenant\": %lld, \"tier\": \"%s\", \"finished\": %lld, "
           "\"gpu_seconds\": %.9f, \"avg_jct_s\": %.9f}%s\n",
           static_cast<long long>(m.tenant), tier_name(m.tier),
           static_cast<long long>(m.finished), m.gpu_seconds,
           m.finished > 0 ? m.jct_sum / static_cast<double>(m.finished) : 0.0,
           i + 1 < per_tenant.size() ? "," : "");
  }
  j += "  ]\n}\n";
  return j;
}

}  // namespace easyscale::cluster
