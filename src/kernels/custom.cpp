#include "kernels/custom.hpp"

#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace easyscale::kernels {

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<std::pair<std::string, CustomDotFn>> entries;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

int register_custom_gemm(std::string name, CustomDotFn fn) {
  ES_CHECK(fn != nullptr, "custom kernel must be callable");
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.entries.emplace_back(std::move(name), std::move(fn));
  return static_cast<int>(r.entries.size());  // handles are 1-based
}

const CustomDotFn& custom_gemm(int handle) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  ES_CHECK(handle >= 1 && handle <= static_cast<int>(r.entries.size()),
           "unknown custom kernel handle " << handle);
  return r.entries[static_cast<std::size_t>(handle - 1)].second;
}

const std::string& custom_gemm_name(int handle) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  ES_CHECK(handle >= 1 && handle <= static_cast<int>(r.entries.size()),
           "unknown custom kernel handle " << handle);
  return r.entries[static_cast<std::size_t>(handle - 1)].first;
}

int num_custom_gemms() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return static_cast<int>(r.entries.size());
}

float kahan_dot(const float* x, const float* y, std::int64_t k) {
  float sum = 0.0f;
  float comp = 0.0f;  // running compensation for lost low-order bits
  for (std::int64_t i = 0; i < k; ++i) {
    const float term = x[i] * y[i] - comp;
    const float next = sum + term;
    comp = (next - sum) - term;
    sum = next;
  }
  return sum;
}

}  // namespace easyscale::kernels
