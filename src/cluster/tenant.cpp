#include "cluster/tenant.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "rng/philox.hpp"

namespace easyscale::cluster {

namespace {

/// Workload mix cycled through submissions (same population as the
/// Philly-like trace; conv models are D2-restricted, §3.3).
struct TraceWorkload {
  const char* name;
  bool allow_heter;
};
constexpr TraceWorkload kWorkloads[] = {
    {"ShuffleNetv2", false}, {"ResNet50", false},       {"VGG19", false},
    {"YOLOv3", false},       {"NeuMF", true},           {"Bert", true},
    {"Electra", true},       {"SwinTransformer", true},
};
constexpr std::int64_t kMaxPOptions[] = {2, 4, 8, 16};

[[nodiscard]] SlaTier parse_tier(const std::string& s) {
  if (s == "guaranteed") return SlaTier::kGuaranteed;
  if (s == "burst") return SlaTier::kBurst;
  if (s == "spot") return SlaTier::kSpot;
  ES_CHECK(false, "unknown SLA tier '" << s << "'");
  return SlaTier::kSpot;
}

}  // namespace

const char* tier_name(SlaTier tier) {
  switch (tier) {
    case SlaTier::kGuaranteed: return "guaranteed";
    case SlaTier::kBurst: return "burst";
    case SlaTier::kSpot: return "spot";
  }
  return "?";
}

std::vector<Tenant> make_tenants(std::int64_t num_tenants,
                                 std::int64_t cluster_gpus,
                                 std::uint64_t seed) {
  ES_CHECK(num_tenants > 0, "need at least one tenant");
  ES_CHECK(cluster_gpus > 0, "cluster must have GPUs");
  rng::Philox gen(seed);
  std::vector<Tenant> tenants;
  tenants.reserve(static_cast<std::size_t>(num_tenants));
  // Tier mix of a production fleet: a few big guaranteed tenants, a broad
  // burst middle class, and a spot tail.  Quotas sum to ~60% of the
  // cluster so surplus capacity exists for burst/spot to compete over.
  const double quota_pool = 0.6 * static_cast<double>(cluster_gpus);
  double weight_sum = 0.0;
  std::vector<double> raw_weights;
  for (std::int64_t i = 0; i < num_tenants; ++i) {
    // Zipf-ish size: tenant rank r gets weight 1/(r+1), shuffled by seed.
    raw_weights.push_back(1.0 / (1.0 + gen.next_double() * 9.0));
    weight_sum += raw_weights.back();
  }
  for (std::int64_t i = 0; i < num_tenants; ++i) {
    Tenant t;
    t.id = i;
    t.name = "tenant-" + std::to_string(i);
    t.tier = i % 3 == 0 ? SlaTier::kGuaranteed
                        : (i % 3 == 1 ? SlaTier::kBurst : SlaTier::kSpot);
    t.weight = raw_weights[static_cast<std::size_t>(i)];
    if (t.tier != SlaTier::kSpot) {
      t.quota_gpus = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(quota_pool * t.weight / weight_sum));
    }
    tenants.push_back(std::move(t));
  }
  return tenants;
}

std::vector<ClusterJob> tenant_trace(const std::vector<Tenant>& tenants,
                                     const TenantTraceConfig& cfg) {
  ES_CHECK(!tenants.empty(), "tenant_trace needs tenants");
  ES_CHECK(cfg.horizon_s > 0.0, "horizon must be positive");
  ES_CHECK(cfg.peak_jobs_per_tenant_day > 0.0, "arrival rate must be positive");

  // The Fig-1 diurnal curve, normalized to [0, 1] as a thinning envelope:
  // submissions are dense where serving traffic (people) is awake.
  trace::ServingLoadConfig serving = cfg.serving;
  serving.minutes = std::max<std::int64_t>(
      1440, static_cast<std::int64_t>(cfg.horizon_s / 60.0) + 1);
  const auto curve = trace::serving_load_curve(serving);
  std::int64_t peak = 1;
  for (auto v : curve) peak = std::max(peak, v);

  // Per-tenant streams are independently seeded, so generation order (and
  // thread count) cannot change the draw sequence of any stream.
  std::vector<std::vector<ClusterJob>> per_tenant(tenants.size());
  const int ways =
      cfg.threads > 0 ? cfg.threads : ComputePool::env_default_threads();
  ComputePool::global().parallel_for(
      ways, static_cast<std::int64_t>(tenants.size()), 1,
      [&](int /*chunk*/, std::int64_t begin, std::int64_t end) {
        for (std::int64_t ti = begin; ti < end; ++ti) {
          const Tenant& tenant = tenants[static_cast<std::size_t>(ti)];
          rng::Philox gen(cfg.seed ^
                          (0x9E3779B97F4A7C15ull *
                           static_cast<std::uint64_t>(tenant.id + 1)));
          auto& out = per_tenant[static_cast<std::size_t>(ti)];
          // Thinned Poisson: candidates at the peak rate, each kept with
          // probability curve(t)/peak.
          const double peak_rate_s =
              cfg.peak_jobs_per_tenant_day / 86400.0;
          double t = 0.0;
          for (;;) {
            t += -std::log(1.0 - gen.next_double()) / peak_rate_s;
            if (t >= cfg.horizon_s) break;
            const auto minute = static_cast<std::size_t>(t / 60.0);
            const double keep =
                static_cast<double>(curve[std::min(minute, curve.size() - 1)]) /
                static_cast<double>(peak);
            if (gen.next_double() >= keep) continue;
            ClusterJob job;
            job.tenant = tenant.id;
            const auto& w = kWorkloads[gen.next_below(std::size(kWorkloads))];
            job.spec.workload = w.name;
            job.spec.allow_heter = w.allow_heter;
            job.spec.max_p =
                kMaxPOptions[gen.next_below(std::size(kMaxPOptions))];
            job.spec.arrival_s = t;
            const double steps = std::exp(cfg.runtime_mu +
                                          cfg.runtime_sigma * gen.next_normal());
            job.spec.total_steps = std::clamp(
                static_cast<std::int64_t>(steps), cfg.min_steps, cfg.max_steps);
            out.push_back(std::move(job));
          }
        }
      });

  std::vector<ClusterJob> jobs;
  for (auto& stream : per_tenant) {
    for (auto& j : stream) jobs.push_back(std::move(j));
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const ClusterJob& a, const ClusterJob& b) {
              if (a.spec.arrival_s != b.spec.arrival_s) {
                return a.spec.arrival_s < b.spec.arrival_s;
              }
              return a.tenant < b.tenant;
            });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].spec.id = static_cast<std::int64_t>(i);
  }
  return jobs;
}

void save_trace_tsv(const std::string& path,
                    const std::vector<Tenant>& tenants,
                    const std::vector<ClusterJob>& jobs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ES_CHECK(f != nullptr, "cannot write trace file " << path);
  std::fprintf(f, "# easyscale cluster trace v1\n");
  for (const auto& t : tenants) {
    std::fprintf(f, "tenant\t%lld\t%s\t%s\t%lld\t%.9f\n",
                 static_cast<long long>(t.id), t.name.c_str(),
                 tier_name(t.tier), static_cast<long long>(t.quota_gpus),
                 t.weight);
  }
  for (const auto& j : jobs) {
    std::fprintf(f, "job\t%lld\t%lld\t%s\t%lld\t%.9f\t%lld\t%d\n",
                 static_cast<long long>(j.spec.id),
                 static_cast<long long>(j.tenant), j.spec.workload.c_str(),
                 static_cast<long long>(j.spec.max_p), j.spec.arrival_s,
                 static_cast<long long>(j.spec.total_steps),
                 j.spec.allow_heter ? 1 : 0);
  }
  std::fclose(f);
}

std::vector<ClusterJob> load_trace_tsv(const std::string& path,
                                       std::vector<Tenant>* tenants) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  ES_CHECK(f != nullptr, "cannot read trace file " << path);
  std::vector<ClusterJob> jobs;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    char kind[16], name[128], tier[16];
    if (std::strncmp(line, "tenant\t", 7) == 0) {
      Tenant t;
      long long id = 0, quota = 0;
      const int n = std::sscanf(line, "%15s %lld %127s %15s %lld %lf", kind,
                                &id, name, tier, &quota, &t.weight);
      ES_CHECK(n == 6, "malformed tenant line in " << path);
      t.id = id;
      t.name = name;
      t.tier = parse_tier(tier);
      t.quota_gpus = quota;
      if (tenants != nullptr) tenants->push_back(std::move(t));
    } else if (std::strncmp(line, "job\t", 4) == 0) {
      ClusterJob j;
      long long id = 0, tenant = 0, max_p = 0, steps = 0;
      int heter = 0;
      const int n =
          std::sscanf(line, "%15s %lld %lld %127s %lld %lf %lld %d", kind, &id,
                      &tenant, name, &max_p, &j.spec.arrival_s, &steps, &heter);
      ES_CHECK(n == 8, "malformed job line in " << path);
      j.spec.id = id;
      j.tenant = tenant;
      j.spec.workload = name;
      j.spec.max_p = max_p;
      j.spec.total_steps = steps;
      j.spec.allow_heter = heter != 0;
      jobs.push_back(std::move(j));
    } else {
      ES_CHECK(false, "unknown record in trace file " << path);
    }
  }
  std::fclose(f);
  return jobs;
}

}  // namespace easyscale::cluster
