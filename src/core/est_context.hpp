// EasyScaleThread context — the minimal state that makes an EST resumable
// anywhere (§3.2).
//
// Deliberately tiny: the model parameters, optimizer state and activations
// are NOT here (shared / temporal); what remains is the per-virtual-worker
// implicit state: RNG streams and BatchNorm running buffers.  Gradients are
// swapped separately per mini-batch (GradientSet) and never cross a global
// step, so they are absent from checkpoints taken at step boundaries.
#pragma once

#include <vector>

#include "common/serialize.hpp"
#include "rng/stream_set.hpp"
#include "tensor/tensor.hpp"

namespace easyscale::core {

struct ESTContext {
  std::int64_t virtual_rank = 0;
  rng::StreamSetState model_streams;        // torch/cuda dropout streams etc.
  std::vector<tensor::Tensor> bn_buffers;   // BatchNorm running mean/var

  void save(ByteWriter& w) const {
    w.write(virtual_rank);
    model_streams.save(w);
    w.write<std::uint64_t>(bn_buffers.size());
    for (const auto& b : bn_buffers) b.save(w);
  }
  static ESTContext load(ByteReader& r) {
    ESTContext ctx;
    ctx.virtual_rank = r.read<std::int64_t>();
    ctx.model_streams = rng::StreamSetState::load(r);
    const auto n = r.read<std::uint64_t>();
    // A corrupt count must fail the structural check, not the allocator
    // (every serialized tensor occupies at least one byte).
    ES_CHECK(n <= r.remaining(),
             "BN buffer count " << n << " exceeds checkpoint payload");
    ctx.bn_buffers.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      ctx.bn_buffers.push_back(tensor::Tensor::load(r));
    }
    return ctx;
  }

  /// Bytes this context occupies when swapped (the Fig-11 "context" cost).
  [[nodiscard]] std::int64_t byte_size() const {
    std::int64_t bytes = static_cast<std::int64_t>(sizeof(ESTContext));
    for (const auto& b : bn_buffers) {
      bytes += b.numel() * static_cast<std::int64_t>(sizeof(float));
    }
    return bytes;
  }
};

}  // namespace easyscale::core
