#include "comm/peer.hpp"

#include "common/error.hpp"

namespace easyscale::comm {

namespace {

/// The shared retry loop: attempt a payload transfer from `src` to `dst`
/// until it arrives intact or attempts run out.  Every failed attempt is
/// drained — its elapsed time is charged, its bytes are discarded — and the
/// fabric clock advances through the backoff wait before the retry, so a
/// flaky link costs time but never correctness.
PeerTransferResult transfer(Transport& transport, int src, int dst,
                            std::vector<std::uint8_t> frame,
                            const PeerTransferConfig& cfg) {
  ES_CHECK(cfg.max_attempts >= 1, "peer transfer needs at least one attempt");
  PeerTransferResult result;
  for (int attempt = 1; attempt <= cfg.max_attempts; ++attempt) {
    result.attempts = attempt;
    if (attempt > 1) {
      ++result.retries;
      const double wait = cfg.backoff.delay_s(attempt - 1);
      transport.advance(wait);
      result.virtual_time_s += wait;
    }
    auto delivery = transport.send_payload(src, dst, frame);
    result.virtual_time_s += delivery.elapsed_s;
    transport.advance(delivery.elapsed_s);
    if (delivery.status == DeliveryStatus::kDelivered) {
      result.delivered = true;
      result.bytes = std::move(delivery.bytes);
      return result;
    }
    // Abort-drain: a timed-out or checksum-corrupt delivery is dropped on
    // the floor here — `delivery.bytes` dies with this scope and the next
    // attempt restarts from the sender's pristine copy.
  }
  return result;
}

}  // namespace

PeerTransferResult peer_push(Transport& transport, int src, int dst,
                             std::vector<std::uint8_t> frame,
                             const PeerTransferConfig& cfg) {
  return transfer(transport, src, dst, std::move(frame), cfg);
}

PeerTransferResult peer_fetch(Transport& transport, int holder, int requester,
                              std::vector<std::uint8_t> frame,
                              const PeerTransferConfig& cfg) {
  // The request leg: a tiny control message from the recovering rank to the
  // holder.  Its loss surfaces as a failed response below (the holder never
  // replies), so only its latency is modeled here.
  const Delivery request = transport.send(requester, holder, 64);
  PeerTransferResult result =
      transfer(transport, holder, requester, std::move(frame), cfg);
  result.virtual_time_s += request.elapsed_s;
  return result;
}

}  // namespace easyscale::comm
