#include "kernels/custom.hpp"

#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace easyscale::kernels {

namespace {

struct Entry {
  std::string name;
  CustomDotFn dot;
  CustomPanelFn panel;  // may be null: scalar packed path on every backend
};

struct Registry {
  std::mutex mutex;
  std::vector<Entry> entries;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

int register_custom_gemm(std::string name, CustomDotFn fn,
                         CustomPanelFn panel) {
  ES_CHECK(fn != nullptr, "custom kernel must be callable");
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.entries.push_back(
      Entry{std::move(name), std::move(fn), std::move(panel)});
  return static_cast<int>(r.entries.size());  // handles are 1-based
}

const CustomDotFn& custom_gemm(int handle) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  ES_CHECK(handle >= 1 && handle <= static_cast<int>(r.entries.size()),
           "unknown custom kernel handle " << handle);
  return r.entries[static_cast<std::size_t>(handle - 1)].dot;
}

const std::string& custom_gemm_name(int handle) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  ES_CHECK(handle >= 1 && handle <= static_cast<int>(r.entries.size()),
           "unknown custom kernel handle " << handle);
  return r.entries[static_cast<std::size_t>(handle - 1)].name;
}

const CustomPanelFn* custom_gemm_panel(int handle) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  ES_CHECK(handle >= 1 && handle <= static_cast<int>(r.entries.size()),
           "unknown custom kernel handle " << handle);
  const CustomPanelFn& panel =
      r.entries[static_cast<std::size_t>(handle - 1)].panel;
  return panel != nullptr ? &panel : nullptr;
}

int num_custom_gemms() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return static_cast<int>(r.entries.size());
}

float kahan_dot(const float* x, const float* y, std::int64_t k) {
  float sum = 0.0f;
  float comp = 0.0f;  // running compensation for lost low-order bits
  for (std::int64_t i = 0; i < k; ++i) {
    const float term = x[i] * y[i] - comp;
    const float next = sum + term;
    comp = (next - sum) - term;
    sum = next;
  }
  return sum;
}

CustomPanelFn kahan_panel() {
  return [](const SimdOps& ops, const float* a_row, const float* b,
            std::int64_t k, std::int64_t n, std::int64_t j0, std::int64_t j1,
            float* c_row, bool accumulate) {
    ES_CHECK(ops.kahan_panel != nullptr,
             "kahan_panel invoked on a backend without vector bodies");
    ops.kahan_panel(a_row, b, k, n, j0, j1, c_row, accumulate);
  };
}

}  // namespace easyscale::kernels
