// YOLOv3 analogue: conv backbone + a single-cell detection head predicting
// (cx, cy, extent, objectness) for the synthetic-VOC dataset.  Loss is the
// YOLO mix of box regression (MSE) and objectness (BCE).
#pragma once

#include "models/workload.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/layer.hpp"
#include "nn/linear.hpp"
#include "nn/losses.hpp"
#include "nn/pooling.hpp"

namespace easyscale::models {

class YoloV3Mini : public Workload {
 public:
  YoloV3Mini();

  [[nodiscard]] std::string name() const override { return "YOLOv3"; }
  void init(std::uint64_t seed) override;
  float train_step(autograd::StepContext& ctx,
                   const data::Batch& batch) override;
  std::vector<std::int64_t> predict(autograd::StepContext& ctx,
                                    const data::Batch& batch) override;
  std::vector<tensor::Tensor*> buffers() override;
  [[nodiscard]] bool uses_vendor_tuned_kernels() const override {
    return true;
  }

 private:
  nn::Sequential backbone_;
  nn::MSELoss box_loss_;
  nn::BCEWithLogits obj_loss_;
};

}  // namespace easyscale::models
