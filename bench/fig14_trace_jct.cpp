// Fig 14: average JCT and makespan on the 64-GPU heterogeneous cluster
// (32 V100 + 16 P100 + 16 T4) for YARN-CS (FIFO gang scheduling),
// EasyScale_homo and EasyScale_heter over the same Philly-like trace.
// Paper: EasyScale_homo 8.3x JCT / 2.5x makespan, EasyScale_heter 13.2x /
// 2.8x over YARN-CS.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

int main() {
  using namespace easyscale;
  bench::banner("Fig 14", "trace experiment: avg JCT and makespan");

  trace::TraceConfig tcfg;
  tcfg.num_jobs = 80;
  tcfg.mean_interarrival_s = 60.0;
  tcfg.runtime_mu = 7.8;
  const auto jobs = trace::philly_like_trace(tcfg);

  sim::SimConfig scfg;
  scfg.cluster = {32, 16, 16};  // V100, P100, T4

  struct Row {
    const char* name;
    sim::SchedulerPolicy policy;
    sim::SimResult result;
  };
  Row rows[] = {
      {"YARN-CS", sim::SchedulerPolicy::kYarnCS, {}},
      {"EasyScale_homo", sim::SchedulerPolicy::kEasyScaleHomo, {}},
      {"EasyScale_heter", sim::SchedulerPolicy::kEasyScaleHeter, {}},
  };
  for (auto& r : rows) {
    scfg.policy = r.policy;
    r.result = sim::simulate_trace(jobs, scfg);
  }
  std::printf("%-18s %14s %14s %12s %12s\n", "scheduler", "avg_JCT_s",
              "makespan_s", "JCT_gain", "mkspan_gain");
  const double base_jct = rows[0].result.avg_jct;
  const double base_mk = rows[0].result.makespan;
  for (const auto& r : rows) {
    std::printf("%-18s %14.0f %14.0f %11.1fx %11.1fx\n", r.name,
                r.result.avg_jct, r.result.makespan,
                base_jct / r.result.avg_jct, base_mk / r.result.makespan);
  }
  bench::note("expected: EasyScale_heter > EasyScale_homo >> YARN-CS on both "
              "metrics (paper: 13.2x/8.3x JCT, 2.8x/2.5x makespan).");

  // Same trace with spot revocations on: a per-GPU MTBF failure process
  // (trace::gpu_failure_trace).  Gang jobs hit by a revocation are killed
  // and restarted (losing progress); EasyScale jobs scale in and never
  // fail — the §2.1 motivation measured on the Fig-14 setup.
  std::printf("\nwith per-GPU MTBF revocations (mtbf=5e4s/GPU, repair=600s):\n");
  trace::FailureTraceConfig fcfg;
  fcfg.cluster = scfg.cluster;
  fcfg.horizon_s = 2.0e5;
  scfg.failures = trace::gpu_failure_trace(fcfg);
  for (auto& r : rows) {
    scfg.policy = r.policy;
    r.result = sim::simulate_trace(jobs, scfg);
  }
  std::printf("%-18s %14s %14s %12s %12s %14s\n", "scheduler", "avg_JCT_s",
              "makespan_s", "revocations", "failed_jobs", "lost_steps");
  for (const auto& r : rows) {
    std::printf("%-18s %14.0f %14.0f %12lld %12lld %14lld\n", r.name,
                r.result.avg_jct, r.result.makespan,
                static_cast<long long>(r.result.revocations),
                static_cast<long long>(r.result.failed_jobs),
                static_cast<long long>(r.result.lost_progress));
  }
  bench::note("failed_jobs must be 0 for both EasyScale policies and > 0 "
              "for gang-scheduled YARN-CS under the same revocations.");
  return 0;
}
