// Elementwise and simple structural tensor ops.  All loops run in a fixed
// ascending-index order, so results are bitwise stable on any host.
//
// The context-taking overloads split the index range across the context's
// intra-op pool; every output element is written by exactly one chunk with
// no cross-element accumulation, so they are bitwise identical to the
// sequential overloads for any thread count.
#pragma once

#include "kernels/exec_context.hpp"
#include "tensor/tensor.hpp"

namespace easyscale::tensor {

/// out[i] = a[i] + b[i]
void add(const Tensor& a, const Tensor& b, Tensor& out);
void add(const kernels::ExecContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out);
/// a[i] += b[i]
void add_(Tensor& a, const Tensor& b);
void add_(const kernels::ExecContext& ctx, Tensor& a, const Tensor& b);
/// a[i] += alpha * b[i]
void axpy_(Tensor& a, float alpha, const Tensor& b);
void axpy_(const kernels::ExecContext& ctx, Tensor& a, float alpha,
           const Tensor& b);
/// out[i] = a[i] - b[i]
void sub(const Tensor& a, const Tensor& b, Tensor& out);
void sub(const kernels::ExecContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out);
/// out[i] = a[i] * b[i]
void mul(const Tensor& a, const Tensor& b, Tensor& out);
void mul(const kernels::ExecContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out);
/// a[i] *= s
void scale_(Tensor& a, float s);
void scale_(const kernels::ExecContext& ctx, Tensor& a, float s);

/// Sequential left-to-right sum (the canonical deterministic order).
[[nodiscard]] float sum_sequential(std::span<const float> values);

/// Max over all elements (empty tensors throw).
[[nodiscard]] float max_value(const Tensor& a);

/// argmax along the last dimension of a 2-D tensor; returns one index
/// per row.  Ties resolve to the lowest index (deterministic).
[[nodiscard]] std::vector<std::int64_t> argmax_rows(const Tensor& a);

/// 2-D transpose.
[[nodiscard]] Tensor transpose2d(const Tensor& a);

/// L2 norm with sequential accumulation.
[[nodiscard]] float l2_norm(const Tensor& a);

/// Max absolute elementwise difference between two equal-shaped tensors.
[[nodiscard]] float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace easyscale::tensor
