#include "kernels/simd.hpp"

#include "common/env.hpp"
#include "common/error.hpp"

namespace easyscale::kernels {

namespace {

// __builtin_cpu_supports requires a literal feature name.
bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512f() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

/// The scalar backend publishes no vector bodies: call sites fall back to
/// the original scalar loops, which are the reference the vector backends
/// must match bitwise — keeping the scalar path literally the pre-SIMD
/// code (an honest baseline, not a re-implementation).
const SimdOps& scalar_ops() {
  static const SimdOps ops;  // kind = kScalar, every pointer null
  return ops;
}

}  // namespace

const char* simd_backend_name(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kAuto:
      return "auto";
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kAvx2:
      return "avx2";
    case SimdBackend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdBackend detected_simd_backend() {
  static const SimdBackend detected = [] {
    if (detail::avx512_ops() != nullptr && cpu_has_avx512f()) {
      return SimdBackend::kAvx512;
    }
    if (detail::avx2_ops() != nullptr && cpu_has_avx2()) {
      return SimdBackend::kAvx2;
    }
    return SimdBackend::kScalar;
  }();
  return detected;
}

bool simd_backend_available(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kAuto:
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kAvx2:
      return detail::avx2_ops() != nullptr && cpu_has_avx2();
    case SimdBackend::kAvx512:
      return detail::avx512_ops() != nullptr && cpu_has_avx512f();
  }
  return false;
}

std::vector<SimdBackend> available_simd_backends() {
  std::vector<SimdBackend> backends{SimdBackend::kScalar};
  if (simd_backend_available(SimdBackend::kAvx2)) {
    backends.push_back(SimdBackend::kAvx2);
  }
  if (simd_backend_available(SimdBackend::kAvx512)) {
    backends.push_back(SimdBackend::kAvx512);
  }
  return backends;
}

SimdBackend parse_simd_backend_env() {
  const auto token =
      env_token("EASYSCALE_SIMD", {"auto", "avx512", "avx2", "scalar"});
  if (!token.has_value() || *token == "auto") return detected_simd_backend();
  const SimdBackend requested = *token == "scalar" ? SimdBackend::kScalar
                                : *token == "avx2" ? SimdBackend::kAvx2
                                                   : SimdBackend::kAvx512;
  // A pinned backend the host (or this build) cannot run is an error, not
  // a silent downgrade: a CI cross-check that "compared" avx512 against
  // itself would be worthless.
  ES_CHECK(simd_backend_available(requested),
           "EASYSCALE_SIMD=" << *token << " but the " << *token
                             << " backend is not available on this "
                                "host/build (detected: "
                             << simd_backend_name(detected_simd_backend())
                             << ")");
  return requested;
}

namespace {

/// kAuto resolution, parsed once per process (kernels consult this on
/// every call; the env must not be able to change bits mid-run).
SimdBackend resolved_auto_backend() {
  static const SimdBackend resolved = parse_simd_backend_env();
  return resolved;
}

}  // namespace

const SimdOps& simd_ops(SimdBackend backend) {
  const SimdBackend concrete =
      backend == SimdBackend::kAuto ? resolved_auto_backend() : backend;
  switch (concrete) {
    case SimdBackend::kAuto:
    case SimdBackend::kScalar:
      return scalar_ops();
    case SimdBackend::kAvx2: {
      ES_CHECK(simd_backend_available(SimdBackend::kAvx2),
               "avx2 SIMD backend requested but unavailable on this "
               "host/build");
      return *detail::avx2_ops();
    }
    case SimdBackend::kAvx512: {
      ES_CHECK(simd_backend_available(SimdBackend::kAvx512),
               "avx512 SIMD backend requested but unavailable on this "
               "host/build");
      return *detail::avx512_ops();
    }
  }
  ES_THROW("unreachable simd backend");
}

}  // namespace easyscale::kernels
