// Controller failover-latency model.
//
// Analytic counterpart of the replicated control plane's charge model
// (fault/controller.hpp): when the supervisor leader dies, how long until
// a follower holds the lease and the committed decision log is back in
// service?  The model decomposes the latency the ControlPlane charges to
// its fabric clock — failure detection, waiting out the dead leader's
// lease, the promise round of the election, and the new-leader log sync —
// from the same TransportConfig/LeaseConfig parameters, so the
// BENCH_fault_recovery --controller-only section can report measured
// failover latency side by side with the model's decomposition and the
// two agree on the floor (a measured failover can never beat detection).
//
// Also models the steady-state decision throughput: one commit costs a
// record round (kWireBytes to each follower) plus an ack round, so
// decisions/s ~= 1 / commit_round_s at quorum.
#pragma once

#include <cstdint>

#include "comm/lease.hpp"
#include "comm/transport.hpp"

namespace easyscale::sim {

struct FailoverModelConfig {
  /// Controller replica count (2f+1).
  int replicas = 3;
  /// Controller-fabric link model (latency/bandwidth/deadlines).
  comm::TransportConfig fabric;
  /// Lease parameters (term length bounds the wait for a dead leader's
  /// lease to lapse).
  comm::LeaseConfig lease;
  /// Committed decision-log entries the new leader must sync.
  std::int64_t log_entries = 0;
  /// Wire bytes per decision record (DecisionRecord::kWireBytes).
  std::int64_t entry_bytes = 88;
};

struct FailoverModelResult {
  double detect_s = 0.0;      // heartbeat silence until the death is seen
  double lease_wait_s = 0.0;  // worst case: the full remaining lease term
  double election_s = 0.0;    // promise round to the surviving replicas
  double sync_s = 0.0;        // probe + fetch + re-replicate the log
  double total_s = 0.0;       // sum: the modelled worst-case failover
  double commit_round_s = 0.0;  // one decision commit at quorum
  /// Steady-state committed decisions per second (no faults).
  [[nodiscard]] double decisions_per_second() const {
    return commit_round_s > 0.0 ? 1.0 / commit_round_s : 0.0;
  }
};

/// Evaluate the model.  Deterministic for a config.
[[nodiscard]] FailoverModelResult model_failover(
    const FailoverModelConfig& config);

}  // namespace easyscale::sim
