// Determinism audit: demonstrates each nondeterminism source §3.3 catalogs,
// directly at the kernel/communication layer, and the EasyScale control
// that removes it.
#include <cstdio>
#include <vector>

#include "comm/ring.hpp"
#include "common/digest.hpp"
#include "kernels/gemm.hpp"
#include "kernels/reduce.hpp"
#include "kernels/scatter.hpp"
#include "rng/sampling.hpp"

int main() {
  using namespace easyscale;
  rng::Philox gen(123);

  // 1. Hardware-specific kernels: the same GEMM on V100/P100/T4 variants.
  std::printf("1) operator implementations (hardware-specific kernels)\n");
  const std::int64_t n = 32;
  std::vector<float> a(n * n), b(n * n);
  rng::fill_normal(gen, a, 0.0f, 1.0f);
  rng::fill_normal(gen, b, 0.0f, 1.0f);
  for (auto [label, variant] :
       {std::pair{"V100-native (ilv-8)     ", kernels::GemmVariant::kInterleaved8},
        std::pair{"P100-native (ilv-4)     ", kernels::GemmVariant::kInterleaved4},
        std::pair{"T4-native   (ilv-2)     ", kernels::GemmVariant::kInterleaved2},
        std::pair{"D2 canonical(sequential)",
                  kernels::GemmVariant::kSequential}}) {
    std::vector<float> c(n * n);
    kernels::gemm_variant(variant, n, n, n, a, b, c, false);
    std::printf("   %s -> digest %016llx\n", label,
                static_cast<unsigned long long>(digest_floats(c)));
  }
  std::printf("   => same math, different bits per device; D2 pins one "
              "variant everywhere.\n\n");

  // 2. Communication: ring all-reduce association depends on world size.
  std::printf("2) communication mechanism (ring all-reduce order)\n");
  std::vector<std::vector<float>> grads(8, std::vector<float>(1024));
  for (auto& g : grads) rng::fill_normal(gen, g, 0.0f, 1.0f);
  for (std::int64_t world : {2, 4, 8}) {
    // Pre-fold 8 virtual gradients into `world` physical partials the way
    // plain DDP would see them, then ring-reduce.
    std::vector<std::vector<float>> parts(static_cast<std::size_t>(world),
                                          std::vector<float>(1024, 0.0f));
    for (std::size_t v = 0; v < grads.size(); ++v) {
      auto& p = parts[v % static_cast<std::size_t>(world)];
      for (std::size_t i = 0; i < p.size(); ++i) p[i] += grads[v][i];
    }
    std::vector<std::span<const float>> views(parts.begin(), parts.end());
    std::vector<float> out(1024);
    comm::ring_allreduce_sum(views, out);
    std::printf("   physical world %lld -> digest %016llx\n",
                static_cast<long long>(world),
                static_cast<unsigned long long>(digest_floats(out)));
  }
  {
    std::vector<std::span<const float>> views(grads.begin(), grads.end());
    std::vector<float> out(1024);
    comm::ring_allreduce_sum(views, out);
    std::printf("   EasyScale virtual ranks (always 8) -> digest %016llx "
                "on ANY physical mapping\n\n",
                static_cast<unsigned long long>(digest_floats(out)));
  }

  // 3. Atomics: scatter-add order.
  std::printf("3) atomic-instruction kernels (scatter-add)\n");
  std::vector<std::int64_t> idx(256);
  std::vector<float> src(256);
  rng::fill_randint(gen, idx, 8);
  rng::fill_normal(gen, src, 0.0f, 1.0f);
  kernels::ExecContext fast;
  fast.policy = kernels::KernelPolicy::kFastest;
  kernels::ExecContext det;
  det.policy = kernels::KernelPolicy::kDeterministic;
  for (int run = 0; run < 2; ++run) {
    std::vector<float> out(8, 0.0f);
    kernels::scatter_add(fast, idx, src, 1, out);
    std::printf("   emulated atomics, run %d -> digest %016llx\n", run,
                static_cast<unsigned long long>(digest_floats(out)));
  }
  for (int run = 0; run < 2; ++run) {
    std::vector<float> out(8, 0.0f);
    kernels::scatter_add(det, idx, src, 1, out);
    std::printf("   sorted deterministic, run %d -> digest %016llx\n", run,
                static_cast<unsigned long long>(digest_floats(out)));
  }
  std::printf("   => D0 replaces atomic accumulation with a sorted order.\n");
  return 0;
}
