// Rotating checkpoint manager.
//
// Production elastic training checkpoints frequently (every scale event and
// periodically in between, §4).  A crash can tear the newest file, so the
// manager keeps the last `keep` generations (`<prefix>.0` newest ...
// `<prefix>.{keep-1}` oldest) and `load_latest_valid` walks back to the
// first generation whose digest verifies — the job never loses more than
// one checkpoint interval to corruption.
//
// Silent data corruption adds a second axis: a checkpoint can be perfectly
// well-formed on disk yet record *poisoned* parameters (the corruption
// happened in compute, before the bytes were written).  A generation is
// therefore only marked *verified* — via a `<path>.ok` sidecar recording
// the payload digest — after verify_generation() re-reads the file and
// revalidates its digest chain, and the caller (FaultSupervisor) only
// requests that when the engine's re-execution witness certified the
// checkpointed step.  SDC recovery restores through load_latest_verified.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/digest.hpp"

namespace easyscale::core {

class CheckpointManager {
 public:
  CheckpointManager(std::string prefix, int keep = 3);

  // --- Control-plane fencing (fault/controller.hpp) ---------------------
  //
  // When the supervisor's decisions are made by a replicated control
  // plane, every blessing and recovery carries the fencing epoch of the
  // leader that committed it.  The manager tracks the highest epoch it
  // has seen; a write or restore arriving with a LOWER epoch comes from a
  // deposed leader and is rejected with a named error — a stale blessing
  // can never overwrite or roll back a newer committed decision.

  /// Monotone: raising to an older epoch is a no-op.
  void raise_fence(std::int64_t epoch);
  [[nodiscard]] std::int64_t fence_epoch() const { return fence_epoch_; }

  /// Throws when `writer_epoch` sits below the fence — the caller is a
  /// deposed leader whose lease epoch was superseded.
  void check_fence(std::int64_t writer_epoch, const char* what) const;

  /// Fence-checked saves: identical to save() once the epoch clears the
  /// fence.  The replicated supervisor routes every blessing through
  /// these so a stale leader's checkpoint write is rejected, not applied.
  void save_fenced(std::int64_t writer_epoch,
                   const std::vector<std::uint8_t>& bytes);
  void save_fenced(std::int64_t writer_epoch,
                   const std::vector<std::uint8_t>& bytes,
                   const DigestChain& chain);

  /// Fence-checked phase-2 bless of an epoch-addressed checkpoint.
  bool bless_epoch_fenced(std::int64_t writer_epoch, std::int64_t epoch);

  /// Fence-checked recovery read: a deposed leader must not drive a
  /// restore decision either.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>>
  load_latest_valid_fenced(std::int64_t reader_epoch) const;

  // --- Epoch-addressed checkpoints (two-phase commit + retention GC) ----
  //
  // The peer-checkpoint pipeline (fault/peer_checkpoint.hpp) addresses
  // snapshots by EPOCH — the global step they capture — rather than by
  // rotation position, and needs the same two-phase discipline on disk:
  // phase 1 writes `<prefix>.epoch.<E>` (atomic tmp+rename, unblessed);
  // phase 2 re-reads the file, re-verifies its digest chain, and writes the
  // `.ok` sidecar (the bless).  A crash between the phases leaves an
  // unblessed file that load_latest_blessed_epoch() skips and gc_epochs()
  // deletes.  Retention keeps the newest `keep_blessed` blessed epochs plus
  // every pinned epoch, so soak runs stop accumulating snapshot files.

  /// Phase 1: persist epoch `E` unblessed (any existing file and sidecar
  /// for the epoch are replaced).
  void save_epoch(std::int64_t epoch, const std::vector<std::uint8_t>& bytes,
                  const DigestChain& chain);

  /// Phase 2: re-read, re-verify, bless.  Returns whether the epoch's file
  /// is intact (a torn phase-1 file stays unblessed).
  bool bless_epoch(std::int64_t epoch);

  /// Whether `epoch` carries a matching bless sidecar.
  [[nodiscard]] bool is_blessed(std::int64_t epoch) const;

  /// Newest blessed epoch whose file still verifies, with its digest
  /// chain.  Walks back across older blessed epochs when newer ones are
  /// torn; nullopt when none survives.
  [[nodiscard]] std::optional<
      std::tuple<std::int64_t, std::vector<std::uint8_t>, DigestChain>>
  load_latest_blessed_epoch() const;

  /// Pinned epochs survive gc_epochs() regardless of age (e.g. a milestone
  /// the operator wants to keep).
  void pin_epoch(std::int64_t epoch) { pinned_.insert(epoch); }
  void unpin_epoch(std::int64_t epoch) { pinned_.erase(epoch); }
  [[nodiscard]] const std::set<std::int64_t>& pinned_epochs() const {
    return pinned_;
  }

  /// Retention: delete every epoch file except the newest `keep_blessed`
  /// BLESSED epochs and all pinned epochs.  Unblessed epochs older than the
  /// newest blessed one are torn garbage and deleted too.  Returns the
  /// number of epoch files removed.
  int gc_epochs(int keep_blessed);

  /// Every epoch with a file on disk, ascending (scans the prefix's
  /// directory).
  [[nodiscard]] std::vector<std::int64_t> epochs_on_disk() const;

  [[nodiscard]] std::string epoch_path_for(std::int64_t epoch) const;
  [[nodiscard]] std::string epoch_sidecar_for(std::int64_t epoch) const;

  // --- Rotating generations (the original interface) --------------------

  /// Persist a new generation (rotates older ones down, sidecars ride
  /// along).  The new generation starts UNVERIFIED.
  void save(const std::vector<std::uint8_t>& bytes);

  /// Same, recording a per-tensor digest chain in the file.
  void save(const std::vector<std::uint8_t>& bytes, const DigestChain& chain);

  /// Re-read generation `g` from disk, revalidate its framing and digest
  /// chain, and on success write the `.ok` sidecar marking it restorable
  /// for SDC recovery.  Returns whether verification passed.
  bool verify_generation(int generation);

  /// Newest generation whose integrity checks pass, or nullopt when none.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load_latest_valid()
      const;

  /// Newest generation that is both valid AND marked verified (sidecar
  /// present and matching the file's payload digest).  Returns the payload
  /// and its stored digest chain.
  [[nodiscard]] std::optional<
      std::pair<std::vector<std::uint8_t>, DigestChain>>
  load_latest_verified() const;

  /// Whether generation `g` carries a matching verification sidecar.
  [[nodiscard]] bool is_verified(int generation) const;

  /// Number of generations currently on disk (valid or not).
  [[nodiscard]] int generations_on_disk() const;

  [[nodiscard]] std::string path_for(int generation) const;
  [[nodiscard]] std::string sidecar_for(int generation) const;

  /// Delete every generation (and sidecar); epoch files are untouched
  /// (use gc_epochs(0) to drop unpinned epochs).
  void clear();

 private:
  std::string prefix_;
  int keep_;
  std::set<std::int64_t> pinned_;
  /// Highest controller fencing epoch seen; stale-writer rejection floor.
  std::int64_t fence_epoch_ = 0;
};

}  // namespace easyscale::core
