// Planner-driven data-parallel trainer: the generalization of the old
// ddp::DDPTrainer (which remains available as an alias) from pure
// replicated data parallelism to a parallel::Plan of
// data_replicas × shard_degree.
//
// shard_degree == 1 is exactly the PyTorch-DDP fixed-DoP baseline: one
// model/optimizer replica per rank, bucketed ring all-reduce over the
// physical world, stock rebuild-after-first-iteration buckets.
//
// shard_degree > 1 adds ZeRO-1-style optimizer-state sharding: the
// gradient sync becomes a reduce-scatter (bitwise-identical reduction,
// each rank receives only its shard's averaged elements), the optimizer
// updates only owned chunks (optim::Optimizer::step_slices), and an
// all-gather publishes the owner-updated parameter chunks to every
// replica.  The resulting trajectory is BITWISE IDENTICAL to the
// unsharded run at every step (docs/PARALLELISM.md, proof sketch), and
// reshard() re-assigns chunk ownership mid-run without perturbing a bit.
// Checkpoints are canonical v3 frames (core/checkpoint_io): save at
// shard_degree N, restore at any degree dividing the same world.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "comm/allreduce.hpp"
#include "comm/async_allreduce.hpp"
#include "comm/bucket.hpp"
#include "comm/resilient.hpp"
#include "comm/shard.hpp"
#include "core/checkpoint_io.hpp"
#include "data/pipeline.hpp"
#include "kernels/exec_context.hpp"
#include "models/workload.hpp"
#include "optim/optimizer.hpp"
#include "optim/sgd.hpp"
#include "parallel/plan.hpp"

namespace easyscale::parallel {

struct TrainerConfig {
  std::string workload = "ResNet18";
  std::int64_t world_size = 4;
  std::int64_t batch_per_worker = 8;
  std::uint64_t seed = 42;
  kernels::KernelPolicy policy = kernels::KernelPolicy::kDeterministic;
  std::vector<kernels::DeviceType> devices;  // per rank; default all V100
  bool rebuild_buckets = true;
  /// Custom D2 GEMM kernel handle (kernels/custom.hpp), 0 = built-in.
  int custom_d2_gemm = 0;
  /// Bucket capacity in bytes; 0 resolves to EASYSCALE_BUCKET_CAP (when
  /// set and >= the largest parameter) and otherwise to the historical
  /// 4096-byte default.  See comm::resolve_bucket_cap.
  std::int64_t bucket_cap_bytes = 0;
  optim::OptimizerConfig optim;
  std::int64_t lr_step_epochs = 20;
  float gamma = 0.1f;
  /// Run ranks on parallel threads within a step (bitwise identical to
  /// sequential; replicas are disjoint between synchronization points).
  bool parallel_workers = false;
  /// Intra-op compute threads per rank (0 = the EASYSCALE_THREADS process
  /// default); all ranks share one bounded global pool.  Bitwise identical
  /// for every value.
  int intra_op_threads = 0;
  /// Route gradient sync through the failure-aware fabric (one transport
  /// rank per physical rank, identity mapping).  Bitwise identical to the
  /// plain path when no fault fires; a condemned rank throws
  /// comm::RankDeathError out of run_steps (the caller then rolls back
  /// and, when sharded, reshards).
  bool resilient_comm = false;
  comm::TransportConfig transport;
  comm::ResilientConfig resilient;  // on_death is forced to kAbort
  /// Pre-sampled comm fault schedule replayed by the transport.
  std::vector<comm::CommFaultEvent> comm_faults;
  /// Redundant-replica SDC voting (see the PR-5 integrity layer).  Mutually
  /// exclusive with shard_degree > 1: voting needs full gradient replicas.
  std::int64_t logical_world = 0;
  /// Pipelined bucket flush (docs/PERFORMANCE.md): bitwise identical to
  /// the sequential path, including when sharded (the per-bucket
  /// reduce-scatter is subset-aware like the all-reduce).
  bool overlap_comm = false;
  comm::AsyncConfig async_comm;
  /// Optimizer-state shard degree: 1 = replicated (stock DDP), > 1 =
  /// ZeRO-1 sharding.  Must divide world_size and be <= plan_chunks.
  int shard_degree = 1;
  /// Chunk count of the plan's fixed partition over the flattened
  /// parameter space.  A pure function of the parameter count partitions
  /// the same way at every shard_degree — do not change mid-job.
  int plan_chunks = kDefaultPlanChunks;
};

/// Outcome of one gradient-digest vote (logical_world > 0 only).
struct VoteReport {
  std::int64_t buckets_checked = 0;
  std::int64_t digest_bytes_exchanged = 0;
  std::int64_t exchange_retransmits = 0;  // checksum/timeout-triggered
  /// Ranks whose per-bucket digests lost the majority vote.  When a group
  /// of two splits 1-1 there is no majority; both members are listed
  /// (detection without attribution).
  std::vector<std::int64_t> corrupt_ranks;
};

class Trainer {
 public:
  Trainer(TrainerConfig config, const data::Dataset& train,
          const data::AugmentConfig& augment);

  /// Run `n` synchronized global steps; records the last rank's loss.
  void run_steps(std::int64_t n);

  /// Run whole epochs (advances the LR schedule between them).
  void run_epochs(std::int64_t n);

  [[nodiscard]] const std::vector<float>& loss_history() const {
    return losses_;
  }

  /// Bitwise digest of rank-0 model parameters.
  [[nodiscard]] std::uint64_t params_digest() const;

  /// Rank-0 replica (e.g. for evaluation).
  [[nodiscard]] models::Workload& model(std::int64_t rank = 0) {
    return *replicas_[static_cast<std::size_t>(rank)].workload;
  }

  [[nodiscard]] std::int64_t steps_per_epoch() const {
    return steps_per_epoch_;
  }
  [[nodiscard]] std::int64_t global_step() const { return global_step_; }
  [[nodiscard]] const comm::BucketLayout& current_layout() const {
    return layout_;
  }
  [[nodiscard]] optim::StepLR& scheduler(std::int64_t rank = 0) {
    return *replicas_[static_cast<std::size_t>(rank)].scheduler;
  }

  /// Set the LR-schedule epoch on every rank (elastic baselines restart
  /// their world and must carry the schedule across rebuilds).
  void set_epoch_all(std::int64_t epoch) {
    for (auto& rep : replicas_) rep.scheduler->set_epoch(epoch);
  }

  [[nodiscard]] std::int64_t world_size() const { return config_.world_size; }

  // --- Parallelism-plan surface ---

  [[nodiscard]] const Plan& plan() const { return plan_; }
  [[nodiscard]] int shard_degree() const { return plan_.shard_degree; }

  /// Elastic reshard at a step boundary: re-assign chunk ownership to
  /// `new_shard_degree` (which must divide world_size), redistributing
  /// optimizer-state chunks from their canonical owners.  The chunk bounds
  /// are fixed by the plan, so no state is split or re-summed and the
  /// continued trajectory is bitwise unchanged.
  void reshard(int new_shard_degree);

  /// Save a canonical v3 checkpoint: replicated parameters, gathered
  /// canonical optimizer state, schedule, per-rank data/RNG state, bucket
  /// layout — plus the shard frame (plan layout + per-chunk digest chain,
  /// which is shard_degree-independent).
  void save_checkpoint(const std::string& path);

  /// Restore from a v3 checkpoint saved by any trainer with the same
  /// workload and world_size, at ANY shard degree — the canonical payload
  /// carries full optimizer state, re-partitioned here by this trainer's
  /// current plan.  Verifies the stored per-chunk digest chain against the
  /// restored parameters.
  void restore_checkpoint(const std::string& path);

  /// In-memory flavour of save_checkpoint: the same canonical payload,
  /// per-tensor digest chain and shard frame, framed into one byte vector
  /// (the peer-checkpoint pipeline's snapshot unit — no filesystem).
  [[nodiscard]] std::vector<std::uint8_t> checkpoint_bytes();

  /// Restore from checkpoint_bytes() output, with the same cross-degree
  /// guarantees and chunk-chain attestation as restore_checkpoint.
  void restore_checkpoint_bytes(const std::vector<std::uint8_t>& bytes);

  // --- Failure-aware comm surface (resilient_comm = true only) ---

  [[nodiscard]] bool resilient_comm_enabled() const {
    return config_.resilient_comm;
  }

  /// Arm a comm fault; `collective < 0` targets the next step's sync.
  void inject_comm_fault(const comm::CommFaultEvent& event);

  /// Report of the most recent resilient gradient sync.
  [[nodiscard]] const std::optional<comm::CollectiveReport>&
  last_comm_report() const {
    return last_comm_report_;
  }

  [[nodiscard]] const comm::TransportStats& transport_stats() const;

  // --- Compute-integrity surface (logical_world > 0) ---

  /// Install (or clear, with nullptr) a post-op hook on one rank's
  /// ExecContext — the SDC injection point for the voting tests.
  void set_post_op_hook(std::int64_t rank, kernels::PostOpHook* hook);

  /// Report of the most recent gradient-digest vote (empty before the
  /// first step or when voting is disabled).
  [[nodiscard]] const std::optional<VoteReport>& last_vote_report() const {
    return last_vote_report_;
  }

  /// Overlap accounting of the most recent pipelined step (empty before
  /// the first overlapped step or with overlap_comm = false).
  [[nodiscard]] const std::optional<comm::OverlapStats>&
  last_overlap_stats() const {
    return last_overlap_stats_;
  }

 private:
  struct Replica {
    std::unique_ptr<models::Workload> workload;
    std::unique_ptr<optim::Optimizer> optimizer;
    std::unique_ptr<optim::StepLR> scheduler;
    std::unique_ptr<data::RankDataPipeline> pipeline;
    rng::StreamSet streams;
    kernels::ExecContext exec;
  };

  void one_step();
  /// Pipelined variant of one_step's sync: per-bucket flush jobs on the
  /// async engine, bitwise identical results.  Requires contrib_counts_.
  void one_step_overlapped();
  /// Digest vote + representative reduction (logical_world > 0).  Throws
  /// core::IntegrityError when a rank loses the vote.
  void vote_and_reduce(std::vector<comm::GradientSet>& sets);
  /// Single-bucket vote + representative reduction for the overlap path:
  /// same group/majority logic as vote_and_reduce restricted to bucket `b`
  /// (local digests; the overlapped control plane never rides the fabric).
  void vote_and_reduce_bucket(std::size_t b,
                              std::vector<comm::GradientSet>& sets,
                              VoteReport& report);
  /// Recompute owned_slices_ / gather_map_ from plan_.
  void rebuild_shard_maps();
  /// Apply the optimizer update: full step when replicated, owned slices
  /// when sharded, then all-gather the published parameter chunks.
  void optimize_and_publish();
  /// Copy every chunk's optimizer-state slices from its canonical owner
  /// under `from` into rank `dst` (used by reshard and checkpoint save).
  void gather_canonical_state_into(const Plan& from, std::int64_t dst);
  /// Serialize the canonical payload, per-tensor chain and shard frame
  /// (the pieces both the file writer and checkpoint_bytes frame).
  void build_checkpoint_image(std::vector<std::uint8_t>* payload,
                              DigestChain* chain,
                              core::ShardFrameMeta* meta);
  /// Apply a verified canonical payload + shard frame to this trainer;
  /// `what` labels error messages (a path or "peer snapshot").
  void apply_checkpoint_image(const std::vector<std::uint8_t>& payload,
                              const core::ShardFrameMeta& meta,
                              const std::string& what);

  TrainerConfig config_;
  std::vector<Replica> replicas_;
  Plan plan_;
  /// Per rank: the flattened-space slices its shard owns (empty lists at
  /// shard_degree == 1 are replaced by full coverage — see ctor).
  std::vector<comm::ShardSlices> owned_slices_;
  GatherMap gather_map_;
  std::unique_ptr<comm::SimTransport> transport_;
  std::unique_ptr<comm::MembershipMonitor> monitor_;
  std::optional<comm::CollectiveReport> last_comm_report_;
  std::optional<VoteReport> last_vote_report_;
  std::optional<comm::OverlapStats> last_overlap_stats_;
  std::unique_ptr<comm::AsyncCollectiveEngine> engine_;
  /// Per-parameter gradient contribution counts from the recorded first
  /// step; empty until recorded.  Feeds BucketReadyTracker.
  std::vector<int> contrib_counts_;
  comm::BucketLayout layout_;
  bool rebuilt_ = false;
  std::int64_t global_step_ = 0;
  std::int64_t steps_per_epoch_ = 0;
  std::vector<float> losses_;
};

}  // namespace easyscale::parallel
