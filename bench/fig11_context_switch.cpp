// Fig 11 (+§5.1.2 data-worker sharing): context-switching overhead.
//
// Part 1 — per-workload training time with one EST per GPU, with and
// without EST context switching (save/restore of RNG streams and BN
// buffers).  Paper: <= 1.9% overhead.
//
// Part 2 — first-mini-batch latency with shared data workers (4 total)
// vs naive per-EST workers (8 ESTs x 4 workers = 32), each worker paying a
// CPU-bound launch cost.  Paper: 67.1% average reduction.
#include <cstdio>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "models/datasets.hpp"

namespace {

using namespace easyscale;

constexpr std::int64_t kSteps = 12;

double run_engine(const std::string& workload, bool context_switching,
                  const models::WorkloadData& wd) {
  core::EasyScaleConfig cfg;
  cfg.workload = workload;
  cfg.num_ests = 2;
  cfg.batch_per_est = 4;
  cfg.context_switching = context_switching;
  core::EasyScaleEngine e(cfg, *wd.train, wd.augment);
  e.configure_workers(std::vector<core::WorkerSpec>(2, core::WorkerSpec{}));
  e.run_steps(2);  // warm-up
  return bench::time_seconds([&] { e.run_steps(kSteps); });
}

double first_batch_latency(std::int64_t num_workers,
                           const models::WorkloadData& wd) {
  core::EasyScaleConfig cfg;
  cfg.workload = "ResNet50";
  cfg.num_ests = 8;
  cfg.batch_per_est = 2;
  cfg.use_async_loader = true;
  cfg.loader.num_workers = num_workers;
  cfg.loader.worker_launch_ms = 25.0;  // simulated fork+import cost
  cfg.loader.augment = wd.augment;
  core::EasyScaleEngine e(cfg, *wd.train, wd.augment);
  e.configure_workers({core::WorkerSpec{}});
  return bench::time_seconds([&] { e.run_steps(1); });
}

}  // namespace

int main() {
  bench::banner("Fig 11", "lightweight EST context switching");
  std::printf("%-18s %14s %14s %10s\n", "workload", "w/o_switch_s",
              "w/_switch_s", "overhead");
  for (const auto& name : models::workload_names()) {
    auto wd = models::make_dataset_for(name, 256, 32, 42);
    const double without = run_engine(name, false, wd);
    const double with = run_engine(name, true, wd);
    std::printf("%-18s %14.3f %14.3f %9.1f%%\n", name.c_str(), without, with,
                100.0 * (with / without - 1.0));
  }
  bench::note("expected: overhead within a couple of percent of zero "
              "(paper max 1.9%; timing noise on a busy host can dominate).");

  std::printf("\nData-worker sharing (8 ESTs on one GPU, launch cost 25 ms "
              "per data worker):\n");
  auto wd = models::make_dataset_for("ResNet50", 256, 32, 42);
  const double naive = first_batch_latency(32, wd);
  const double shared = first_batch_latency(4, wd);
  std::printf("  32 per-EST workers: first step %.3f s\n", naive);
  std::printf("  4 shared workers:   first step %.3f s\n", shared);
  std::printf("  reduction: %.1f%% (paper: 67.1%% average)\n",
              100.0 * (1.0 - shared / naive));
  return 0;
}
