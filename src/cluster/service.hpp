// The multi-tenant cluster service: a long-running, event-driven scheduler
// over the EasyScale elastic-job model (ROADMAP item 4, grounded in
// "Elastic Deep Learning in Multi-Tenant GPU Clusters").
//
// Layering:
//   ClusterService            event loop (calendar queue), placement,
//     ├── fair_share          weighted max-min + SLA entitlements
//     ├── Companion+PlanCache Eq. (1) throughput of every placement
//     └── capacity feeds      failures (repairable), SDC quarantine
//                             (permanent), degraded fabric links, and the
//                             Fig-1 serving co-location curve
//
// The service is *fluid*: between events every running job progresses at
// the steps/second of its current plan, so the only work is at arrivals,
// completions and capacity changes — an indexed calendar queue drains
// those in amortized O(1), which is what lets a 100k-GPU, week-long,
// tens-of-thousands-of-jobs trace finish in seconds of wall-clock.
//
// Revocation flows through the elastic shrink path: when capacity leaves
// (serving peaks, failures, quarantine) the fair-share targets drop and
// affected jobs *scale in* — spot tenants first, then burst above quota,
// guaranteed never below quota — no job is ever killed (§5.3: preemptions
// yes, failures zero).
//
// Determinism contract: same tenants + trace + config (including the
// queue kind) ⇒ bitwise-identical schedule digest and metrics JSON, at
// any thread count (asserted over ≥16 seeds by cluster_soak_test).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/allocator.hpp"
#include "cluster/calendar_queue.hpp"
#include "cluster/metrics.hpp"
#include "cluster/tenant.hpp"
#include "fault/quarantine_feed.hpp"
#include "sched/companion.hpp"
#include "sim/simulator.hpp"

namespace easyscale::cluster {

/// A fault-degraded fabric link: `gpus` GPUs of `device_type` sit behind
/// it for `duration_s`.  Placement avoids them (they fill last), and jobs
/// forced onto them lose `penalty` of the affected GPUs' throughput.
struct LinkDegradeEvent {
  double t_s = 0.0;
  double duration_s = 3600.0;
  int device_type = 0;
  std::int64_t gpus = 0;
  double penalty = 0.5;  // throughput fraction lost on degraded GPUs
};

struct ClusterServiceConfig {
  sched::GpuVector capacity{};  // healthy GPUs per device type
  QueueKind queue = QueueKind::kCalendar;
  double max_sim_s = 365.0 * 86400.0;  // safety bound

  /// SLA targets: a tier-`x` job attains its SLA when
  /// JCT <= stretch_x * ideal_jct + slack, where ideal_jct is the job's
  /// run time on an uncontended full-maxP best-type allocation.
  double sla_stretch_guaranteed = 3.0;
  double sla_stretch_burst = 8.0;
  double sla_stretch_spot = 1e12;  // spot sells no latency SLA
  double sla_slack_s = 300.0;

  /// Capacity feeds (all optional, all deterministic inputs).
  std::vector<sim::ClusterFailureEvent> failures;        // repairable
  std::vector<fault::QuarantineEvent> quarantines;       // permanent (SDC)
  std::vector<LinkDegradeEvent> link_degrades;           // fabric
  /// Serving co-location (Fig 1): lend up to `serving_peak_fraction` of
  /// each type to the serving fleet, following the diurnal curve sampled
  /// every `serving_update_period_s`.
  bool serving_colocation = false;
  trace::ServingLoadConfig serving{};
  double serving_update_period_s = 600.0;
  double serving_peak_fraction = 0.3;
};

class ClusterService {
 public:
  ClusterService(std::vector<Tenant> tenants, std::vector<ClusterJob> jobs,
                 ClusterServiceConfig config);
  ~ClusterService();

  /// Drain the event queue to completion and return the metrics.
  [[nodiscard]] ClusterMetrics run();

  [[nodiscard]] const sched::PlanCache& plan_cache() const { return cache_; }

 private:
  struct JobState;
  struct CapacityStep;
  struct Ev;

  void build_capacity_steps();
  void rebalance(double now);
  void settle(JobState& js, double now);
  void finish_job(std::size_t idx, double now);
  /// Install a new allocation for job `idx`: settle progress, recompute
  /// the Eq. (1) rate (degraded GPUs contribute at 1 - penalty), bump the
  /// finish-event generation and fold the decision into the digest.
  void apply_plan(std::size_t idx, const sched::GpuVector& mix,
                  const sched::GpuVector& degraded, double now);

  std::vector<Tenant> tenants_;
  std::vector<ClusterJob> jobs_;
  ClusterServiceConfig cfg_;
  sched::PlanCache cache_;

  std::vector<JobState> states_;
  std::vector<std::vector<std::size_t>> tenant_active_;
  std::vector<CapacityStep> capacity_steps_;
  std::unique_ptr<EventQueue<Ev>> queue_;

  sched::GpuVector healthy_{};   // currently schedulable, full-speed
  sched::GpuVector degraded_{};  // schedulable behind a degraded link
  std::array<double, sched::kNumDeviceTypes> degrade_penalty_{};

  ClusterMetrics metrics_;
  std::uint64_t digest_ = kFnvOffset;
};

}  // namespace easyscale::cluster
