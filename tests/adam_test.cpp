// Adam optimizer + optimizer-agnostic trainer plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"
#include "optim/adam.hpp"
#include "optim/optimizer.hpp"

namespace easyscale::optim {
namespace {

struct Fixture {
  autograd::Parameter w{"w", tensor::Shape{2}};
  autograd::ParameterStore store;

  Fixture() {
    store.register_parameter(&w);
    w.value.fill(1.0f);
  }
};

TEST(Adam, FirstStepMovesByLr) {
  Fixture f;
  Adam opt(f.store, {.lr = 0.01f});
  f.w.grad.fill(0.5f);
  opt.step();
  // With bias correction, the first Adam step is ~lr * sign(g).
  EXPECT_NEAR(f.w.value.at(0), 1.0f - 0.01f, 1e-5f);
}

TEST(Adam, InvariantToGradientScale) {
  // Adam's update magnitude is (nearly) independent of |g|.
  Fixture a, b;
  Adam oa(a.store, {.lr = 0.01f});
  Adam ob(b.store, {.lr = 0.01f});
  a.w.grad.fill(0.001f);
  b.w.grad.fill(100.0f);
  oa.step();
  ob.step();
  EXPECT_NEAR(a.w.value.at(0), b.w.value.at(0), 1e-4f);
}

TEST(Adam, DecoupledWeightDecayShrinksWeights) {
  Fixture f;
  Adam opt(f.store, {.lr = 0.1f, .weight_decay = 0.5f});
  f.w.grad.zero();
  opt.step();
  EXPECT_LT(f.w.value.at(0), 1.0f);
}

TEST(Adam, StateSerializationContinuesIdentically) {
  Fixture a;
  Adam oa(a.store, {.lr = 0.01f});
  a.w.grad.fill(1.0f);
  oa.step();
  ByteWriter w;
  oa.save(w);

  Fixture b;
  b.w.value = a.w.value;
  Adam ob(b.store, {.lr = 0.01f});
  ByteReader r(w.bytes());
  ob.load(r);
  EXPECT_EQ(ob.step_count(), 1);
  a.w.grad.fill(0.3f);
  b.w.grad.fill(0.3f);
  oa.step();
  ob.step();
  EXPECT_EQ(a.w.value.at(0), b.w.value.at(0));
}

TEST(OptimizerFactory, BuildsRequestedKind) {
  Fixture f;
  OptimizerConfig cfg;
  cfg.kind = OptimizerConfig::Kind::kAdam;
  cfg.lr = 0.02f;
  auto opt = make_optimizer(f.store, cfg);
  EXPECT_NE(dynamic_cast<Adam*>(opt.get()), nullptr);
  EXPECT_FLOAT_EQ(opt->lr(), 0.02f);
}

TEST(OptimizerFactory, StepLRWorksOnAdam) {
  Fixture f;
  OptimizerConfig cfg;
  cfg.kind = OptimizerConfig::Kind::kAdam;
  cfg.lr = 0.1f;
  auto opt = make_optimizer(f.store, cfg);
  StepLR sched(*opt, 2, 0.5f);
  sched.set_epoch(4);
  EXPECT_FLOAT_EQ(opt->lr(), 0.025f);
}

TEST(AdamEquivalence, EasyScaleMatchesDDPWithAdam) {
  // The headline bitwise property must hold under Adam too: optimizer
  // state is a function of synchronized gradients, so elasticity cannot
  // perturb it.
  auto wd = models::make_dataset_for("Bert", 128, 16, 42);
  ddp::DDPConfig dcfg;
  dcfg.workload = "Bert";
  dcfg.world_size = 4;
  dcfg.batch_per_worker = 4;
  dcfg.seed = 42;
  dcfg.optim.kind = OptimizerConfig::Kind::kAdam;
  dcfg.optim.lr = 1e-3f;
  ddp::DDPTrainer reference(dcfg, *wd.train, wd.augment);
  reference.run_steps(5);

  core::EasyScaleConfig cfg;
  cfg.workload = "Bert";
  cfg.num_ests = 4;
  cfg.batch_per_est = 4;
  cfg.seed = 42;
  cfg.optim.kind = OptimizerConfig::Kind::kAdam;
  cfg.optim.lr = 1e-3f;
  core::EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  engine.configure_workers(std::vector<core::WorkerSpec>(3));
  engine.run_steps(2);
  engine.configure_workers(std::vector<core::WorkerSpec>(1));
  engine.run_steps(3);
  EXPECT_EQ(reference.params_digest(), engine.params_digest());
}

TEST(AdamEquivalence, CheckpointCarriesAdamState) {
  auto wd = models::make_dataset_for("NeuMF", 128, 16, 42);
  core::EasyScaleConfig cfg;
  cfg.workload = "NeuMF";
  cfg.num_ests = 4;
  cfg.batch_per_est = 4;
  cfg.seed = 42;
  cfg.optim.kind = OptimizerConfig::Kind::kAdam;
  cfg.optim.lr = 1e-3f;
  core::EasyScaleEngine a(cfg, *wd.train, wd.augment);
  a.configure_workers(std::vector<core::WorkerSpec>(2));
  a.run_steps(3);
  const auto ckpt = a.checkpoint();
  a.run_steps(3);

  core::EasyScaleEngine b(cfg, *wd.train, wd.augment);
  b.configure_workers(std::vector<core::WorkerSpec>(4));
  b.restore(ckpt);
  b.run_steps(3);
  EXPECT_EQ(a.params_digest(), b.params_digest());
}

}  // namespace
}  // namespace easyscale::optim
