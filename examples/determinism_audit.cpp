// Determinism audit: demonstrates each nondeterminism source §3.3 catalogs,
// directly at the kernel/communication layer, and the EasyScale control
// that removes it — then emits a tamper-evident per-layer parameter digest
// chain from a short training run.
//
//   determinism_audit                  print the audit + the chain
//   determinism_audit --emit FILE      also write the chain to FILE
//   determinism_audit --compare FILE   exit nonzero unless the freshly
//                                      computed chain matches FILE record
//                                      for record (CI pins builds this way)
//   determinism_audit --shard-degree N additionally run the planner-driven
//                                      trainer with ZeRO-1 optimizer-state
//                                      sharding at degree N; its chain must
//                                      match the engine's link for link (CI
//                                      pins degree 1 vs 4 against one file)
//   determinism_audit --peer-recovery  additionally run the reference
//                                      trajectory through a mid-run peer
//                                      snapshot/restore (checkpoint_bytes)
//                                      at shard degrees 1 and 4, across
//                                      degrees, and with a reshard-on-
//                                      recover; every recovered chain must
//                                      match the clean chain link for link
//   determinism_audit --controller-failover
//                                      additionally run the reference
//                                      trajectory under the replicated
//                                      control plane (5 replicas) with f=2
//                                      leader crashes plus partitions, at
//                                      worker counts 2 and 4 and against
//                                      the ZeRO-1 trainer at shard degrees
//                                      1 and 4; every chain and the
//                                      decision-content tail must match
//                                      the controller-quiet run link for
//                                      link (bitwise failover)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "comm/ring.hpp"
#include "common/digest.hpp"
#include "core/checkpoint_manager.hpp"
#include "core/engine.hpp"
#include "fault/injector.hpp"
#include "fault/supervisor.hpp"
#include "kernels/gemm.hpp"
#include "kernels/reduce.hpp"
#include "kernels/scatter.hpp"
#include "models/datasets.hpp"
#include "parallel/trainer.hpp"
#include "rng/sampling.hpp"

namespace {

/// The reference run the chain is computed from: NeuMF, 4 ESTs on 2
/// workers, 4 steps, seed 7.  Any kernel, reduction-order or RNG change
/// anywhere in the stack moves at least one link.  The audit computes the
/// chain through BOTH comm paths — sequential sync and the pipelined
/// bucket flush — and a `--compare` pin therefore pins the overlapped path
/// too (the two must already agree before any file comparison happens).
easyscale::DigestChain audit_chain(bool overlap) {
  using namespace easyscale;
  auto wd = models::make_dataset_for("NeuMF", /*train=*/256, /*test=*/64,
                                     /*seed=*/7);
  core::EasyScaleConfig cfg;
  cfg.workload = "NeuMF";
  cfg.num_ests = 4;
  cfg.batch_per_est = 8;
  cfg.seed = 7;
  cfg.determinism.level = core::DeterminismLevel::kD1;
  cfg.overlap_comm = overlap;
  core::EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  engine.configure_workers(std::vector<core::WorkerSpec>(2));
  engine.run_steps(4);
  return engine.params_digest_chain();
}

/// The same reference trajectory executed by the planner-driven trainer
/// at optimizer-state shard degree `degree` (world 4 = the 4 ESTs, one
/// per rank).  Bitwise DDP equivalence means this chain must equal
/// audit_chain()'s for EVERY degree dividing the world.
easyscale::DigestChain shard_chain(int degree) {
  using namespace easyscale;
  auto wd = models::make_dataset_for("NeuMF", /*train=*/256, /*test=*/64,
                                     /*seed=*/7);
  parallel::TrainerConfig cfg;
  cfg.workload = "NeuMF";
  cfg.world_size = 4;
  cfg.batch_per_worker = 8;
  cfg.seed = 7;
  cfg.shard_degree = degree;
  parallel::Trainer trainer(cfg, *wd.train, wd.augment);
  trainer.run_steps(4);
  DigestChain chain;
  std::uint64_t id = 0;
  for (const auto* p : trainer.model().params().all()) {
    chain.push(id++, digest_floats(p->value.data()));
  }
  return chain;
}

/// The reference trajectory interrupted by an in-fabric recovery: train to
/// step 2 at `save_degree`, snapshot through the peer pipeline's byte API,
/// recover a FRESH trainer at `restore_degree` from those bytes, optionally
/// reshard again mid-run (`mid_degree` after one more step), and finish the
/// 4-step trajectory.  Consistent accuracy demands the result be bitwise
/// the clean chain.
easyscale::DigestChain recovered_chain(int save_degree, int restore_degree,
                                       int mid_degree) {
  using namespace easyscale;
  auto wd = models::make_dataset_for("NeuMF", /*train=*/256, /*test=*/64,
                                     /*seed=*/7);
  parallel::TrainerConfig cfg;
  cfg.workload = "NeuMF";
  cfg.world_size = 4;
  cfg.batch_per_worker = 8;
  cfg.seed = 7;
  cfg.shard_degree = save_degree;
  std::vector<std::uint8_t> snapshot;
  {
    parallel::Trainer doomed(cfg, *wd.train, wd.augment);
    doomed.run_steps(2);
    snapshot = doomed.checkpoint_bytes();
    // `doomed` is dropped here: the crash.  Only the bytes survive.
  }
  cfg.shard_degree = restore_degree;
  parallel::Trainer trainer(cfg, *wd.train, wd.augment);
  trainer.restore_checkpoint_bytes(snapshot);
  if (mid_degree > 0) {
    trainer.run_steps(1);
    trainer.reshard(mid_degree);
    trainer.run_steps(1);
  } else {
    trainer.run_steps(2);
  }
  DigestChain chain;
  std::uint64_t id = 0;
  for (const auto* p : trainer.model().params().all()) {
    chain.push(id++, digest_floats(p->value.data()));
  }
  return chain;
}

/// The reference trajectory supervised by the replicated control plane
/// (2f+1 = 5 replicas).  When `stormy`, f = 2 replica crashes — one of
/// them the bootstrap leader — plus two partitions attack the controller
/// mid-run; the committed decision stream and the parameter chain must be
/// bitwise those of the controller-quiet run.  `content_tail` receives the
/// fold of decision content digests (epoch-independent, so it compares
/// across failover histories).
easyscale::DigestChain controller_chain(bool stormy, std::int64_t workers,
                                        std::uint64_t* content_tail,
                                        std::int64_t* failovers) {
  using namespace easyscale;
  auto wd = models::make_dataset_for("NeuMF", /*train=*/256, /*test=*/64,
                                     /*seed=*/7);
  core::EasyScaleConfig cfg;
  cfg.workload = "NeuMF";
  cfg.num_ests = 4;
  cfg.batch_per_est = 8;
  cfg.seed = 7;
  cfg.determinism.level = core::DeterminismLevel::kD1;
  core::EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  core::CheckpointManager mgr("/tmp/es_audit_controller", 4);
  mgr.clear();
  std::vector<fault::FaultEvent> events;
  if (stormy) {
    events = {
        fault::FaultEvent{.kind = fault::FaultKind::kControllerPartition,
                          .step = 1,
                          .payload_seed = 0x51D5u},
        fault::FaultEvent{.kind = fault::FaultKind::kControllerCrash,
                          .step = 1,
                          .worker = 0},
        fault::FaultEvent{.kind = fault::FaultKind::kControllerPartition,
                          .step = 2,
                          .payload_seed = 0xA11Cu},
        fault::FaultEvent{.kind = fault::FaultKind::kControllerCrash,
                          .step = 3,
                          .worker = 3},
    };
  }
  fault::SupervisorConfig scfg;
  scfg.checkpoint_every = 2;
  scfg.controller_replicas = 5;
  fault::FaultSupervisor sup(engine, mgr,
                             fault::FaultInjector(std::move(events)), scfg);
  const auto stats = sup.run_to(4, workers);
  if (stats.failed) {
    std::fprintf(stderr,
                 "   => FATAL: supervised controller run failed (%s)\n",
                 stats.controller_unavailable ? "controller unavailable"
                                              : "training fault");
    std::exit(1);
  }
  *content_tail = sup.control_plane()->log().content_tail();
  *failovers = stats.controller_failovers;
  mgr.clear();
  return engine.params_digest_chain();
}

void write_chain(std::ostream& os, const easyscale::DigestChain& chain) {
  for (const auto& rec : chain.records()) {
    char line[64];
    std::snprintf(line, sizeof(line), "%llu %016llx %016llx\n",
                  static_cast<unsigned long long>(rec.id),
                  static_cast<unsigned long long>(rec.digest),
                  static_cast<unsigned long long>(rec.chain));
    os << line;
  }
}

bool read_chain(const std::string& path, easyscale::DigestChain& out) {
  std::ifstream in(path);
  if (!in) return false;
  unsigned long long id = 0, digest = 0, chain = 0;
  std::string digest_hex, chain_hex;
  while (in >> id >> digest_hex >> chain_hex) {
    digest = std::strtoull(digest_hex.c_str(), nullptr, 16);
    chain = std::strtoull(chain_hex.c_str(), nullptr, 16);
    out.push(id, digest);
    // push() recomputes the chain value; a mismatch against the recorded
    // one means the FILE itself was tampered with.
    if (out.records().back().chain != chain) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace easyscale;
  std::string emit_path;
  std::string compare_path;
  int shard_degree = 0;
  bool peer_recovery = false;
  bool controller_failover = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit") == 0 && i + 1 < argc) {
      emit_path = argv[++i];
    } else if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
      compare_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shard-degree") == 0 && i + 1 < argc) {
      shard_degree = std::atoi(argv[++i]);
      if (shard_degree < 1) {
        std::fprintf(stderr, "--shard-degree must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--peer-recovery") == 0) {
      peer_recovery = true;
    } else if (std::strcmp(argv[i], "--controller-failover") == 0) {
      controller_failover = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--emit FILE] [--compare FILE] "
                   "[--shard-degree N] [--peer-recovery] "
                   "[--controller-failover]\n",
                   argv[0]);
      return 2;
    }
  }
  rng::Philox gen(123);

  // 1. Hardware-specific kernels: the same GEMM on V100/P100/T4 variants.
  std::printf("1) operator implementations (hardware-specific kernels)\n");
  const std::int64_t n = 32;
  std::vector<float> a(n * n), b(n * n);
  rng::fill_normal(gen, a, 0.0f, 1.0f);
  rng::fill_normal(gen, b, 0.0f, 1.0f);
  for (auto [label, variant] :
       {std::pair{"V100-native (ilv-8)     ", kernels::GemmVariant::kInterleaved8},
        std::pair{"P100-native (ilv-4)     ", kernels::GemmVariant::kInterleaved4},
        std::pair{"T4-native   (ilv-2)     ", kernels::GemmVariant::kInterleaved2},
        std::pair{"D2 canonical(sequential)",
                  kernels::GemmVariant::kSequential}}) {
    std::vector<float> c(n * n);
    kernels::gemm_variant(variant, n, n, n, a, b, c, false);
    std::printf("   %s -> digest %016llx\n", label,
                static_cast<unsigned long long>(digest_floats(c)));
  }
  std::printf("   => same math, different bits per device; D2 pins one "
              "variant everywhere.\n\n");

  // 2. Communication: ring all-reduce association depends on world size.
  std::printf("2) communication mechanism (ring all-reduce order)\n");
  std::vector<std::vector<float>> grads(8, std::vector<float>(1024));
  for (auto& g : grads) rng::fill_normal(gen, g, 0.0f, 1.0f);
  for (std::int64_t world : {2, 4, 8}) {
    // Pre-fold 8 virtual gradients into `world` physical partials the way
    // plain DDP would see them, then ring-reduce.
    std::vector<std::vector<float>> parts(static_cast<std::size_t>(world),
                                          std::vector<float>(1024, 0.0f));
    for (std::size_t v = 0; v < grads.size(); ++v) {
      auto& p = parts[v % static_cast<std::size_t>(world)];
      for (std::size_t i = 0; i < p.size(); ++i) p[i] += grads[v][i];
    }
    std::vector<std::span<const float>> views(parts.begin(), parts.end());
    std::vector<float> out(1024);
    comm::ring_allreduce_sum(views, out);
    std::printf("   physical world %lld -> digest %016llx\n",
                static_cast<long long>(world),
                static_cast<unsigned long long>(digest_floats(out)));
  }
  {
    std::vector<std::span<const float>> views(grads.begin(), grads.end());
    std::vector<float> out(1024);
    comm::ring_allreduce_sum(views, out);
    std::printf("   EasyScale virtual ranks (always 8) -> digest %016llx "
                "on ANY physical mapping\n\n",
                static_cast<unsigned long long>(digest_floats(out)));
  }

  // 3. Atomics: scatter-add order.
  std::printf("3) atomic-instruction kernels (scatter-add)\n");
  std::vector<std::int64_t> idx(256);
  std::vector<float> src(256);
  rng::fill_randint(gen, idx, 8);
  rng::fill_normal(gen, src, 0.0f, 1.0f);
  kernels::ExecContext fast;
  fast.policy = kernels::KernelPolicy::kFastest;
  kernels::ExecContext det;
  det.policy = kernels::KernelPolicy::kDeterministic;
  for (int run = 0; run < 2; ++run) {
    std::vector<float> out(8, 0.0f);
    kernels::scatter_add(fast, idx, src, 1, out);
    std::printf("   emulated atomics, run %d -> digest %016llx\n", run,
                static_cast<unsigned long long>(digest_floats(out)));
  }
  for (int run = 0; run < 2; ++run) {
    std::vector<float> out(8, 0.0f);
    kernels::scatter_add(det, idx, src, 1, out);
    std::printf("   sorted deterministic, run %d -> digest %016llx\n", run,
                static_cast<unsigned long long>(digest_floats(out)));
  }
  std::printf("   => D0 replaces atomic accumulation with a sorted order.\n\n");

  // 4. End-to-end: the per-layer parameter digest chain after a short D1
  //    training run.  Each link folds its predecessor in, so ANY change
  //    anywhere in the stack breaks the chain from that layer on — the
  //    audit's comparison unit across builds, flags and machines.
  std::printf("4) end-to-end parameter digest chain (NeuMF, 2 workers, "
              "4 steps, seed 7)\n");
  const DigestChain chain = audit_chain(/*overlap=*/false);
  const DigestChain overlapped = audit_chain(/*overlap=*/true);
  if (chain != overlapped) {
    std::fprintf(stderr,
                 "   => FATAL: overlapped comm path diverged from the "
                 "sequential chain\n");
    return 1;
  }
  std::printf("   (sequential and pipelined comm paths agree link for "
              "link)\n");
  if (shard_degree > 0) {
    const DigestChain sharded = shard_chain(shard_degree);
    if (chain != sharded) {
      std::fprintf(stderr,
                   "   => FATAL: shard_degree %d trajectory diverged from "
                   "the engine chain\n",
                   shard_degree);
      return 1;
    }
    std::printf("   (ZeRO-1 sharded trainer at degree %d agrees link for "
                "link)\n",
                shard_degree);
  }
  if (peer_recovery) {
    // save degree, restore degree, optional mid-run reshard degree.
    struct Case {
      int save, restore, mid;
      const char* label;
    };
    for (const Case& c :
         {Case{1, 1, 0, "save@1 -> recover@1"},
          Case{4, 4, 0, "save@4 -> recover@4"},
          Case{4, 1, 0, "save@4 -> recover@1 (reshard-on-recover)"},
          Case{4, 4, 2, "save@4 -> recover@4 -> mid-run reshard to 2"}}) {
      const DigestChain rec = recovered_chain(c.save, c.restore, c.mid);
      if (chain != rec) {
        std::fprintf(stderr,
                     "   => FATAL: peer-recovered trajectory [%s] diverged "
                     "from the clean chain\n",
                     c.label);
        return 1;
      }
      std::printf("   (peer recovery [%s] agrees link for link)\n", c.label);
    }
  }
  if (controller_failover) {
    // The replicated control plane under attack: f = 2 of 2f+1 = 5
    // replicas crash (including the bootstrap leader) with partitions on
    // top, at both worker counts.  Params chain AND decision-content tail
    // must match the controller-quiet run bit for bit, and the ZeRO-1
    // trainer at shard degrees 1 and 4 must still reproduce the same
    // chain — controller failover is invisible at every extent.
    for (const std::int64_t workers : {std::int64_t{2}, std::int64_t{4}}) {
      std::uint64_t quiet_tail = 0;
      std::uint64_t stormy_tail = 0;
      std::int64_t quiet_failovers = 0;
      std::int64_t stormy_failovers = 0;
      const DigestChain quiet = controller_chain(
          /*stormy=*/false, workers, &quiet_tail, &quiet_failovers);
      const DigestChain stormy = controller_chain(
          /*stormy=*/true, workers, &stormy_tail, &stormy_failovers);
      if (chain != quiet || chain != stormy) {
        std::fprintf(stderr,
                     "   => FATAL: controller-supervised trajectory at %lld "
                     "worker(s) diverged from the clean chain\n",
                     static_cast<long long>(workers));
        return 1;
      }
      if (quiet_tail != stormy_tail) {
        std::fprintf(stderr,
                     "   => FATAL: decision stream forked under controller "
                     "faults at %lld worker(s) (%016llx vs %016llx)\n",
                     static_cast<long long>(workers),
                     static_cast<unsigned long long>(quiet_tail),
                     static_cast<unsigned long long>(stormy_tail));
        return 1;
      }
      if (quiet_failovers != 0 || stormy_failovers < 1) {
        std::fprintf(stderr,
                     "   => FATAL: failover counts wrong at %lld worker(s) "
                     "(quiet %lld, stormy %lld)\n",
                     static_cast<long long>(workers),
                     static_cast<long long>(quiet_failovers),
                     static_cast<long long>(stormy_failovers));
        return 1;
      }
      std::printf("   (controller failover at %lld worker(s): %lld "
                  "failover(s), chain and decision tail agree link for "
                  "link)\n",
                  static_cast<long long>(workers),
                  static_cast<long long>(stormy_failovers));
    }
    for (const int degree : {1, 4}) {
      if (chain != shard_chain(degree)) {
        std::fprintf(stderr,
                     "   => FATAL: shard degree %d diverged from the "
                     "controller-failover chain\n",
                     degree);
        return 1;
      }
    }
    std::printf("   (ZeRO-1 shard degrees 1 and 4 agree with the "
                "controller-failover chain)\n");
  }
  for (const auto& rec : chain.records()) {
    std::printf("   layer %3llu digest %016llx chain %016llx\n",
                static_cast<unsigned long long>(rec.id),
                static_cast<unsigned long long>(rec.digest),
                static_cast<unsigned long long>(rec.chain));
  }
  std::printf("   chain tail: %016llx\n",
              static_cast<unsigned long long>(chain.tail()));

  if (!emit_path.empty()) {
    std::ofstream out(emit_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", emit_path.c_str());
      return 2;
    }
    write_chain(out, chain);
    std::printf("   chain written to %s\n", emit_path.c_str());
  }
  if (!compare_path.empty()) {
    DigestChain expected;
    if (!read_chain(compare_path, expected)) {
      std::fprintf(stderr, "cannot read a valid chain from %s\n",
                   compare_path.c_str());
      return 2;
    }
    if (chain == expected) {
      std::printf("   => chain MATCHES %s\n", compare_path.c_str());
    } else {
      const auto& got = chain.records();
      const auto& want = expected.records();
      for (std::size_t i = 0; i < std::max(got.size(), want.size()); ++i) {
        if (i < got.size() && i < want.size() && got[i] == want[i]) continue;
        std::fprintf(stderr, "   first divergence at layer %zu\n", i);
        break;
      }
      std::fprintf(stderr, "   => chain DIFFERS from %s\n",
                   compare_path.c_str());
      return 1;
    }
  }
  return 0;
}
