// Central registry of Philox stream salts used by fault injection.
//
// Each fault family samples its schedule from `Philox(plan_seed ^ salt)`.
// Keeping every salt here — instead of ad-hoc constants inside injector.cpp
// — guarantees two properties the fault tests rely on:
//  1. streams never collide: two families with the same salt would consume
//     from one stream and adding a rate to either would silently reshuffle
//     the other's schedule (the static_asserts below make that a compile
//     error);
//  2. adding a NEW family never perturbs an existing seed's schedule,
//     because the new family draws from a fresh salted stream.
#pragma once

#include <cstdint>

namespace easyscale::fault {

/// Identifies the Philox stream a fault family samples from.  The enum
/// value IS the salt XOR-ed into the plan seed.
enum class StreamId : std::uint64_t {
  /// Classic step-boundary kinds (crash/revocation/straggler/tear/drop).
  /// Salt 0 keeps the PR-1 schedules bitwise identical: they drew from the
  /// raw plan seed before this registry existed.
  kFaultPlan = 0,
  /// In-collective comm kinds (chunk drop / stalled link / rank death).
  kCommFaultPlan = 0xC0117EC71DEAD5ull,
  /// Silent-data-corruption kinds (sticky bit-flip / bounded perturbation).
  kSdcPlan = 0x5DCBADF10A75ull,
  /// Peer-checkpoint replica loss (a rank's in-memory replica store drops a
  /// frame — DRAM eviction, process restart, NIC flap during replication).
  kPeerPlan = 0x9EE2C4EC4A11ull,
  /// Control-plane faults (controller replica crash / controller-fabric
  /// partition) against the replicated supervisor of fault/controller.hpp.
  kControllerPlan = 0xC07701F1A5EDull,
};

[[nodiscard]] constexpr std::uint64_t stream_salt(StreamId id) {
  return static_cast<std::uint64_t>(id);
}

static_assert(stream_salt(StreamId::kFaultPlan) !=
              stream_salt(StreamId::kCommFaultPlan));
static_assert(stream_salt(StreamId::kFaultPlan) !=
              stream_salt(StreamId::kSdcPlan));
static_assert(stream_salt(StreamId::kCommFaultPlan) !=
              stream_salt(StreamId::kSdcPlan));
static_assert(stream_salt(StreamId::kPeerPlan) !=
              stream_salt(StreamId::kFaultPlan));
static_assert(stream_salt(StreamId::kPeerPlan) !=
              stream_salt(StreamId::kCommFaultPlan));
static_assert(stream_salt(StreamId::kPeerPlan) !=
              stream_salt(StreamId::kSdcPlan));
static_assert(stream_salt(StreamId::kControllerPlan) !=
              stream_salt(StreamId::kFaultPlan));
static_assert(stream_salt(StreamId::kControllerPlan) !=
              stream_salt(StreamId::kCommFaultPlan));
static_assert(stream_salt(StreamId::kControllerPlan) !=
              stream_salt(StreamId::kSdcPlan));
static_assert(stream_salt(StreamId::kControllerPlan) !=
              stream_salt(StreamId::kPeerPlan));

}  // namespace easyscale::fault
