// Deterministic weight initializers.  All replicas initialize from the same
// stream (PyTorch DDP broadcasts rank-0 weights; we reproduce the effect by
// seeding init independently of rank).
#pragma once

#include "rng/philox.hpp"
#include "tensor/tensor.hpp"

namespace easyscale::nn {

/// Kaiming-uniform for layers with `fan_in` inputs.
void kaiming_uniform(rng::Philox& gen, tensor::Tensor& w, std::int64_t fan_in);

/// Xavier-uniform with explicit fan_in/fan_out.
void xavier_uniform(rng::Philox& gen, tensor::Tensor& w, std::int64_t fan_in,
                    std::int64_t fan_out);

/// N(0, stddev) init (embeddings).
void normal_init(rng::Philox& gen, tensor::Tensor& w, float stddev);

}  // namespace easyscale::nn
