// Elastic-baseline behaviour: the hyper-parameter re-derivation rules and
// the restart semantics that produce the §2.2 accuracy inconsistency.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/elastic_baselines.hpp"
#include "common/digest.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"

namespace easyscale::baselines {
namespace {

ElasticBaselineConfig config() {
  ElasticBaselineConfig cfg;
  cfg.workload = "ResNet18";
  cfg.base_world = 4;
  cfg.base_batch = 8;
  cfg.base_lr = 0.1f;
  cfg.seed = 42;
  return cfg;
}

TEST(TorchElastic, LinearLRScalingRule) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  TorchElasticTrainer t(config(), *wd.train, wd.augment);
  t.reconfigure(8);
  EXPECT_FLOAT_EQ(t.current_lr(), 0.2f);  // 8/4 * 0.1
  EXPECT_EQ(t.current_batch(), 8);        // per-worker batch fixed
  t.reconfigure(1);
  EXPECT_FLOAT_EQ(t.current_lr(), 0.025f);
  EXPECT_EQ(t.current_batch(), 8);
}

TEST(Pollux, AdaptiveBatchKeepsGlobalBatchNearDesign) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  PolluxTrainer t(config(), *wd.train, wd.augment);
  t.reconfigure(1);
  EXPECT_EQ(t.current_batch(), 32);  // 4*8 designed global / 1 worker
  EXPECT_FLOAT_EQ(t.current_lr(), 0.1f);
  t.reconfigure(8);
  EXPECT_EQ(t.current_batch(), 4);
  EXPECT_FLOAT_EQ(t.current_lr(), 0.1f);
}

TEST(Pollux, SqrtScalingForResidualGlobalBatchChange) {
  auto cfg = config();
  cfg.base_world = 3;
  cfg.base_batch = 5;  // designed global 15; at world 2: batch 7, global 14
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  PolluxTrainer t(cfg, *wd.train, wd.augment);
  t.reconfigure(2);
  EXPECT_EQ(t.current_batch(), 7);
  EXPECT_NEAR(t.current_lr(), 0.1f * std::sqrt(14.0f / 15.0f), 1e-6f);
}

TEST(Baselines, ParametersCarryAcrossRestart) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  TorchElasticTrainer t(config(), *wd.train, wd.augment);
  t.reconfigure(4);
  t.run_steps(4);
  const auto before = t.params_digest();
  t.reconfigure(2);  // restart, params must carry over
  EXPECT_EQ(t.params_digest(), before);
}

TEST(Baselines, DifferentWorldsProduceDifferentModels) {
  auto run = [&](std::int64_t world) {
    auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
    TorchElasticTrainer t(config(), *wd.train, wd.augment);
    t.reconfigure(world);
    t.run_steps(6);
    return t.params_digest();
  };
  EXPECT_NE(run(1), run(4));
  EXPECT_NE(run(2), run(4));
}

TEST(Baselines, BaselineAtDesignWorldStillDiffersFromDDPAfterRescale) {
  // Even returning to the designed world after an excursion leaves the
  // model off the fixed-DoP trajectory.
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  TorchElasticTrainer t(config(), *wd.train, wd.augment);
  t.reconfigure(4);
  t.run_steps(3);
  t.reconfigure(2);
  t.run_steps(2);
  t.reconfigure(4);
  t.run_steps(3);

  ddp::DDPConfig dcfg;
  dcfg.workload = "ResNet18";
  dcfg.world_size = 4;
  dcfg.batch_per_worker = 8;
  dcfg.seed = 42;
  auto wd2 = models::make_dataset_for("ResNet18", 128, 16, 42);
  ddp::DDPTrainer ref(dcfg, *wd2.train, wd2.augment);
  ref.run_steps(8);
  EXPECT_NE(t.params_digest(), ref.params_digest());
}

TEST(Baselines, LossHistoryAccumulatesAcrossRescales) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  PolluxTrainer t(config(), *wd.train, wd.augment);
  t.reconfigure(2);
  t.run_steps(3);
  t.reconfigure(1);
  t.run_steps(2);
  EXPECT_EQ(t.loss_history().size(), 5u);
}

TEST(Baselines, RunBeforeReconfigureThrows) {
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  TorchElasticTrainer t(config(), *wd.train, wd.augment);
  EXPECT_THROW(t.run_steps(1), Error);
}

}  // namespace
}  // namespace easyscale::baselines
