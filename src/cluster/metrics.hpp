// Cluster-service metrics: per-tenant/per-tier JCT, SLA attainment,
// fairness, preemption counts and event-core throughput, emitted as a
// deterministic JSON document (fixed key order, fixed float formatting),
// so replaying a seed yields a byte-identical artifact.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/tenant.hpp"

namespace easyscale::cluster {

struct TierMetrics {
  std::int64_t finished = 0;
  std::int64_t sla_attained = 0;  // finished within the tier's JCT target
  double jct_p50 = 0.0;
  double jct_p90 = 0.0;
  double jct_p99 = 0.0;
  [[nodiscard]] double attainment() const {
    return finished > 0
               ? static_cast<double>(sla_attained) / static_cast<double>(finished)
               : 1.0;
  }
};

struct TenantMetrics {
  std::int64_t tenant = 0;
  SlaTier tier = SlaTier::kBurst;
  std::int64_t finished = 0;
  double gpu_seconds = 0.0;
  double jct_sum = 0.0;
  double weight = 1.0;
};

struct ClusterMetrics {
  double makespan = 0.0;
  std::int64_t jobs_finished = 0;
  std::int64_t preemptions = 0;        // elastic shrink revocations
  std::int64_t reallocations = 0;      // allocator rounds executed
  std::int64_t events_processed = 0;   // events drained from the queue
  std::int64_t plan_cache_hits = 0;
  std::int64_t plan_cache_misses = 0;
  double fairness = 1.0;  // Jain index over gpu-seconds / weight
  TierMetrics per_tier[3];
  std::vector<TenantMetrics> per_tenant;
  /// Schedule digest: FNV-1a over every allocation decision (time bits,
  /// job id, per-type GPU counts).  Two runs scheduled identically — and
  /// only then — share a digest.
  std::uint64_t schedule_digest = 0;

  /// Deterministic JSON (stable key order, %.9f / %llu formatting).
  /// `wall_s`/`events_per_second` describe the measuring run and are the
  /// only non-replayable fields; they are omitted when wall_s < 0.
  [[nodiscard]] std::string to_json(double wall_s = -1.0) const;
};

/// Percentile over an UNSORTED sample (copies + sorts; nearest-rank).
[[nodiscard]] double percentile(std::vector<double> sample, double p);

/// FNV-1a 64-bit fold of one 64-bit word into a running digest.
[[nodiscard]] inline std::uint64_t fnv1a64(std::uint64_t h, std::uint64_t w) {
  for (int b = 0; b < 8; ++b) {
    h ^= (w >> (8 * b)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;

}  // namespace easyscale::cluster
