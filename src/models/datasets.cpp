#include "models/datasets.hpp"

#include "common/error.hpp"

namespace easyscale::models {

WorkloadData make_dataset_for(const std::string& workload,
                              std::int64_t train_size, std::int64_t test_size,
                              std::uint64_t seed) {
  WorkloadData out;
  const std::uint64_t test_seed = seed + 7919;
  if (workload == "ShuffleNetv2" || workload == "ResNet50" ||
      workload == "ResNet18" || workload == "VGG19" ||
      workload == "SwinTransformer") {
    out.train = std::make_unique<data::SyntheticImageDataset>(
        train_size, 10, 3, 8, 8, seed, /*sample_salt=*/0);
    // Same prototypes (same seed), disjoint sample noise: a learnable
    // held-out split.
    out.test = std::make_unique<data::SyntheticImageDataset>(
        test_size, 10, 3, 8, 8, seed, /*sample_salt=*/1);
    out.augment.enabled = true;
    return out;
  }
  out.augment.enabled = false;
  if (workload == "YOLOv3") {
    out.train = std::make_unique<data::SyntheticDetectionDataset>(train_size,
                                                                  8, 8, seed);
    out.test = std::make_unique<data::SyntheticDetectionDataset>(
        test_size, 8, 8, test_seed);
  } else if (workload == "NeuMF") {
    out.train =
        std::make_unique<data::SyntheticRecDataset>(train_size, 64, 64, seed);
    out.test = std::make_unique<data::SyntheticRecDataset>(test_size, 64, 64,
                                                           test_seed);
  } else if (workload == "Bert" || workload == "Electra") {
    out.train =
        std::make_unique<data::SyntheticQADataset>(train_size, 64, 16, seed);
    out.test = std::make_unique<data::SyntheticQADataset>(test_size, 64, 16,
                                                          test_seed);
  } else {
    ES_THROW("no dataset wiring for workload: " << workload);
  }
  return out;
}

}  // namespace easyscale::models
