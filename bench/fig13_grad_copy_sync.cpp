// Fig 13: gradient copy & synchronization overhead of the EST abstraction.
// EasyScale runs 8 ESTs on one GPU (ESTs 0-6 copy gradients out, EST 7
// additionally triggers the virtual-rank ring all-reduce); DDP runs 8
// one-EST workers.  Reported: per-mini-batch time normalized to DDP, plus
// the gradient bytes each EST swaps per step.
#include <cstdio>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"

namespace {

using namespace easyscale;

constexpr std::int64_t kSteps = 10;
constexpr std::int64_t kEsts = 8;

}  // namespace

int main() {
  bench::banner("Fig 13",
                "per-mini-batch time of 8 ESTs on 1 GPU vs DDP on 8 GPUs "
                "(normalized to DDP)");
  std::printf("%-18s %12s %12s %10s %14s\n", "workload", "ddp_ms/mb",
              "est_ms/mb", "ratio", "grad_KB/EST");
  for (const auto& name : models::workload_names()) {
    auto wd = models::make_dataset_for(name, 256, 32, 42);

    ddp::DDPConfig dcfg;
    dcfg.workload = name;
    dcfg.world_size = kEsts;
    dcfg.batch_per_worker = 2;
    ddp::DDPTrainer ddp(dcfg, *wd.train, wd.augment);
    ddp.run_steps(2);
    const double ddp_s = bench::time_seconds([&] { ddp.run_steps(kSteps); });

    core::EasyScaleConfig ecfg;
    ecfg.workload = name;
    ecfg.num_ests = kEsts;
    ecfg.batch_per_est = 2;
    core::EasyScaleEngine engine(ecfg, *wd.train, wd.augment);
    engine.configure_workers({core::WorkerSpec{}});
    engine.run_steps(2);
    const auto swapped_before = engine.switch_stats().gradient_bytes_swapped;
    const double est_s = bench::time_seconds([&] { engine.run_steps(kSteps); });
    const auto grad_bytes =
        (engine.switch_stats().gradient_bytes_swapped - swapped_before) /
        (kSteps * kEsts);

    const double ddp_mb = 1000.0 * ddp_s / static_cast<double>(kSteps * kEsts);
    const double est_mb = 1000.0 * est_s / static_cast<double>(kSteps * kEsts);
    std::printf("%-18s %12.2f %12.2f %9.2fx %14.1f\n", name.c_str(), ddp_mb,
                est_mb, est_mb / ddp_mb,
                static_cast<double>(grad_bytes) / 1024.0);
  }
  bench::note(
      "expected: ratio ~<= 1 (paper: EasyScale superior or competitive — "
      "gradient copies overlap with compute on real GPUs; serial CPU "
      "execution makes the copy visible here).");
  return 0;
}
