#include "sched/inter_job.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace easyscale::sched {

void InterJobScheduler::add_job(std::string name,
                                core::EasyScaleEngine& engine,
                                Companion companion, bool allow_heter) {
  ES_CHECK(find(name) == nullptr, "job name already registered: " << name);
  Job job;
  job.name = std::move(name);
  job.intra = std::make_unique<IntraJobScheduler>(engine, std::move(companion),
                                                  allow_heter);
  jobs_.push_back(std::move(job));
}

void InterJobScheduler::remove_job(const std::string& name) {
  const auto it = std::find_if(jobs_.begin(), jobs_.end(),
                               [&](const Job& j) { return j.name == name; });
  ES_CHECK(it != jobs_.end(), "unknown job: " << name);
  jobs_.erase(it);
}

InterJobScheduler::Job* InterJobScheduler::find(const std::string& name) {
  for (auto& j : jobs_) {
    if (j.name == name) return &j;
  }
  return nullptr;
}

GpuVector InterJobScheduler::allocation(const std::string& name) const {
  for (const auto& j : jobs_) {
    if (j.name == name && j.intra->current_plan().valid()) {
      return j.intra->current_plan().gpus;
    }
  }
  return GpuVector{};
}

GpuVector InterJobScheduler::free_pool() const {
  GpuVector free = capacity_;
  for (const auto& j : jobs_) {
    if (!j.intra->current_plan().valid()) continue;
    for (int t = 0; t < kNumDeviceTypes; ++t) {
      free[static_cast<std::size_t>(t)] -=
          j.intra->current_plan().gpus[static_cast<std::size_t>(t)];
    }
  }
  return free;
}

int InterJobScheduler::revoke(const GpuVector& revoked) {
  for (int t = 0; t < kNumDeviceTypes; ++t) {
    const auto idx = static_cast<std::size_t>(t);
    ES_CHECK(revoked[idx] >= 0, "negative revocation count");
    capacity_[idx] = std::max<std::int64_t>(0, capacity_[idx] - revoked[idx]);
  }
  return reschedule();
}

int InterJobScheduler::reschedule() {
  int changes = 0;
  // Capacity shrink: any job whose plan no longer fits scales in first
  // (training never fails; it just reconfigures — §5.3).
  for (;;) {
    GpuVector free = free_pool();
    bool over = false;
    for (int t = 0; t < kNumDeviceTypes; ++t) {
      if (free[static_cast<std::size_t>(t)] < 0) over = true;
    }
    if (!over) break;
    // Shrink the most-recently-registered over-committed job to its best
    // plan inside the reduced pool.
    for (auto it = jobs_.rbegin(); it != jobs_.rend(); ++it) {
      if (!it->intra->current_plan().valid()) continue;
      GpuVector reach = free_pool();
      for (int t = 0; t < kNumDeviceTypes; ++t) {
        auto& v = reach[static_cast<std::size_t>(t)];
        v += it->intra->current_plan().gpus[static_cast<std::size_t>(t)];
        v = std::max<std::int64_t>(v, 0);
      }
      const Plan p =
          it->intra->companion().best_plan(reach, it->intra->allow_heter());
      if (p.valid() && !(p.gpus == it->intra->current_plan().gpus)) {
        it->intra->apply_plan(p);
      } else {
        // Cannot shrink into the pool (or would not change): pause the job
        // entirely — it resumes when capacity returns.
        it->intra->release();
      }
      ++changes;
      break;
    }
  }
  // FIFO minimal starts for unscheduled jobs.
  for (auto& j : jobs_) {
    if (j.intra->current_plan().valid()) continue;
    if (j.intra->apply_best_plan(free_pool())) ++changes;
  }
  // Greedy proposal acceptance.
  for (;;) {
    GpuVector free = free_pool();
    Job* best_job = nullptr;
    Companion::Proposal best_prop;
    for (auto& j : jobs_) {
      if (!j.intra->current_plan().valid()) continue;
      for (auto& prop : j.intra->make_proposals(free)) {
        const bool better =
            best_job == nullptr ||
            prop.speedup_per_gpu() > best_prop.speedup_per_gpu() ||
            (prop.speedup_per_gpu() == best_prop.speedup_per_gpu() &&
             prop.gpu_count > best_prop.gpu_count);
        if (better) {
          best_job = &j;
          best_prop = prop;
        }
      }
    }
    if (best_job == nullptr) break;
    best_job->intra->apply_plan(best_prop.plan);
    ++changes;
  }
  ES_LOG_DEBUG("inter-job reschedule applied " << changes << " change(s)");
  return changes;
}

}  // namespace easyscale::sched
