// Shared helpers for the figure-reproduction binaries: headers, simple
// fixed-width tables, and wall-clock timing.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

#include "common/env.hpp"
#include "common/error.hpp"

namespace easyscale::bench {

/// Build type of THIS repo's code (NDEBUG), as stamped into benchmark
/// artifacts.  Distinct from google-benchmark's `library_build_type`
/// context field, which describes the system benchmark *library*.
[[nodiscard]] inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

[[nodiscard]] inline bool is_release_build() {
#ifdef NDEBUG
  return true;
#else
  return false;
#endif
}

/// Gate for benchmark binaries that record artifacts: debug-build numbers
/// are not comparable and must not be committed.  Returns true in release
/// builds.  In debug builds it prints a loud refusal and returns false —
/// unless EASYSCALE_BENCH_ALLOW_DEBUG=1, which stamps the run and lets it
/// continue (the "debug" build_type still lands in the artifact).
[[nodiscard]] inline bool guard_release_build(const std::string& artifact) {
  if (is_release_build()) return true;
  // Strict parse (common/env.hpp): only 0 or 1 are meaningful, and a typo
  // ("yes", "1x") refuses the run with an error NAMING the variable
  // instead of being silently misread.
  std::optional<std::int64_t> allow;
  try {
    allow = env_int64("EASYSCALE_BENCH_ALLOW_DEBUG", 0, 1);
  } catch (const Error& e) {
    std::printf("REFUSED: %s\n", e.what());
    return false;
  }
  if (allow.value_or(0) == 1) {
    std::printf("WARNING: DEBUG BUILD — %s will be stamped "
                "build_type=debug; numbers are not comparable.\n",
                artifact.c_str());
    return true;
  }
  std::printf("REFUSED: this is a debug build; %s must be recorded from a "
              "release build (set EASYSCALE_BENCH_ALLOW_DEBUG=1 to "
              "override, loudly stamped).\n",
              artifact.c_str());
  return false;
}

/// Build type of the google-benchmark *library* this binary linked, probed
/// by rendering the library's own JSON context header (1.7.x has no
/// programmatic getter).  A debug library times through unoptimized
/// instrumentation, so its numbers are as non-comparable as a debug
/// easyscale build — guard_release_benchmark_library gates on this.
[[nodiscard]] inline std::string benchmark_library_build_type() {
  std::ostringstream oss;
  benchmark::BenchmarkReporter::Context ctx;
  benchmark::JSONReporter reporter;
  reporter.SetOutputStream(&oss);
  reporter.SetErrorStream(&oss);
  reporter.ReportContext(ctx);
  const std::string text = oss.str();
  const std::string key = "\"library_build_type\": \"";
  const auto pos = text.find(key);
  if (pos == std::string::npos) return "unknown";
  const auto end = text.find('"', pos + key.size());
  if (end == std::string::npos) return "unknown";
  return text.substr(pos + key.size(), end - (pos + key.size()));
}

/// Companion gate to guard_release_build for artifacts whose numbers come
/// from google-benchmark's timing loop: a debug benchmark library is
/// refused just like a debug easyscale build (same
/// EASYSCALE_BENCH_ALLOW_DEBUG=1 escape, loudly stamped).  Self-timed
/// recorders (steady_clock in our own release binary) do not need this —
/// they bypass the library's timing entirely.
[[nodiscard]] inline bool guard_release_benchmark_library(
    const std::string& artifact) {
  const std::string lib = benchmark_library_build_type();
  if (lib == "release") return true;
  std::optional<std::int64_t> allow;
  try {
    allow = env_int64("EASYSCALE_BENCH_ALLOW_DEBUG", 0, 1);
  } catch (const Error& e) {
    std::printf("REFUSED: %s\n", e.what());
    return false;
  }
  if (allow.value_or(0) == 1) {
    std::printf("WARNING: google-benchmark library build type is '%s' — %s "
                "numbers are not comparable.\n",
                lib.c_str(), artifact.c_str());
    return true;
  }
  std::printf(
      "REFUSED: the linked google-benchmark library reports build type '%s'; "
      "%s must be timed against a release benchmark library (use the "
      "self-timed --record path, or set EASYSCALE_BENCH_ALLOW_DEBUG=1 to "
      "override, loudly stamped).\n",
      lib.c_str(), artifact.c_str());
  return false;
}

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Wall-clock seconds of `fn`.
inline double time_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace easyscale::bench
