#include "core/checkpoint_io.hpp"

#include <cstdio>

#include "common/digest.hpp"
#include "common/error.hpp"

namespace easyscale::core {

namespace {
constexpr std::uint32_t kFileMagic = 0x4553434Bu;  // "ESCK"
constexpr std::uint32_t kFileVersion = 1;

struct FileGuard {
  std::FILE* f = nullptr;
  ~FileGuard() {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace

void save_checkpoint_file(const std::string& path,
                          const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    FileGuard guard;
    guard.f = std::fopen(tmp.c_str(), "wb");
    ES_CHECK(guard.f != nullptr, "cannot open " << tmp << " for writing");
    const std::uint32_t magic = kFileMagic;
    const std::uint32_t version = kFileVersion;
    const std::uint64_t size = bytes.size();
    const std::uint64_t digest = digest_bytes(bytes);
    ES_CHECK(std::fwrite(&magic, sizeof(magic), 1, guard.f) == 1 &&
                 std::fwrite(&version, sizeof(version), 1, guard.f) == 1 &&
                 std::fwrite(&size, sizeof(size), 1, guard.f) == 1 &&
                 std::fwrite(&digest, sizeof(digest), 1, guard.f) == 1,
             "checkpoint header write failed");
    if (!bytes.empty()) {
      ES_CHECK(std::fwrite(bytes.data(), 1, bytes.size(), guard.f) ==
                   bytes.size(),
               "checkpoint payload write failed");
    }
  }
  ES_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
           "cannot move checkpoint into place at " << path);
}

std::vector<std::uint8_t> load_checkpoint_file(const std::string& path) {
  FileGuard guard;
  guard.f = std::fopen(path.c_str(), "rb");
  ES_CHECK(guard.f != nullptr, "cannot open checkpoint " << path);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t size = 0, digest = 0;
  ES_CHECK(std::fread(&magic, sizeof(magic), 1, guard.f) == 1 &&
               std::fread(&version, sizeof(version), 1, guard.f) == 1 &&
               std::fread(&size, sizeof(size), 1, guard.f) == 1 &&
               std::fread(&digest, sizeof(digest), 1, guard.f) == 1,
           "checkpoint header truncated: " << path);
  ES_CHECK(magic == kFileMagic, "not an EasyScale checkpoint: " << path);
  ES_CHECK(version == kFileVersion, "unsupported checkpoint version");
  std::vector<std::uint8_t> bytes(size);
  if (size > 0) {
    ES_CHECK(std::fread(bytes.data(), 1, size, guard.f) == size,
             "checkpoint payload truncated: " << path);
  }
  ES_CHECK(digest_bytes(bytes) == digest,
           "checkpoint digest mismatch (corrupt file): " << path);
  return bytes;
}

}  // namespace easyscale::core
