// Quarantine feed: the bridge from the SDC defense to cluster capacity.
//
// When the integrity witness condemns a device (fault/supervisor.cpp,
// docs/FAULT_TOLERANCE.md), that hardware must never be scheduled again —
// not just by the job that caught it, but by the whole cluster.  The
// QuarantineLedger records condemnations as (time, device type) events; a
// cluster-level scheduler replays the ledger to keep condemned capacity
// out of every placement decision.
//
// For simulation-scale studies, `sdc_quarantine_trace` generates the same
// kind of feed synthetically: a seeded per-device-type Poisson
// condemnation process (the long-run output of the witness over a fleet
// with a given SDC rate), deterministic for a seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "kernels/device.hpp"

namespace easyscale::fault {

/// One device of `device_type` condemned at `t_s`, permanently (condemned
/// hardware is never re-admitted; contrast sim::ClusterFailureEvent, which
/// repairs).
struct QuarantineEvent {
  double t_s = 0.0;
  int device_type = 0;
};

/// Append-only condemnation record.  Not synchronized: one supervisor (or
/// one scheduling loop) owns a ledger.
class QuarantineLedger {
 public:
  void record(double t_s, int device_type);
  [[nodiscard]] const std::vector<QuarantineEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::int64_t total() const {
    return static_cast<std::int64_t>(events_.size());
  }
  /// Condemnations per device type so far.
  [[nodiscard]] std::array<std::int64_t, kernels::kNumDeviceTypes> by_type()
      const;

 private:
  std::vector<QuarantineEvent> events_;
};

struct QuarantineTraceConfig {
  std::array<std::int64_t, kernels::kNumDeviceTypes> cluster{};  // per type
  double horizon_s = 7.0 * 86400.0;
  /// Mean condemnations per GPU per second (fleet SDC rate × detection
  /// probability); older parts of the fleet set higher rates.
  std::array<double, kernels::kNumDeviceTypes> rate_per_gpu_s{};
  std::uint64_t seed = 0x5DC;
};

/// Seeded synthetic condemnation feed, sorted by (time, type).  Emits at
/// most `cluster[t]` events per type — a device can only be condemned
/// once.
[[nodiscard]] std::vector<QuarantineEvent> sdc_quarantine_trace(
    const QuarantineTraceConfig& config);

}  // namespace easyscale::fault
