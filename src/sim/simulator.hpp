// Time-stepped cluster simulator for the trace experiment (Figs 14-15).
//
// Three policies over the same trace and 64-GPU heterogeneous cluster:
//  - kYarnCS:         FIFO gang scheduling of fixed same-type GPU sets
//                     (Philly's capacity scheduler baseline);
//  - kEasyScaleHomo:  elastic jobs, intra-job plans restricted to one GPU
//                     type, inter-job greedy proposal acceptance;
//  - kEasyScaleHeter: same, but D2-eligible jobs may mix GPU types.
#pragma once

#include <vector>

#include "sched/companion.hpp"
#include "sim/job.hpp"

namespace easyscale::sim {

enum class SchedulerPolicy { kYarnCS, kEasyScaleHomo, kEasyScaleHeter };

/// One GPU of `device_type` is revoked/broken at `t_s` and unavailable for
/// `repair_s` seconds (spot reclamation or an MTBF failure process; see
/// trace::gpu_failure_trace).
struct ClusterFailureEvent {
  double t_s = 0.0;
  int device_type = 0;  // index into the GpuVector
  double repair_s = 600.0;
};

struct SimConfig {
  sched::GpuVector cluster{};  // GPUs per device type
  double tick_s = 10.0;
  double reschedule_period_s = 60.0;
  SchedulerPolicy policy = SchedulerPolicy::kEasyScaleHeter;
  double max_sim_s = 4.0e6;  // safety bound
  /// Per-GPU revocation/failure events applied to the cluster capacity.
  /// EasyScale policies react with an immediate scale-in reschedule and
  /// never fail a job; YARN-CS gang jobs hit by a revoked GPU are killed
  /// and gang-restarted (the §2.1 baseline).
  std::vector<ClusterFailureEvent> failures;
  /// Fraction of a killed gang job's progress retained on restart (models
  /// the job's own periodic checkpointing; 0 = restart from scratch).
  double gang_restart_progress_kept = 0.0;
  /// Comm-level degradation model: per running job per tick, probability
  /// that its gradient sync hits a link fault (drop/stall/silent rank).
  /// EasyScale's failure-aware collective absorbs it in `comm_recover_s`
  /// (abort + backoff + bitwise re-execution); a gang job must tear down
  /// and restart the ring, stalling for `comm_gang_restart_s`.  Draws are
  /// Philox-seeded on (seed, job id, tick), so runs replay exactly.
  double comm_fault_rate = 0.0;
  std::uint64_t comm_fault_seed = 0xC0FF;
  double comm_recover_s = 0.5;
  double comm_gang_restart_s = 60.0;
  /// Silent-data-corruption model: per running job per tick per device
  /// type, probability that one of the job's GPUs of that type turns
  /// sticky-corrupt (scaled by how many it holds — older fleets set higher
  /// rates).  Empty disables.  Draws are Philox-seeded on
  /// (sdc_seed, job id, tick, type), so runs replay exactly.
  std::vector<double> sdc_rate_per_type;
  std::uint64_t sdc_seed = 0x5DC;
  /// With the defense on, a hit is detected within `sdc_detect_s` of job
  /// time, the device is quarantined for the rest of the simulation
  /// (capacity loss — condemned hardware is never handed back), and the
  /// job replays `sdc_replay_s` of progress from its last verified
  /// checkpoint.  With it off the job trains on and finishes silently
  /// poisoned (`jobs_poisoned`).
  bool sdc_defense = true;
  double sdc_detect_s = 30.0;
  double sdc_replay_s = 120.0;
  /// Step-time decomposition for the comm/compute-overlap model: the share
  /// of a multi-GPU job's nominal step time spent in gradient sync.  With
  /// `comm_overlap_frac > 0` the pipelined bucket flush hides that share
  /// under backward and the job's effective step time shrinks from
  /// `compute + comm` to overlapped_step_seconds(...) — at 0 the model
  /// degrades to the historical additive one exactly (unit-tested), so
  /// fig14/fig16 trace replays stay reproducible.  0 disables.
  double comm_fraction = 0.0;
  double comm_overlap_frac = 0.0;
};

/// Pipelined step-time model: the fraction `overlap_frac` of the comm term
/// runs concurrently with compute (max), the rest serializes (sum):
///   (1 - f) * (compute + comm) + f * max(compute, comm).
/// f = 0 reproduces the additive model bit for bit; f = 1 is full overlap.
[[nodiscard]] double overlapped_step_seconds(double compute_s, double comm_s,
                                             double overlap_frac);

struct TimelinePoint {
  double t = 0.0;
  std::int64_t allocated_gpus = 0;
};

struct SimResult {
  std::vector<JobOutcome> outcomes;
  std::vector<TimelinePoint> timeline;
  double makespan = 0.0;
  double avg_jct = 0.0;
  std::int64_t revocations = 0;   // GPUs taken away while in use
  std::int64_t failed_jobs = 0;   // gang kill events (0 for EasyScale)
  std::int64_t lost_progress = 0;  // global steps discarded by gang restarts
  std::int64_t comm_faults = 0;    // link faults hit by running jobs
  double comm_degraded_s = 0.0;    // job-time lost to comm recovery
  std::int64_t sdc_events = 0;     // devices turned sticky-corrupt
  std::int64_t devices_quarantined = 0;  // condemned by the defense
  double sdc_replay_s_total = 0.0;  // job-time spent re-executing
  std::int64_t jobs_poisoned = 0;  // finished with undetected corruption
};

[[nodiscard]] SimResult simulate_trace(const std::vector<JobSpec>& jobs,
                                       const SimConfig& config);

}  // namespace easyscale::sim
