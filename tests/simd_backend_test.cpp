// Cross-backend bitwise equivalence for the SIMD kernel bodies.
//
// The lane-tree contract (kernels/simd.hpp): vector lanes map to distinct
// output elements and replay the scalar accumulation order per lane, so
// every backend (scalar / AVX2 / AVX-512) must produce byte-identical
// buffers for every variant, shape — including remainders that exercise
// the masked tails — thread count, and accumulate mode.  These sweeps
// memcmp each available backend against the scalar reference loops.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "kernels/conv.hpp"
#include "kernels/custom.hpp"
#include "kernels/gemm.hpp"
#include "kernels/reduce.hpp"
#include "rng/philox.hpp"
#include "rng/sampling.hpp"

namespace easyscale::kernels {
namespace {

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

std::vector<float> random_vec(std::uint64_t seed, std::int64_t n) {
  rng::Philox gen(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  rng::fill_normal(gen, v, 0.0f, 1.0f);
  return v;
}

ExecContext make_ctx(SimdBackend backend, int threads = 1) {
  ExecContext ctx;
  ctx.simd = backend;
  ctx.intra_op_threads = threads;
  return ctx;
}

/// Non-scalar backends the host can actually run.
std::vector<SimdBackend> vector_backends() {
  std::vector<SimdBackend> out;
  for (SimdBackend b : available_simd_backends()) {
    if (b != SimdBackend::kScalar) out.push_back(b);
  }
  return out;
}

TEST(Simd, DetectionAndAvailability) {
  EXPECT_TRUE(simd_backend_available(SimdBackend::kScalar));
  EXPECT_TRUE(simd_backend_available(SimdBackend::kAuto));
  const auto avail = available_simd_backends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), SimdBackend::kScalar);
  // detected_simd_backend must itself be available.
  EXPECT_TRUE(simd_backend_available(detected_simd_backend()));
  // The scalar table publishes no vector bodies; vector tables publish all.
  EXPECT_EQ(simd_ops(SimdBackend::kScalar).gemm_panel, nullptr);
  for (SimdBackend b : vector_backends()) {
    const SimdOps& ops = simd_ops(b);
    EXPECT_EQ(ops.kind, b);
    EXPECT_NE(ops.gemm_panel, nullptr);
    EXPECT_NE(ops.kahan_panel, nullptr);
    EXPECT_NE(ops.reduce_batch, nullptr);
    EXPECT_NE(ops.conv_row, nullptr);
    EXPECT_NE(ops.relu_fwd, nullptr);
    EXPECT_NE(ops.norm_affine_vec, nullptr);
  }
}

TEST(Simd, EnvOverrideStrictValidation) {
  const char* kVar = "EASYSCALE_SIMD";
  ASSERT_EQ(setenv(kVar, "scalar", 1), 0);
  EXPECT_EQ(parse_simd_backend_env(), SimdBackend::kScalar);
  // "auto" and unset both resolve straight to the detected backend.
  ASSERT_EQ(setenv(kVar, "auto", 1), 0);
  EXPECT_EQ(parse_simd_backend_env(), detected_simd_backend());
  // Exact-match only: trailing whitespace and case/format variants are
  // typos, not requests — each must fail loudly naming the variable.
  for (const char* bad : {"avx2 ", " scalar", "AVX-512", "AVX2", "Scalar",
                          "sse", "avx", "best", "auto\t"}) {
    ASSERT_EQ(setenv(kVar, bad, 1), 0);
    EXPECT_THROW(parse_simd_backend_env(), Error) << "value: '" << bad << "'";
  }
  // Valid tokens parse; pinning a backend the host cannot run throws
  // (never silently downgrades).
  for (SimdBackend b : {SimdBackend::kAvx2, SimdBackend::kAvx512}) {
    ASSERT_EQ(setenv(kVar, simd_backend_name(b), 1), 0);
    if (simd_backend_available(b)) {
      EXPECT_EQ(parse_simd_backend_env(), b);
    } else {
      EXPECT_THROW(parse_simd_backend_env(), Error);
    }
  }
  ASSERT_EQ(unsetenv(kVar), 0);
  EXPECT_EQ(parse_simd_backend_env(), detected_simd_backend());
}

TEST(Simd, GemmAllVariantsBitwiseAcrossBackendsAndThreads) {
  const GemmVariant variants[] = {
      GemmVariant::kSequential, GemmVariant::kInterleaved2,
      GemmVariant::kInterleaved4, GemmVariant::kInterleaved8,
      GemmVariant::kBlocked8};
  // Shapes chosen to hit full AVX-512 tiles, full AVX2 tiles, masked
  // remainders in n, and k remainders of every interleave width.  m >= 8
  // shapes route through the packed-B tile layout (ragged last tiles at
  // n = 100 and 130), m < 8 through the unpacked panels.
  const std::int64_t shapes[][3] = {{1, 1, 1},    {3, 5, 7},   {4, 33, 17},
                                    {8, 64, 64},  {5, 100, 129}, {2, 17, 256},
                                    {7, 130, 33}, {1, 16, 9},  {16, 100, 33},
                                    {9, 130, 40}, {12, 96, 24}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    const auto a = random_vec(11 * static_cast<std::uint64_t>(m + n + k), m * k);
    const auto b = random_vec(13 * static_cast<std::uint64_t>(m + n * k), k * n);
    for (GemmVariant v : variants) {
      for (bool accumulate : {false, true}) {
        std::vector<float> ref(static_cast<std::size_t>(m * n), 0.25f);
        const ExecContext scalar_ctx = make_ctx(SimdBackend::kScalar);
        gemm_variant(scalar_ctx, v, m, n, k, a, b, ref, accumulate);
        for (SimdBackend backend : vector_backends()) {
          for (int threads : {1, 4}) {
            std::vector<float> got(static_cast<std::size_t>(m * n), 0.25f);
            const ExecContext ctx = make_ctx(backend, threads);
            gemm_variant(ctx, v, m, n, k, a, b, got, accumulate);
            EXPECT_TRUE(bitwise_equal(ref, got))
                << simd_backend_name(backend) << " threads=" << threads
                << " variant=" << static_cast<int>(v) << " m=" << m
                << " n=" << n << " k=" << k << " acc=" << accumulate;
          }
        }
      }
    }
  }
}

// The packed-B layout must reproduce the unpacked panel bit-for-bit for
// every variant, including at chunk boundaries that land mid-tile and in
// the zero-padded ragged last tile.
TEST(Simd, GemmPackedPanelMatchesUnpackedBitwise) {
  const GemmVariant variants[] = {
      GemmVariant::kSequential, GemmVariant::kInterleaved2,
      GemmVariant::kInterleaved4, GemmVariant::kInterleaved8,
      GemmVariant::kBlocked8};
  const std::int64_t shapes[][2] = {{37, 19}, {100, 64}, {200, 7}, {96, 96}};
  for (SimdBackend backend : vector_backends()) {
    const SimdOps& ops = simd_ops(backend);
    ASSERT_NE(ops.gemm_panel_packed, nullptr);
    ASSERT_GT(ops.gemm_tile_cols, 0);
    const std::int64_t tw = ops.gemm_tile_cols;
    for (const auto& s : shapes) {
      const std::int64_t n = s[0], k = s[1];
      const auto a = random_vec(21, k);
      const auto b = random_vec(23, k * n);
      // Pack exactly as gemm.cpp does: tiles of tw columns, row stride tw,
      // zero-padded past column n.
      const std::int64_t ntiles = (n + tw - 1) / tw;
      std::vector<float> packed(static_cast<std::size_t>(ntiles * tw * k),
                                0.0f);
      for (std::int64_t tile = 0; tile < ntiles; ++tile) {
        const std::int64_t jlo = tile * tw;
        const std::int64_t w = std::min<std::int64_t>(tw, n - jlo);
        for (std::int64_t kk = 0; kk < k; ++kk) {
          for (std::int64_t p = 0; p < w; ++p) {
            packed[static_cast<std::size_t>(tile * k * tw + kk * tw + p)] =
                b[static_cast<std::size_t>(kk * n + jlo + p)];
          }
        }
      }
      // Column ranges: full row, a mid-tile split pair, and a narrow
      // interior window straddling a tile boundary.
      const std::int64_t ranges[][2] = {
          {0, n}, {0, n / 2}, {n / 2, n}, {n / 3, std::min(n, n / 3 + tw)}};
      for (GemmVariant v : variants) {
        for (const auto& r : ranges) {
          const std::int64_t j0 = r[0], j1 = r[1];
          if (j0 >= j1) continue;
          std::vector<float> ref(static_cast<std::size_t>(n), 0.125f);
          std::vector<float> got(static_cast<std::size_t>(n), 0.125f);
          ops.gemm_panel(v, a.data(), b.data(), k, n, j0, j1, ref.data(),
                         true);
          ops.gemm_panel_packed(v, a.data(), packed.data(), k, n, j0, j1,
                                got.data(), true);
          EXPECT_TRUE(bitwise_equal(ref, got))
              << simd_backend_name(backend) << " variant="
              << static_cast<int>(v) << " n=" << n << " k=" << k
              << " j0=" << j0 << " j1=" << j1;
        }
      }
    }
  }
}

TEST(Simd, KahanPanelMatchesKahanDotBitwise) {
  const std::int64_t shapes[][2] = {{7, 5}, {33, 64}, {100, 129}, {256, 17}};
  for (const auto& s : shapes) {
    const std::int64_t k = s[0], n = s[1];
    const auto a = random_vec(3, k);
    const auto b = random_vec(5, k * n);
    for (bool accumulate : {false, true}) {
      std::vector<float> ref(static_cast<std::size_t>(n), 0.5f);
      for (std::int64_t j = 0; j < n; ++j) {
        std::vector<float> col(static_cast<std::size_t>(k));
        for (std::int64_t kk = 0; kk < k; ++kk) {
          col[static_cast<std::size_t>(kk)] =
              b[static_cast<std::size_t>(kk * n + j)];
        }
        const float dot = kahan_dot(a.data(), col.data(), k);
        auto& slot = ref[static_cast<std::size_t>(j)];
        slot = accumulate ? slot + dot : dot;
      }
      for (SimdBackend backend : vector_backends()) {
        const SimdOps& ops = simd_ops(backend);
        ASSERT_NE(ops.kahan_panel, nullptr);
        std::vector<float> got(static_cast<std::size_t>(n), 0.5f);
        ops.kahan_panel(a.data(), b.data(), k, n, 0, n, got.data(),
                        accumulate);
        EXPECT_TRUE(bitwise_equal(ref, got))
            << simd_backend_name(backend) << " k=" << k << " n=" << n
            << " acc=" << accumulate;
      }
    }
  }
}

TEST(Simd, ReduceAllVariantsBitwiseAcrossBackendsAndThreads) {
  const ReduceVariant variants[] = {
      ReduceVariant::kSequential, ReduceVariant::kPairwise64,
      ReduceVariant::kPairwise128, ReduceVariant::kPairwise256};
  // (slots, count): remainder slots vs lane width, and counts around the
  // pairwise leaf widths so the odd-carry fold is exercised.
  const std::int64_t shapes[][2] = {{1, 3},    {5, 64},   {17, 100},
                                    {33, 257}, {129, 65}, {8, 1}};
  for (const auto& s : shapes) {
    const std::int64_t slots = s[0], count = s[1];
    const auto values = random_vec(17, slots * count);
    for (ReduceVariant v : variants) {
      ExecContext scalar_ctx = make_ctx(SimdBackend::kScalar);
      scalar_ctx.device = DeviceType::kT4;  // device is irrelevant here
      std::vector<float> ref(static_cast<std::size_t>(slots), 1.0f);
      {
        // Pin the variant by calling the strided batch through a context
        // whose policy resolves to it is indirect; instead reproduce the
        // reference directly per slot.
        for (std::int64_t slot = 0; slot < slots; ++slot) {
          std::vector<float> gathered(static_cast<std::size_t>(count));
          for (std::int64_t i = 0; i < count; ++i) {
            gathered[static_cast<std::size_t>(i)] =
                values[static_cast<std::size_t>(slot + i * slots)];
          }
          ref[static_cast<std::size_t>(slot)] +=
              reduce_sum_variant(v, gathered);
        }
      }
      for (SimdBackend backend : vector_backends()) {
        const SimdOps& ops = simd_ops(backend);
        ASSERT_NE(ops.reduce_batch, nullptr);
        std::vector<float> got(static_cast<std::size_t>(slots), 1.0f);
        ops.reduce_batch(v, values.data(), slots, count, 0, slots,
                         got.data());
        EXPECT_TRUE(bitwise_equal(ref, got))
            << simd_backend_name(backend) << " variant=" << static_cast<int>(v)
            << " slots=" << slots << " count=" << count;
      }
    }
  }
}

TEST(Simd, ReduceStridedBatchEntryPointBitwise) {
  // End-to-end through reduce_sum_strided_batch (policy-selected variant,
  // parallel_for chunking) across backends and thread counts.
  const std::int64_t stride = 37, count = 120;
  const auto values = random_vec(23, stride * count);
  std::vector<float> ref(static_cast<std::size_t>(stride), 0.0f);
  reduce_sum_strided_batch(make_ctx(SimdBackend::kScalar), values, stride,
                           count, ref);
  for (SimdBackend backend : vector_backends()) {
    for (int threads : {1, 4}) {
      std::vector<float> got(static_cast<std::size_t>(stride), 0.0f);
      reduce_sum_strided_batch(make_ctx(backend, threads), values, stride,
                               count, got);
      EXPECT_TRUE(bitwise_equal(ref, got))
          << simd_backend_name(backend) << " threads=" << threads;
    }
  }
}

TEST(Simd, ConvForwardBothVariantsBitwiseAcrossBackendsAndThreads) {
  // Direct-canonical (D2) exercises conv_row's interior/boundary split;
  // im2col-native exercises the GEMM panels plus the bias add.  Shapes mix
  // strides (the stride-2 cases must take the scalar row path), padding,
  // groups, and widths around both lane counts.
  const Conv2dDims dims[] = {
      {2, 3, 9, 9, 4, 3, 3, 1, 1, 1},     // classic 3x3 pad 1
      {1, 2, 8, 21, 6, 3, 3, 1, 1, 2},    // grouped, wide rows
      {2, 4, 7, 34, 8, 5, 3, 1, 2, 1},    // pad 2, masked interior tail
      {1, 3, 10, 10, 5, 3, 3, 2, 1, 1},   // stride 2: scalar rows
      {1, 1, 4, 4, 2, 4, 4, 1, 0, 1},     // kernel == input, no interior
      {2, 2, 6, 40, 4, 1, 1, 1, 0, 2},    // 1x1 kernel, pure interior
  };
  for (const Conv2dDims& d : dims) {
    const std::int64_t in_elems = d.batch * d.in_channels * d.in_h * d.in_w;
    const std::int64_t w_elems =
        d.out_channels * (d.in_channels / d.groups) * d.kernel_h * d.kernel_w;
    const std::int64_t out_elems =
        d.batch * d.out_channels * d.out_h() * d.out_w();
    const auto input = random_vec(31, in_elems);
    const auto weight = random_vec(37, w_elems);
    const auto bias = random_vec(41, d.out_channels);
    for (KernelPolicy policy :
         {KernelPolicy::kHardwareAgnostic, KernelPolicy::kDeterministic}) {
      std::vector<float> ref(static_cast<std::size_t>(out_elems));
      ExecContext sctx = make_ctx(SimdBackend::kScalar);
      sctx.policy = policy;
      conv2d_forward(sctx, d, input, weight, bias, ref);
      for (SimdBackend backend : vector_backends()) {
        for (int threads : {1, 4}) {
          std::vector<float> got(static_cast<std::size_t>(out_elems));
          ExecContext ctx = make_ctx(backend, threads);
          ctx.policy = policy;
          conv2d_forward(ctx, d, input, weight, bias, got);
          EXPECT_TRUE(bitwise_equal(ref, got))
              << simd_backend_name(backend) << " threads=" << threads
              << " policy=" << static_cast<int>(policy) << " in_w=" << d.in_w
              << " stride=" << d.stride;
        }
      }
    }
  }
}

TEST(Simd, ConvBackwardBothVariantsBitwiseAcrossBackends) {
  const Conv2dDims d = {2, 3, 9, 19, 4, 3, 3, 1, 1, 1};
  const std::int64_t in_elems = d.batch * d.in_channels * d.in_h * d.in_w;
  const std::int64_t w_elems =
      d.out_channels * (d.in_channels / d.groups) * d.kernel_h * d.kernel_w;
  const std::int64_t out_elems =
      d.batch * d.out_channels * d.out_h() * d.out_w();
  const auto input = random_vec(43, in_elems);
  const auto weight = random_vec(47, w_elems);
  const auto grad_out = random_vec(53, out_elems);
  for (KernelPolicy policy :
       {KernelPolicy::kHardwareAgnostic, KernelPolicy::kDeterministic}) {
    std::vector<float> gi_ref(static_cast<std::size_t>(in_elems));
    std::vector<float> gw_ref(static_cast<std::size_t>(w_elems));
    std::vector<float> gb_ref(static_cast<std::size_t>(d.out_channels));
    ExecContext sctx = make_ctx(SimdBackend::kScalar);
    sctx.policy = policy;
    conv2d_backward(sctx, d, input, weight, grad_out, gi_ref, gw_ref, gb_ref);
    for (SimdBackend backend : vector_backends()) {
      for (int threads : {1, 4}) {
        std::vector<float> gi(static_cast<std::size_t>(in_elems));
        std::vector<float> gw(static_cast<std::size_t>(w_elems));
        std::vector<float> gb(static_cast<std::size_t>(d.out_channels));
        ExecContext ctx = make_ctx(backend, threads);
        ctx.policy = policy;
        conv2d_backward(ctx, d, input, weight, grad_out, gi, gw, gb);
        EXPECT_TRUE(bitwise_equal(gi_ref, gi))
            << simd_backend_name(backend) << " threads=" << threads;
        EXPECT_TRUE(bitwise_equal(gw_ref, gw));
        EXPECT_TRUE(bitwise_equal(gb_ref, gb));
      }
    }
  }
}

TEST(Simd, ElementwiseBodiesBitwise) {
  // Sizes straddling both lane widths plus a large run.
  const std::int64_t sizes[] = {1, 7, 8, 9, 15, 16, 17, 31, 33, 1000, 1025};
  for (std::int64_t n : sizes) {
    const auto x = random_vec(61, n);
    const auto g = random_vec(67, n);
    auto s = random_vec(71, n);
    for (auto& v : s) v = 1.0f / (1.0f + v * v);  // sigmoid-like in (0, 1]
    const auto gamma = random_vec(73, n);
    const auto beta = random_vec(79, n);
    const float mean = 0.125f, inv_std = 1.75f, c = 3.0f;

    std::vector<float> relu_ref(static_cast<std::size_t>(n));
    std::vector<float> relu_bwd_ref(static_cast<std::size_t>(n));
    std::vector<float> sig_bwd_ref(static_cast<std::size_t>(n));
    std::vector<float> add_s_ref = g;
    std::vector<float> add_v_ref = g;
    std::vector<float> div_ref = g;
    std::vector<float> xhat_ref(static_cast<std::size_t>(n));
    std::vector<float> affine_ref(static_cast<std::size_t>(n));
    std::vector<float> xhat2_ref(static_cast<std::size_t>(n));
    std::vector<float> affine2_ref(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      relu_ref[u] = x[u] > 0.0f ? x[u] : 0.0f;
      relu_bwd_ref[u] = x[u] > 0.0f ? g[u] : 0.0f;
      sig_bwd_ref[u] = g[u] * s[u] * (1.0f - s[u]);
      add_s_ref[u] += c;
      add_v_ref[u] += x[u];
      div_ref[u] /= c;
      xhat_ref[u] = (x[u] - mean) * inv_std;
      affine_ref[u] = gamma[u] * xhat_ref[u] + beta[u];
      xhat2_ref[u] = (x[u] - mean) * inv_std;
      affine2_ref[u] = gamma[0] * xhat2_ref[u] + beta[0];
    }
    for (SimdBackend backend : vector_backends()) {
      const SimdOps& ops = simd_ops(backend);
      std::vector<float> out(static_cast<std::size_t>(n));
      ops.relu_fwd(x.data(), out.data(), n);
      EXPECT_TRUE(bitwise_equal(relu_ref, out)) << "relu n=" << n;
      ops.relu_bwd(x.data(), g.data(), out.data(), n);
      EXPECT_TRUE(bitwise_equal(relu_bwd_ref, out)) << "relu_bwd n=" << n;
      ops.sigmoid_bwd(s.data(), g.data(), out.data(), n);
      EXPECT_TRUE(bitwise_equal(sig_bwd_ref, out)) << "sigmoid_bwd n=" << n;
      out = g;
      ops.add_scalar(out.data(), c, n);
      EXPECT_TRUE(bitwise_equal(add_s_ref, out)) << "add_scalar n=" << n;
      out = g;
      ops.add_vec(out.data(), x.data(), n);
      EXPECT_TRUE(bitwise_equal(add_v_ref, out)) << "add_vec n=" << n;
      out = g;
      ops.div_scalar(out.data(), c, n);
      EXPECT_TRUE(bitwise_equal(div_ref, out)) << "div_scalar n=" << n;
      std::vector<float> xhat(static_cast<std::size_t>(n));
      ops.norm_affine_vec(x.data(), gamma.data(), beta.data(), mean, inv_std,
                          xhat.data(), out.data(), n);
      EXPECT_TRUE(bitwise_equal(xhat_ref, xhat)) << "norm xhat n=" << n;
      EXPECT_TRUE(bitwise_equal(affine_ref, out)) << "norm out n=" << n;
      ops.norm_affine_scalar(x.data(), gamma[0], beta[0], mean, inv_std,
                             xhat.data(), out.data(), n);
      EXPECT_TRUE(bitwise_equal(xhat2_ref, xhat)) << "normS xhat n=" << n;
      EXPECT_TRUE(bitwise_equal(affine2_ref, out)) << "normS out n=" << n;
    }
  }
}

TEST(Simd, GemmEntryPointWithCustomKahanPanelBitwise) {
  // The custom-D2 path: a kernel registered WITH a panel runs vectorized
  // against unpacked B and must match the scalar packed path bit-for-bit.
  static const int handle =
      register_custom_gemm("kahan_simd_sweep", kahan_dot, kahan_panel());
  const std::int64_t m = 5, n = 67, k = 43;
  const auto a = random_vec(83, m * k);
  const auto b = random_vec(89, k * n);
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  ExecContext sctx = make_ctx(SimdBackend::kScalar);
  sctx.policy = KernelPolicy::kHardwareAgnostic;
  sctx.custom_gemm = handle;
  gemm(sctx, m, n, k, a, b, ref, false);
  for (SimdBackend backend : vector_backends()) {
    for (int threads : {1, 4}) {
      std::vector<float> got(static_cast<std::size_t>(m * n));
      ExecContext ctx = make_ctx(backend, threads);
      ctx.policy = KernelPolicy::kHardwareAgnostic;
      ctx.custom_gemm = handle;
      gemm(ctx, m, n, k, a, b, got, false);
      EXPECT_TRUE(bitwise_equal(ref, got))
          << simd_backend_name(backend) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace easyscale::kernels
