// Peer-replicated checkpointing (fault/peer_checkpoint.hpp): frame
// integrity under every single-byte corruption and truncation, replica
// placement rules, the two-phase epoch commit protocol, and the crash-point
// sweep — whatever state the pipeline dies in (frame torn at any byte
// offset in flight, staged-only, prepared-but-unblessed, aborted), recovery
// must never surface a torn or unblessed epoch.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "comm/transport.hpp"
#include "common/error.hpp"
#include "core/checkpoint_manager.hpp"
#include "fault/injector.hpp"
#include "fault/peer_checkpoint.hpp"

namespace easyscale::fault {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xFF);
  }
  return out;
}

comm::TransportConfig fast_fabric() {
  comm::TransportConfig cfg;
  cfg.recv_deadline_s = 0.05;
  return cfg;
}

PeerFrame sample_frame(std::size_t payload_size) {
  PeerFrame frame;
  frame.epoch = 7;
  frame.owner = 1;
  frame.world = 4;
  frame.payload = pattern_bytes(payload_size, 0x5A);
  return frame;
}

TEST(PeerCheckpointFrame, SerializeParseRoundTrip) {
  const PeerFrame frame = sample_frame(10000);  // > 2 slabs
  const auto wire = frame.serialize();
  const PeerFrame back = PeerFrame::parse(wire);
  EXPECT_EQ(back.epoch, frame.epoch);
  EXPECT_EQ(back.owner, frame.owner);
  EXPECT_EQ(back.world, frame.world);
  EXPECT_EQ(back.payload, frame.payload);
}

TEST(PeerCheckpointFrame, EmptyPayloadRoundTrips) {
  PeerFrame frame;
  frame.epoch = 1;
  frame.owner = 0;
  frame.world = 2;
  const PeerFrame back = PeerFrame::parse(frame.serialize());
  EXPECT_TRUE(back.payload.empty());
}

// The satellite crash-point sweep, corruption axis: flip EVERY byte of a
// serialized frame, one at a time; parse must reject every variant.  This
// is the property that makes a torn in-flight frame harmless — whatever
// byte the crash mangled, the frame cannot enter a recovery.
TEST(PeerCheckpointCrashSweep, EveryFlippedByteFailsParse) {
  const auto wire = sample_frame(700).serialize();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    auto torn = wire;
    torn[i] ^= 0x40;
    EXPECT_THROW((void)PeerFrame::parse(torn), Error)
        << "flipped byte " << i << " of " << wire.size() << " parsed";
  }
}

// Truncation axis: a crash mid-transfer leaves a prefix.  Every proper
// prefix must fail the parse.
TEST(PeerCheckpointCrashSweep, EveryTruncationFailsParse) {
  const auto wire = sample_frame(300).serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::vector<std::uint8_t> torn(wire.begin(), wire.begin() + len);
    EXPECT_THROW((void)PeerFrame::parse(torn), Error)
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(PeerCheckpointPlacement, RingOrderSkipsOwnNodeAndExcluded) {
  // 8 ranks, 2 per node.  Owner 0's node holds {0,1}.
  EXPECT_EQ(choose_peers(0, 8, 2, 2, {}), (std::vector<int>{2, 3}));
  // Excluding 2 shifts to the next off-node candidates.
  EXPECT_EQ(choose_peers(0, 8, 2, 2, {2}), (std::vector<int>{3, 4}));
  // Wrap-around: owner 7's node holds {6,7}.
  EXPECT_EQ(choose_peers(7, 8, 2, 2, {}), (std::vector<int>{0, 1}));
  // One rank per node: only the owner itself is skipped.
  EXPECT_EQ(choose_peers(1, 4, 3, 1, {}), (std::vector<int>{2, 3, 0}));
}

TEST(PeerCheckpointPlacement, DegradesWhenClusterTooSmall) {
  // Everyone shares the owner's node: nowhere safe to place.
  EXPECT_TRUE(choose_peers(0, 4, 2, 4, {}).empty());
  // Exclusions can starve the set below `replicas`.
  EXPECT_EQ(choose_peers(0, 4, 3, 1, {2, 3}), (std::vector<int>{1}));
  EXPECT_TRUE(choose_peers(0, 2, 1, 1, {1}).empty());
}

TEST(PeerCheckpointStore, PutFindDropAndPinnedGc) {
  PeerReplicaStore store;
  store.put(0, 5, pattern_bytes(8, 1));
  store.put(1, 5, pattern_bytes(8, 2));
  store.put(0, 9, pattern_bytes(8, 3));
  ASSERT_NE(store.find(0, 5), nullptr);
  EXPECT_EQ(store.find(2, 5), nullptr);
  EXPECT_TRUE(store.drop(1, 5));
  EXPECT_FALSE(store.drop(1, 5));  // already gone
  store.put(1, 5, pattern_bytes(8, 2));
  store.gc_below(9, /*pinned=*/{5});
  // Epoch 5 was pinned through the GC; epoch 9 is above the floor.
  EXPECT_NE(store.find(0, 5), nullptr);
  EXPECT_NE(store.find(1, 5), nullptr);
  EXPECT_NE(store.find(0, 9), nullptr);
  store.gc_below(10, /*pinned=*/{});
  EXPECT_EQ(store.size(), 0u);
}

PeerCheckpointConfig service_config(int replicas) {
  PeerCheckpointConfig cfg;
  cfg.replicas = replicas;
  cfg.keep_epochs = 2;
  return cfg;
}

TEST(PeerCheckpointService, SnapshotRecoverRoundTrip) {
  comm::SimTransport fabric(4, fast_fabric());
  PeerCheckpointService svc(fabric, service_config(2));
  const auto snapshot = pattern_bytes(5000, 0x11);
  ASSERT_TRUE(svc.snapshot(1, snapshot, {}));
  EXPECT_EQ(svc.stats().epochs_committed, 1);
  // Every rank can reassemble, with or without fetches.
  for (int requester = 0; requester < 4; ++requester) {
    const auto rec = svc.recover(requester, {});
    ASSERT_TRUE(rec.has_value()) << "requester " << requester;
    EXPECT_EQ(rec->epoch, 1);
    EXPECT_EQ(rec->snapshot, snapshot);
  }
}

TEST(PeerCheckpointService, SurvivesOwnerDeath) {
  comm::SimTransport fabric(4, fast_fabric());
  PeerCheckpointService svc(fabric, service_config(2));
  const auto snapshot = pattern_bytes(4096, 0x22);
  ASSERT_TRUE(svc.snapshot(3, snapshot, {}));
  // Rank 2 dies; its owner copy and every replica it held are gone.
  svc.mark_dead(2);
  const auto rec = svc.recover(0, {});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->snapshot, snapshot);
  EXPECT_GT(rec->frames_fetched, 0);  // some frames were not requester-local
}

TEST(PeerCheckpointService, QuorumLossWalksBackOneEpoch) {
  comm::SimTransport fabric(4, fast_fabric());
  PeerCheckpointConfig cfg = service_config(1);  // one peer copy per frame
  PeerCheckpointService svc(fabric, cfg);
  const auto old_snapshot = pattern_bytes(2048, 0x33);
  const auto new_snapshot = pattern_bytes(2048, 0x44);
  ASSERT_TRUE(svc.snapshot(1, old_snapshot, {}));
  ASSERT_TRUE(svc.snapshot(2, new_snapshot, {}));
  // Wipe every copy of epoch 2's frame owned by rank 1 (owner + 1 peer).
  for (int holder = 0; holder < 4; ++holder) {
    auto& store = const_cast<PeerReplicaStore&>(svc.store(holder));
    store.drop(/*owner=*/1, /*epoch=*/2);
  }
  const auto rec = svc.recover(0, {});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->epoch, 1) << "must fall back to the older committed epoch";
  EXPECT_EQ(rec->snapshot, old_snapshot);
  EXPECT_GE(svc.stats().quorum_failures, 1);
}

// Crash-point sweep, protocol axis: kill the pipeline at each commit state
// and check recovery never sees the unfinished epoch.
TEST(PeerCheckpointCrashSweep, StagedOnlyEpochIsInvisible) {
  comm::SimTransport fabric(4, fast_fabric());
  PeerCheckpointService svc(fabric, service_config(2));
  ASSERT_TRUE(svc.snapshot(1, pattern_bytes(1024, 0x55), {}));
  svc.stage(2, pattern_bytes(1024, 0x66));  // crash before replicate
  EXPECT_TRUE(svc.has_staged());
  const auto rec = svc.recover(0, {});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->epoch, 1);  // epoch 2 never replicated, never visible
}

TEST(PeerCheckpointCrashSweep, PreparedButUnblessedEpochIsInvisible) {
  comm::SimTransport fabric(4, fast_fabric());
  PeerCheckpointService svc(fabric, service_config(2));
  ASSERT_TRUE(svc.snapshot(1, pattern_bytes(1024, 0x77), {}));
  svc.stage(2, pattern_bytes(1024, 0x88));
  ASSERT_TRUE(svc.replicate_staged({}));  // crash between phases 1 and 2
  EXPECT_TRUE(svc.has_prepared());
  const auto rec = svc.recover(0, {});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->epoch, 1) << "phase-1-complete epoch must stay invisible "
                              "until the bless";
  EXPECT_EQ(svc.commits().size(), 1u);
}

TEST(PeerCheckpointCrashSweep, AbortedEpochIsDrainedEverywhere) {
  comm::SimTransport fabric(2, fast_fabric());
  PeerCheckpointService svc(fabric, service_config(1));
  ASSERT_TRUE(svc.snapshot(1, pattern_bytes(1024, 0x99), {}));
  // Drop every push attempt rank 1 will make for its epoch-2 frame: the
  // frame ends with zero peer copies while a peer was placeable → abort.
  for (int attempt = 0; attempt < 4; ++attempt) {
    comm::CommFaultEvent drop;
    drop.kind = comm::LinkFaultKind::kDropChunk;
    drop.rank = 1;
    fabric.inject(drop);
  }
  fabric.begin_collective();  // arm the injected events
  svc.stage(2, pattern_bytes(1024, 0xAA));
  EXPECT_FALSE(svc.replicate_staged({}));
  EXPECT_EQ(svc.stats().epochs_aborted, 1);
  EXPECT_FALSE(svc.has_prepared());
  // No store anywhere may hold a byte of the drained epoch — including the
  // owner copies that were stored before the abort was discovered.
  for (int holder = 0; holder < 2; ++holder) {
    for (int owner = 0; owner < 2; ++owner) {
      EXPECT_EQ(svc.store(holder).find(owner, 2), nullptr)
          << "holder " << holder << " kept owner " << owner
          << "'s frame of the aborted epoch";
    }
  }
  // The committed epoch is untouched by the abort.
  const auto rec = svc.recover(0, {});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->epoch, 1);
}

TEST(PeerCheckpointService, RetentionKeepsLastKeepEpochs) {
  comm::SimTransport fabric(4, fast_fabric());
  PeerCheckpointService svc(fabric, service_config(2));  // keep_epochs = 2
  for (std::int64_t e = 1; e <= 5; ++e) {
    ASSERT_TRUE(svc.snapshot(e, pattern_bytes(512, static_cast<std::uint8_t>(e)),
                             {}));
  }
  EXPECT_EQ(svc.commits().size(), 2u);
  EXPECT_EQ(svc.commits().front().epoch, 4);
  EXPECT_EQ(svc.commits().back().epoch, 5);
  for (int holder = 0; holder < 4; ++holder) {
    for (const auto& [owner, epoch] : svc.store(holder).entries()) {
      EXPECT_GE(epoch, 4) << "GC left epoch " << epoch << " at " << holder;
    }
  }
}

TEST(PeerCheckpointService, PinnedEpochSurvivesGc) {
  comm::SimTransport fabric(4, fast_fabric());
  PeerCheckpointService svc(fabric, service_config(2));
  ASSERT_TRUE(svc.snapshot(1, pattern_bytes(512, 0x01), {}));
  svc.pin_epoch(1);
  for (std::int64_t e = 2; e <= 5; ++e) {
    ASSERT_TRUE(svc.snapshot(e, pattern_bytes(512, static_cast<std::uint8_t>(e)),
                             {}));
  }
  const auto rec = svc.recover(0, {});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->epoch, 5);
  // The pinned epoch's record and frames are still reachable.
  bool pinned_committed = false;
  for (const auto& c : svc.commits()) pinned_committed |= c.epoch == 1;
  EXPECT_TRUE(pinned_committed);
}

TEST(PeerCheckpointService, DropRandomReplicaIsSeededAndCounted) {
  comm::SimTransport fabric_a(4, fast_fabric());
  comm::SimTransport fabric_b(4, fast_fabric());
  PeerCheckpointService a(fabric_a, service_config(2));
  PeerCheckpointService b(fabric_b, service_config(2));
  for (auto* svc : {&a, &b}) {
    ASSERT_TRUE(svc->snapshot(1, pattern_bytes(2048, 0xBC), {}));
  }
  ASSERT_TRUE(a.drop_random_replica(2, 0xDEAD));
  ASSERT_TRUE(b.drop_random_replica(2, 0xDEAD));
  EXPECT_EQ(a.store(2).entries(), b.store(2).entries())
      << "the same seed must evict the same frame";
  EXPECT_EQ(a.stats().replicas_dropped, 1);
  // An empty shelf and a dead rank both decline the drop.
  while (a.store(0).size() > 0) ASSERT_TRUE(a.drop_random_replica(0, 9));
  EXPECT_FALSE(a.drop_random_replica(0, 9));
  a.mark_dead(3);
  EXPECT_FALSE(a.drop_random_replica(3, 9));
}

TEST(PeerCheckpointService, ExcludedRanksHoldNothingAndServeNothing) {
  comm::SimTransport fabric(4, fast_fabric());
  PeerCheckpointService svc(fabric, service_config(2));
  const std::set<int> quarantined{2};
  ASSERT_TRUE(svc.snapshot(1, pattern_bytes(3000, 0xCD), quarantined));
  // Placement never handed rank 2 a replica (its own frame's owner copy is
  // also withheld — nothing an SDC-quarantined device holds is trusted).
  EXPECT_EQ(svc.store(2).size(), 0u);
  const auto rec = svc.recover(0, quarantined);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->snapshot, pattern_bytes(3000, 0xCD));
}

// --- CheckpointManager epoch API: the on-disk half of the commit protocol.

std::string temp_prefix(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

core::CheckpointManager fresh_manager(const char* name) {
  core::CheckpointManager mgr(temp_prefix(name), 3);
  mgr.gc_epochs(0);  // reap leftovers from earlier runs of this binary
  return mgr;
}

TEST(PeerCheckpointEpochDisk, TwoPhaseBlessRoundTrip) {
  auto mgr = fresh_manager("epoch_roundtrip");
  const auto bytes = pattern_bytes(256, 0x10);
  mgr.save_epoch(3, bytes, DigestChain());
  EXPECT_FALSE(mgr.is_blessed(3)) << "phase 1 must not bless";
  EXPECT_FALSE(mgr.load_latest_blessed_epoch().has_value());
  EXPECT_TRUE(mgr.bless_epoch(3));
  EXPECT_TRUE(mgr.is_blessed(3));
  const auto loaded = mgr.load_latest_blessed_epoch();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(std::get<0>(*loaded), 3);
  EXPECT_EQ(std::get<1>(*loaded), bytes);
  mgr.gc_epochs(0);
}

TEST(PeerCheckpointEpochDisk, TornEpochFileIsSkippedAndSurvivorsLoad) {
  auto mgr = fresh_manager("epoch_torn");
  mgr.save_epoch(1, pattern_bytes(256, 0x21), DigestChain());
  ASSERT_TRUE(mgr.bless_epoch(1));
  mgr.save_epoch(2, pattern_bytes(256, 0x22), DigestChain());
  ASSERT_TRUE(mgr.bless_epoch(2));
  // The torn-write sweep on a survivor: mangle the NEWEST blessed epoch at
  // a seeded offset; the walk-back must land on the older intact epoch.
  FaultInjector::tear_file(mgr.epoch_path_for(2), /*seed=*/7);
  const auto loaded = mgr.load_latest_blessed_epoch();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(std::get<0>(*loaded), 1);
  EXPECT_EQ(std::get<1>(*loaded), pattern_bytes(256, 0x21));
  mgr.gc_epochs(0);
}

TEST(PeerCheckpointEpochDisk, GcKeepsNewestBlessedPlusPinned) {
  auto mgr = fresh_manager("epoch_gc");
  for (std::int64_t e = 1; e <= 5; ++e) {
    mgr.save_epoch(e, pattern_bytes(64, static_cast<std::uint8_t>(e)),
                   DigestChain());
    ASSERT_TRUE(mgr.bless_epoch(e));
  }
  mgr.save_epoch(6, pattern_bytes(64, 6), DigestChain());  // unblessed
  mgr.pin_epoch(1);
  const int removed = mgr.gc_epochs(/*keep_blessed=*/2);
  EXPECT_EQ(removed, 3);  // epochs 2, 3 and the unblessed 6 go; 1 pinned
  EXPECT_EQ(mgr.epochs_on_disk(), (std::vector<std::int64_t>{1, 4, 5}));
  // The torn-write sweep still passes on the survivors.
  for (const auto e : mgr.epochs_on_disk()) {
    EXPECT_TRUE(mgr.is_blessed(e)) << "epoch " << e;
  }
  mgr.unpin_epoch(1);
  mgr.gc_epochs(0);
}

TEST(PeerCheckpointEpochDisk, CrashBetweenPhasesLeavesEpochInvisible) {
  auto mgr = fresh_manager("epoch_crash");
  mgr.save_epoch(1, pattern_bytes(64, 0x31), DigestChain());
  ASSERT_TRUE(mgr.bless_epoch(1));
  // Phase 1 of epoch 2 lands, then the process dies before the bless.
  mgr.save_epoch(2, pattern_bytes(64, 0x32), DigestChain());
  const auto loaded = mgr.load_latest_blessed_epoch();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(std::get<0>(*loaded), 1) << "unblessed epoch must be invisible";
  // ... and GC reaps the orphan rather than letting it shield anything.
  mgr.gc_epochs(1);
  EXPECT_EQ(mgr.epochs_on_disk(), (std::vector<std::int64_t>{1}));
  mgr.gc_epochs(0);
}

TEST(PeerCheckpointEpochDisk, StaleSidecarCannotBlessNewBytes) {
  auto mgr = fresh_manager("epoch_stale");
  mgr.save_epoch(4, pattern_bytes(64, 0x41), DigestChain());
  ASSERT_TRUE(mgr.bless_epoch(4));
  // The epoch number is reused with different bytes (a rollback replay).
  mgr.save_epoch(4, pattern_bytes(64, 0x42), DigestChain());
  EXPECT_FALSE(mgr.is_blessed(4))
      << "save_epoch must invalidate the previous life's sidecar";
  mgr.gc_epochs(0);
}

}  // namespace
}  // namespace easyscale::fault
