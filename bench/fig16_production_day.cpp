// Fig 16: one-day statistic on the 3,000+ GPU production cluster.  Day 1 is
// serving-only; on day 2 EasyScale jobs opportunistically fill the idle
// GPUs, scaling in within seconds when serving demand returns.
// Paper: +17.1% GPU allocation ratio, +62.1% average GPU (SM) utilization,
// 362 preemptions, zero failed jobs, ~459 idle GPUs used on average.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/colocation.hpp"
#include "trace/generators.hpp"

int main() {
  using namespace easyscale;
  bench::banner("Fig 16", "production co-location, day-1 vs day-2");

  trace::ServingLoadConfig lcfg;
  const auto demand = trace::serving_load_curve(lcfg);
  sim::ColocationConfig ccfg;
  ccfg.total_gpus = lcfg.total_gpus;
  const auto r = sim::simulate_colocation(demand, ccfg);

  std::printf("%8s %16s %16s %10s %8s\n", "hour", "day1_alloc%",
              "day2_alloc%", "train_gpus", "util2%");
  for (std::size_t h = 0; h < 24; ++h) {
    const auto& p1 = r.day1[h * 60];
    const auto& p2 = r.day2[h * 60];
    std::printf("%8zu %15.1f%% %15.1f%% %10lld %7.1f%%\n", h,
                100.0 * p1.alloc_ratio, 100.0 * p2.alloc_ratio,
                static_cast<long long>(p2.training_gpus),
                100.0 * p2.sm_util);
  }
  std::printf("\nsummary:\n");
  std::printf("  GPU allocation ratio: %.1f%% -> %.1f%% (+%.1f%%; paper "
              "+17.1%%)\n",
              100.0 * r.day1_alloc_ratio, 100.0 * r.day2_alloc_ratio,
              100.0 * (r.day2_alloc_ratio - r.day1_alloc_ratio));
  std::printf("  avg GPU SM utilization: %.1f%% -> %.1f%% (+%.1f%% relative; "
              "paper +62.1%%)\n",
              100.0 * r.day1_util, 100.0 * r.day2_util,
              100.0 * (r.day2_util / r.day1_util - 1.0));
  std::printf("  avg idle GPUs used by EasyScale: %.0f (paper: 459)\n",
              r.avg_training_gpus_day2);
  std::printf("  preemptions (scale-in events): %lld, failed jobs: %lld "
              "(paper: 362 preemptions, 0 failures)\n",
              static_cast<long long>(r.preemptions),
              static_cast<long long>(r.failed_jobs));
  std::printf("  scale-in latency: one tick (%.0f s); refill after serving "
              "drop within ~%.0f s (paper: seconds / <5 min)\n",
              10.0, r.max_refill_s);
  return 0;
}
