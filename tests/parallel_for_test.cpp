// ComputePool / parallel_for contract: static size-derived partitioning,
// exception propagation, nested-inline behavior, lazy growth, and safety
// under concurrent callers (the engine's parallel_workers composition).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/digest.hpp"
#include "common/parallel_for.hpp"

namespace easyscale {
namespace {

TEST(ParallelFor, PartitionCoversRangeExactlyOnce) {
  ComputePool pool(3);
  for (const std::int64_t n : {0L, 1L, 7L, 64L, 1000L, 1023L}) {
    for (const int ways : {1, 2, 3, 4, 8}) {
      for (const std::int64_t grain : {1L, 5L, 100L}) {
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
        pool.parallel_for(ways, n, grain,
                          [&](int /*chunk*/, std::int64_t b, std::int64_t e) {
                            for (std::int64_t i = b; i < e; ++i) {
                              hits[static_cast<std::size_t>(i)].fetch_add(1);
                            }
                          });
        for (std::int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
              << "n=" << n << " ways=" << ways << " grain=" << grain
              << " i=" << i;
        }
      }
    }
  }
}

TEST(ParallelFor, ChunkBoundariesAreSizeDerived) {
  // The same (n, ways, grain) must produce the same chunk set no matter how
  // many helpers exist or which run we observe.
  auto boundaries = [](ComputePool& pool, int ways, std::int64_t n,
                       std::int64_t grain) {
    std::mutex m;
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    pool.parallel_for(ways, n, grain,
                      [&](int /*chunk*/, std::int64_t b, std::int64_t e) {
                        std::lock_guard<std::mutex> lock(m);
                        out.emplace_back(b, e);
                      });
    std::sort(out.begin(), out.end());
    return out;
  };
  ComputePool small(1);
  ComputePool large(7);
  for (const std::int64_t n : {10L, 100L, 999L}) {
    EXPECT_EQ(boundaries(small, 4, n, 1), boundaries(large, 4, n, 1));
    EXPECT_EQ(boundaries(small, 8, n, 16), boundaries(large, 8, n, 16));
  }
}

TEST(ParallelFor, ZeroHelperPoolGrowsOnDemand) {
  // A pool constructed empty defers thread creation; the first multi-way
  // call grows it to ways-1 helpers and still covers the range exactly.
  ComputePool pool(0);
  EXPECT_EQ(pool.helpers(), 0u);
  std::atomic<std::int64_t> covered{0};
  pool.parallel_for(4, 100, 1,
                    [&](int /*chunk*/, std::int64_t b, std::int64_t e) {
                      covered += e - b;
                    });
  EXPECT_EQ(covered.load(), 100);
  EXPECT_EQ(pool.helpers(), 3u);
}

TEST(ParallelFor, SingleWayRunsOnCallerWithoutGrowth) {
  ComputePool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  std::atomic<std::int64_t> covered{0};
  pool.parallel_for(1, 100, 1,
                    [&](int /*chunk*/, std::int64_t b, std::int64_t e) {
                      if (std::this_thread::get_id() != caller) {
                        off_thread = true;
                      }
                      covered += e - b;
                    });
  EXPECT_FALSE(off_thread.load());
  EXPECT_EQ(covered.load(), 100);
  EXPECT_EQ(pool.helpers(), 0u);  // single-way never spawns threads
}

TEST(ParallelFor, NestedCallsRunInline) {
  ComputePool pool(3);
  std::atomic<int> outer_chunks{0};
  std::atomic<std::int64_t> inner_total{0};
  pool.parallel_for(4, 8, 1,
                    [&](int /*chunk*/, std::int64_t b, std::int64_t e) {
                      EXPECT_TRUE(ComputePool::in_parallel_region());
                      ++outer_chunks;
                      // A nested call must not deadlock and must still cover
                      // its range (inline, single chunk).
                      pool.parallel_for(
                          4, 10, 1,
                          [&](int chunk, std::int64_t ib, std::int64_t ie) {
                            EXPECT_EQ(chunk, 0);
                            inner_total += ie - ib;
                          });
                      (void)b;
                      (void)e;
                    });
  EXPECT_FALSE(ComputePool::in_parallel_region());
  // Each outer chunk's nested call covers the full inner range inline.
  EXPECT_EQ(inner_total.load(), outer_chunks.load() * 10);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ComputePool pool(3);
  EXPECT_THROW(
      pool.parallel_for(4, 100, 1,
                        [&](int /*chunk*/, std::int64_t b, std::int64_t /*e*/) {
                          if (b == 0) throw std::runtime_error("chunk failure");
                        }),
      std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<std::int64_t> covered{0};
  pool.parallel_for(4, 50, 1,
                    [&](int /*chunk*/, std::int64_t b, std::int64_t e) {
                      covered += e - b;
                    });
  EXPECT_EQ(covered.load(), 50);
}

TEST(ParallelFor, EnsureHelpersGrowsNeverShrinks) {
  ComputePool pool(1);
  EXPECT_EQ(pool.helpers(), 1u);
  pool.ensure_helpers(3);
  EXPECT_EQ(pool.helpers(), 3u);
  pool.ensure_helpers(2);  // no shrink
  EXPECT_EQ(pool.helpers(), 3u);
}

TEST(ParallelFor, ResultsBitwiseEqualAcrossWays) {
  // Owner-computes float work: out[i] = f(i) with a per-element sequential
  // accumulation.  Must be bitwise identical for every ways value.
  auto run = [](ComputePool& pool, int ways) {
    const std::int64_t n = 4096;
    std::vector<float> out(static_cast<std::size_t>(n));
    pool.parallel_for(ways, n, 64,
                      [&](int /*chunk*/, std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i) {
                          float acc = 0.0f;
                          for (int j = 1; j <= 32; ++j) {
                            acc += 1.0f / static_cast<float>(i + j);
                          }
                          out[static_cast<std::size_t>(i)] = acc;
                        }
                      });
    return digest_floats(out);
  };
  ComputePool pool(7);
  const auto d1 = run(pool, 1);
  EXPECT_EQ(d1, run(pool, 2));
  EXPECT_EQ(d1, run(pool, 4));
  EXPECT_EQ(d1, run(pool, 8));
}

TEST(ParallelFor, ConcurrentCallersShareOnePool) {
  // Two caller threads issuing parallel_for on the same pool concurrently —
  // the engine's parallel_workers + intra-op composition.  Completion of one
  // call must never depend on or consume the other's chunks.
  ComputePool pool(4);
  auto work = [&pool](std::vector<float>& out) {
    const std::int64_t n = static_cast<std::int64_t>(out.size());
    for (int rep = 0; rep < 50; ++rep) {
      pool.parallel_for(4, n, 16,
                        [&](int /*chunk*/, std::int64_t b, std::int64_t e) {
                          for (std::int64_t i = b; i < e; ++i) {
                            out[static_cast<std::size_t>(i)] += 1.0f;
                          }
                        });
    }
  };
  std::vector<float> a(1000, 0.0f), b(1000, 0.0f);
  std::thread ta([&] { work(a); });
  std::thread tb([&] { work(b); });
  ta.join();
  tb.join();
  for (float v : a) ASSERT_EQ(v, 50.0f);
  for (float v : b) ASSERT_EQ(v, 50.0f);
}

TEST(ParallelFor, EnvDefaultIsCachedAndClamped) {
  const int v = ComputePool::env_default_threads();
  EXPECT_GE(v, 1);
  EXPECT_LE(v, 256);
  EXPECT_EQ(v, ComputePool::env_default_threads());
}

}  // namespace
}  // namespace easyscale
