// Unit tests for the parallelism planner (parallel::Plan), the sharded
// collectives (comm/shard), and the sliced optimizer path — the pieces
// whose composition makes a ZeRO-1 sharded step bitwise identical to the
// replicated step (docs/PARALLELISM.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "autograd/parameter.hpp"
#include "comm/allreduce.hpp"
#include "comm/bucket.hpp"
#include "comm/shard.hpp"
#include "common/digest.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "parallel/plan.hpp"
#include "rng/sampling.hpp"
#include "sim/shard_cost.hpp"

namespace easyscale {
namespace {

using comm::BucketLayout;
using comm::BucketManager;
using comm::GradientSet;
using parallel::ChunkBounds;
using parallel::Plan;

// --- Fixtures ---------------------------------------------------------

/// A small multi-parameter model surrogate whose sizes do not divide
/// evenly into 16 chunks (forces chunk boundaries inside parameters).
struct Params {
  autograd::Parameter a{"a", tensor::Shape{37}};
  autograd::Parameter b{"b", tensor::Shape{5, 5}};
  autograd::Parameter c{"c", tensor::Shape{3}};
  autograd::Parameter d{"d", tensor::Shape{19}};
  autograd::ParameterStore store;

  Params() {
    store.register_parameter(&a);
    store.register_parameter(&b);
    store.register_parameter(&c);
    store.register_parameter(&d);
  }
};

void randomize(autograd::ParameterStore& store, std::uint64_t seed) {
  rng::Philox gen(seed);
  for (auto* p : store.all()) {
    rng::fill_normal(gen, p->value.data(), 0.0f, 1.0f);
    rng::fill_normal(gen, p->grad.data(), 0.0f, 1.0f);
  }
}

std::uint64_t values_digest(const autograd::ParameterStore& store) {
  Digest d;
  for (const auto* p : store.all()) d.update(p->value.data());
  return d.value();
}

// --- Planner ----------------------------------------------------------

TEST(Planner, PartitionChunksCoversSpaceContiguously) {
  for (std::int64_t n : {0, 1, 15, 16, 17, 100, 8901}) {
    for (int chunks : {1, 2, 7, 16}) {
      const auto bounds = parallel::partition_chunks(n, chunks);
      ASSERT_EQ(static_cast<int>(bounds.size()), chunks);
      std::int64_t expected = 0;
      for (const auto& c : bounds) {
        EXPECT_EQ(c.begin, expected);
        EXPECT_GE(c.end, c.begin);
        expected = c.end;
      }
      EXPECT_EQ(expected, n);
      // Near-equal: chunk sizes differ by at most one element.
      std::int64_t lo = n, hi = 0;
      for (const auto& c : bounds) {
        lo = std::min(lo, c.end - c.begin);
        hi = std::max(hi, c.end - c.begin);
      }
      EXPECT_LE(hi - lo, 1);
    }
  }
}

TEST(Planner, ChunkBoundsIndependentOfShardDegree) {
  Params p;
  const Plan d1 = parallel::make_plan(4, 1, p.store);
  const Plan d2 = parallel::make_plan(4, 2, p.store);
  const Plan d4 = parallel::make_plan(4, 4, p.store);
  EXPECT_EQ(d1.chunks, d2.chunks);
  EXPECT_EQ(d2.chunks, d4.chunks);
  // And of world size: the partition is a function of the model alone.
  EXPECT_EQ(parallel::make_plan(8, 2, p.store).chunks, d2.chunks);
}

TEST(Planner, InterleavedOwnership) {
  Params p;
  const Plan plan = parallel::make_plan(8, 4, p.store);
  EXPECT_EQ(plan.data_replicas(), 2);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(plan.shard_index(r), r % 4);
  for (std::size_t c = 0; c < plan.chunks.size(); ++c) {
    EXPECT_EQ(plan.chunk_owner(c), static_cast<int>(c) % 4);
    EXPECT_EQ(plan.canonical_rank(c), plan.chunk_owner(c));
  }
}

TEST(Planner, ShardSlicesPartitionTheFlattenedSpace) {
  Params p;
  const Plan plan = parallel::make_plan(4, 4, p.store);
  // Union of all shards' slices covers every element exactly once.
  std::vector<int> covered(static_cast<std::size_t>(p.store.total_numel()),
                           0);
  std::vector<std::int64_t> param_base;
  std::int64_t base = 0;
  for (const auto* prm : p.store.all()) {
    param_base.push_back(base);
    base += prm->value.numel();
  }
  for (int s = 0; s < plan.shard_degree; ++s) {
    for (const auto& sl : parallel::slices_for_shard(plan, p.store, s)) {
      for (std::int64_t i = sl.begin; i < sl.end; ++i) {
        ++covered[static_cast<std::size_t>(param_base[sl.param] + i)];
      }
    }
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    EXPECT_EQ(covered[i], 1) << "element " << i;
  }
}

TEST(Planner, GatherMapSourcesAreCanonicalRanks) {
  Params p;
  const Plan plan = parallel::make_plan(4, 2, p.store);
  const auto map = parallel::gather_map(plan, p.store);
  ASSERT_EQ(map.slices.size(), map.source_of_slice.size());
  EXPECT_EQ(comm::slices_numel(map.slices), p.store.total_numel());
  for (const int src : map.source_of_slice) {
    EXPECT_GE(src, 0);
    EXPECT_LT(src, plan.shard_degree);  // canonical ranks are 0..D-1
  }
}

TEST(Planner, RejectsDegreeNotDividingWorld) {
  Params p;
  EXPECT_THROW(parallel::make_plan(4, 3, p.store), Error);
  EXPECT_THROW(parallel::make_plan(4, 0, p.store), Error);
  // Every shard must own at least one chunk.
  EXPECT_THROW(parallel::make_plan(32, 32, p.store, /*num_chunks=*/16),
               Error);
}

TEST(Planner, PlanSerializationRoundTrip) {
  Params p;
  const Plan plan = parallel::make_plan(8, 2, p.store);
  ByteWriter w;
  plan.save(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(Plan::load(r), plan);
}

// --- Sharded collectives ----------------------------------------------

struct World {
  std::vector<Params> ranks;
  std::vector<GradientSet> sets;
  std::vector<GradientSet*> parts;
  BucketLayout layout;

  explicit World(int world_size, std::uint64_t seed = 99) {
    ranks.resize(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) {
      auto& store = ranks[static_cast<std::size_t>(r)].store;
      randomize(store, seed + static_cast<std::uint64_t>(r));
      sets.push_back(GradientSet::from_store(store));
    }
    for (auto& s : sets) parts.push_back(&s);
    layout = BucketManager(ranks[0].store, 64).initial_layout();
  }
};

std::vector<comm::ShardSlices> owned_for(const Plan& plan,
                                         const autograd::ParameterStore& ps) {
  std::vector<comm::ShardSlices> owned;
  for (int r = 0; r < plan.world_size; ++r) {
    owned.push_back(
        parallel::slices_for_shard(plan, ps, plan.shard_index(r)));
  }
  return owned;
}

TEST(ShardCollectives, ReduceScatterOwnedElementsMatchAllreduceBitwise) {
  World ref(4), shard(4);
  comm::allreduce_average(ref.layout, ref.parts);

  const Plan plan = parallel::make_plan(4, 2, shard.ranks[0].store);
  const auto owned = owned_for(plan, shard.ranks[0].store);
  comm::reduce_scatter_average(shard.layout, shard.parts, owned);

  // Every owned element carries exactly the allreduce_average bits.
  for (int r = 0; r < 4; ++r) {
    for (const auto& sl : owned[static_cast<std::size_t>(r)]) {
      const auto& got = shard.sets[static_cast<std::size_t>(r)]
                            .grads[sl.param];
      const auto& want = ref.sets[static_cast<std::size_t>(r)]
                             .grads[sl.param];
      for (std::int64_t i = sl.begin; i < sl.end; ++i) {
        ASSERT_EQ(got.at(i), want.at(i))
            << "rank " << r << " param " << sl.param << " elem " << i;
      }
    }
  }
}

TEST(ShardCollectives, BucketVariantEqualsWholeCollective) {
  World a(4), b(4);
  const Plan plan = parallel::make_plan(4, 4, a.ranks[0].store);
  const auto owned = owned_for(plan, a.ranks[0].store);
  comm::reduce_scatter_average(a.layout, a.parts, owned);
  const std::vector<GradientSet*> const_parts(b.parts.begin(),
                                              b.parts.end());
  for (std::size_t bk = 0; bk < b.layout.num_buckets(); ++bk) {
    comm::reduce_scatter_average_bucket(b.layout, bk, const_parts, owned);
  }
  for (int r = 0; r < 4; ++r) {
    for (std::size_t t = 0; t < a.sets[0].grads.size(); ++t) {
      EXPECT_EQ(
          digest_floats(a.sets[static_cast<std::size_t>(r)].grads[t].data()),
          digest_floats(b.sets[static_cast<std::size_t>(r)].grads[t].data()));
    }
  }
}

TEST(ShardCollectives, AllGatherPublishesCanonicalBytes) {
  World w(4);
  const Plan plan = parallel::make_plan(4, 2, w.ranks[0].store);
  const auto map = parallel::gather_map(plan, w.ranks[0].store);
  std::vector<autograd::ParameterStore*> stores;
  for (auto& rk : w.ranks) stores.push_back(&rk.store);
  comm::all_gather_params(stores, map.slices, map.source_of_slice);
  // Every store now agrees bitwise, and each slice equals its source's.
  const auto d0 = values_digest(w.ranks[0].store);
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(values_digest(w.ranks[static_cast<std::size_t>(r)].store), d0);
  }
}

TEST(ShardCollectives, ValidationNamesTheBadParameter) {
  World w(2);
  const Plan plan = parallel::make_plan(2, 2, w.ranks[0].store);
  auto owned = owned_for(plan, w.ranks[0].store);

  {  // Wrong owned_of_part arity.
    auto bad = owned;
    bad.pop_back();
    try {
      comm::validate_reduce_scatter_inputs(w.layout, w.parts, bad);
      FAIL() << "expected Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("owned_of_part"),
                std::string::npos);
    }
  }
  {  // Slice bounds outside the gradient.
    auto bad = owned;
    bad[0].push_back({.param = 0, .begin = 0, .end = 1 << 20});
    EXPECT_THROW(comm::validate_reduce_scatter_inputs(w.layout, w.parts, bad),
                 Error);
  }
  {  // One rank's slices overlapping on a parameter.
    auto bad = owned;
    bad[0].push_back(bad[0].front());
    EXPECT_THROW(comm::validate_reduce_scatter_inputs(w.layout, w.parts, bad),
                 Error);
  }
  {  // all_gather: source index out of range.
    const auto map = parallel::gather_map(plan, w.ranks[0].store);
    std::vector<autograd::ParameterStore*> stores{&w.ranks[0].store,
                                                  &w.ranks[1].store};
    auto sources = map.source_of_slice;
    sources[0] = 7;
    try {
      comm::validate_all_gather_inputs(stores, map.slices, sources);
      FAIL() << "expected Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("source_of_slice"),
                std::string::npos);
    }
  }
}

TEST(ShardCollectives, CrossRankRepetitionIsAllowed) {
  // Redundant shard columns (data_replicas > 1) own identical chunks; the
  // validator must accept repetition ACROSS ranks.
  World w(4);
  const Plan plan = parallel::make_plan(4, 2, w.ranks[0].store);
  const auto owned = owned_for(plan, w.ranks[0].store);
  EXPECT_EQ(owned[0], owned[2]);  // same shard column
  EXPECT_NO_THROW(
      comm::validate_reduce_scatter_inputs(w.layout, w.parts, owned));
}

// --- Sliced optimizer path --------------------------------------------

template <typename Opt>
void expect_sliced_union_equals_full_step(const typename Opt::Options& cfg) {
  Params full, sliced;
  randomize(full.store, 7);
  randomize(sliced.store, 7);
  Opt opt_full(full.store, cfg);
  Opt opt_sliced(sliced.store, cfg);
  const Plan plan = parallel::make_plan(4, 4, full.store);

  for (int step = 0; step < 3; ++step) {
    opt_full.step();
    // The sliced twin applies the same update as four shard owners would,
    // one step_slices call per optimizer instance per step (each call
    // advances Adam's bias-correction counter once; here one instance
    // plays all four owners, so slices are batched into ONE call).
    comm::ShardSlices all;
    for (int s = 0; s < 4; ++s) {
      const auto part = parallel::slices_for_shard(plan, sliced.store, s);
      all.insert(all.end(), part.begin(), part.end());
    }
    opt_sliced.step_slices(all);
  }
  EXPECT_EQ(values_digest(full.store), values_digest(sliced.store));
  // Optimizer state matches bitwise too.
  ByteWriter wf, ws;
  opt_full.save(wf);
  opt_sliced.save(ws);
  EXPECT_EQ(wf.bytes().size(), ws.bytes().size());
  EXPECT_TRUE(std::equal(wf.bytes().begin(), wf.bytes().end(),
                         ws.bytes().begin()));
}

TEST(ShardOptimizer, SGDSliceUnionMatchesFullStepBitwise) {
  expect_sliced_union_equals_full_step<optim::SGD>(
      {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 1e-4f});
}

TEST(ShardOptimizer, AdamSliceUnionMatchesFullStepBitwise) {
  expect_sliced_union_equals_full_step<optim::Adam>(optim::Adam::Options{});
}

TEST(ShardOptimizer, StateTensorsShadowParameters) {
  Params p;
  optim::SGD sgd(p.store, {.lr = 0.1f, .momentum = 0.9f});
  EXPECT_EQ(sgd.state_tensors().size(), p.store.all().size());
  optim::Adam adam(p.store, optim::Adam::Options{});
  // Adam: m tensors then v tensors, each shadowing param t % P.
  const auto st = adam.state_tensors();
  ASSERT_EQ(st.size(), 2 * p.store.all().size());
  for (std::size_t t = 0; t < st.size(); ++t) {
    EXPECT_EQ(st[t]->numel(),
              p.store.all()[t % p.store.all().size()]->value.numel());
  }
}

// --- Cost model (sim/shard_cost) --------------------------------------

TEST(ShardCost, StateShrinksCommStaysFlat) {
  Params p;
  const std::int64_t n = p.store.total_numel();
  const Plan rep = parallel::make_plan(4, 1, p.store);
  const Plan shd = parallel::make_plan(4, 4, p.store);
  const auto rep_cost = sim::shard_step_cost(rep, 2 * n, 0);
  EXPECT_EQ(rep_cost.param_bytes, 4 * n);
  EXPECT_EQ(rep_cost.state_bytes, 8 * n);  // two state tensors per element
  std::int64_t covered = 0;
  for (int r = 0; r < 4; ++r) {
    const auto cost = sim::shard_step_cost(shd, 2 * n, r);
    EXPECT_LT(cost.memory_high_water(), rep_cost.memory_high_water());
    EXPECT_EQ(cost.comm_bytes, rep_cost.comm_bytes);  // ZeRO-1: same wire
    // Resident state is exactly the owned slices' share of the real plan.
    EXPECT_EQ(cost.state_bytes,
              8 * comm::slices_numel(parallel::slices_for_shard(
                      shd, p.store, shd.shard_index(r))));
    covered += sim::owned_numel(shd, r);
  }
  EXPECT_EQ(covered, n);  // the four shards tile the space exactly
}

TEST(ShardCost, RejectsFractionalStateMultiple) {
  Params p;
  const Plan plan = parallel::make_plan(4, 2, p.store);
  EXPECT_THROW(sim::shard_step_cost(plan, p.store.total_numel() + 1, 0),
               Error);
  EXPECT_THROW(sim::shard_step_cost(plan, p.store.total_numel(), 9), Error);
}

TEST(ShardOptimizer, SliceBoundsAreChecked) {
  Params p;
  optim::SGD sgd(p.store, {.lr = 0.1f});
  EXPECT_THROW(sgd.step_slices({{.param = 99, .begin = 0, .end = 1}}), Error);
  EXPECT_THROW(sgd.step_slices({{.param = 0, .begin = 0, .end = 1 << 20}}),
               Error);
}

}  // namespace
}  // namespace easyscale
