#include "rng/stream_set.hpp"

namespace easyscale::rng {

std::uint64_t derive_stream_key(std::uint64_t seed, std::uint64_t rank,
                                std::uint64_t kind) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (rank + 1) +
                    0xBF58476D1CE4E5B9ull * (kind + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void StreamSet::seed_all(std::uint64_t seed, std::uint64_t rank) {
  for (int k = 0; k < kNumStreamKinds; ++k) {
    streams_[k].reseed(derive_stream_key(seed, rank, static_cast<std::uint64_t>(k)));
  }
}

StreamSetState StreamSet::state() const {
  StreamSetState st;
  for (int k = 0; k < kNumStreamKinds; ++k) st.streams[k] = streams_[k].state();
  return st;
}

void StreamSet::set_state(const StreamSetState& s) {
  for (int k = 0; k < kNumStreamKinds; ++k) streams_[k].set_state(s.streams[k]);
}

}  // namespace easyscale::rng
