#include "kernels/scatter.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace easyscale::kernels {

namespace {
std::atomic<std::uint64_t> g_atomic_order_counter{0};
}

void reset_atomic_emulation_counter() { g_atomic_order_counter.store(0); }

void scatter_add(const ExecContext& ctx, std::span<const std::int64_t> indices,
                 std::span<const float> src, std::int64_t width,
                 std::span<float> out) {
  const std::int64_t n = static_cast<std::int64_t>(indices.size());
  ES_CHECK(static_cast<std::int64_t>(src.size()) == n * width,
           "scatter_add: src size mismatch");
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), std::int64_t{0});
  if (scatter_add_sorted(ctx)) {
    // Deterministic: stable sort by destination row, then source position.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int64_t a, std::int64_t b) {
                       return indices[static_cast<std::size_t>(a)] <
                              indices[static_cast<std::size_t>(b)];
                     });
  } else {
    // Emulated atomics: rotate the processing order by a process-global
    // counter so collision accumulation order varies call to call.
    const std::uint64_t rot = g_atomic_order_counter.fetch_add(1);
    if (n > 0) {
      std::rotate(order.begin(),
                  order.begin() + static_cast<std::int64_t>(rot % n),
                  order.end());
    }
  }
  for (std::int64_t oi : order) {
    const std::int64_t row = indices[static_cast<std::size_t>(oi)];
    ES_CHECK(row >= 0 &&
                 (row + 1) * width <= static_cast<std::int64_t>(out.size()),
             "scatter_add: row out of range");
    const float* s = src.data() + oi * width;
    float* d = out.data() + row * width;
    for (std::int64_t c = 0; c < width; ++c) d[c] += s[c];
  }
}

}  // namespace easyscale::kernels
