// 2-D convolution kernels.
//
// The vendor path (kIm2colNative) lowers to im2col plus the device's native
// GEMM — fast, but its accumulation order is device-specific.  The
// canonical path (kDirectCanonical) is a direct loop with one running
// accumulator: bitwise identical on every device but markedly slower, which
// reproduces the paper's Fig-12 finding that D2 costs real throughput on
// conv-heavy models.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "kernels/exec_context.hpp"

namespace easyscale::kernels {

struct Conv2dDims {
  std::int64_t batch;
  std::int64_t in_channels;
  std::int64_t in_h;
  std::int64_t in_w;
  std::int64_t out_channels;
  std::int64_t kernel_h;
  std::int64_t kernel_w;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  std::int64_t groups = 1;

  [[nodiscard]] std::int64_t out_h() const {
    return (in_h + 2 * pad - kernel_h) / stride + 1;
  }
  [[nodiscard]] std::int64_t out_w() const {
    return (in_w + 2 * pad - kernel_w) / stride + 1;
  }
};

/// out[N, F, OH, OW] = conv(input[N, C, H, W], weight[F, C/groups, KH, KW])
/// (+ bias[F] when provided).
void conv2d_forward(const ExecContext& ctx, const Conv2dDims& d,
                    std::span<const float> input, std::span<const float> weight,
                    std::span<const float> bias, std::span<float> out);

/// Gradients for input, weight and bias.  Any of the gradient outputs may be
/// empty to skip it.  grad_weight/grad_bias are accumulated into.
void conv2d_backward(const ExecContext& ctx, const Conv2dDims& d,
                     std::span<const float> input,
                     std::span<const float> weight,
                     std::span<const float> grad_out,
                     std::span<float> grad_input, std::span<float> grad_weight,
                     std::span<float> grad_bias);

/// im2col for one sample: cols[(C/groups)*KH*KW, OH*OW] for group g.
/// Parallelizes over input channels (disjoint row blocks of `cols`).
void im2col(const ExecContext& ctx, const Conv2dDims& d,
            std::span<const float> sample_input, std::int64_t group,
            std::span<float> cols);

/// Inverse of im2col (scatter back).  Parallelizes over input channels;
/// within a channel the accumulation order is the sequential one.
void col2im(const ExecContext& ctx, const Conv2dDims& d,
            std::span<const float> cols, std::int64_t group,
            std::span<float> sample_grad_input);

}  // namespace easyscale::kernels
