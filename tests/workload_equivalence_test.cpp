// Property sweep: the bitwise EasyScale == DDP equivalence must hold for
// EVERY Table-1 workload (conv, detection, recommendation, QA transformer,
// windowed attention), under an uneven physical mapping and a mid-run
// rescale.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"

namespace easyscale {
namespace {

class WorkloadEquivalenceTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(WorkloadEquivalenceTest, EasyScaleMatchesDDPBitwise) {
  const std::string workload = GetParam();
  auto wd = models::make_dataset_for(workload, 128, 16, 42);

  ddp::DDPConfig dcfg;
  dcfg.workload = workload;
  dcfg.world_size = 4;
  dcfg.batch_per_worker = 4;
  dcfg.seed = 42;
  ddp::DDPTrainer reference(dcfg, *wd.train, wd.augment);
  reference.run_steps(6);

  core::EasyScaleConfig cfg;
  cfg.workload = workload;
  cfg.num_ests = 4;
  cfg.batch_per_est = 4;
  cfg.seed = 42;
  core::EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  // Uneven mapping, then a mid-run rescale.
  engine.configure_workers(
      std::vector<core::WorkerSpec>(2),
      std::vector<std::vector<std::int64_t>>{{3, 1, 0}, {2}});
  engine.run_steps(3);
  engine.configure_workers(std::vector<core::WorkerSpec>(3));
  engine.run_steps(3);

  EXPECT_EQ(reference.params_digest(), engine.params_digest())
      << workload << " diverged from fixed-DoP DDP";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadEquivalenceTest,
                         ::testing::ValuesIn(models::workload_names()));

}  // namespace
}  // namespace easyscale
