#include "common/env.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace easyscale {

std::optional<std::int64_t> parse_int64_strict(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t i = 0;
  const bool negative = text[0] == '-';
  if (negative) i = 1;
  if (i == text.size()) return std::nullopt;  // bare "-"
  std::int64_t value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    const std::int64_t digit = c - '0';
    // Overflow-safe accumulate toward the negative side (INT64_MIN has no
    // positive counterpart).
    if (value < (INT64_MIN + digit) / 10) return std::nullopt;
    value = value * 10 - digit;
  }
  if (!negative) {
    if (value == INT64_MIN) return std::nullopt;
    value = -value;
  }
  return value;
}

std::optional<std::int64_t> env_int64(const char* name, std::int64_t min_value,
                                      std::int64_t max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  const std::string text(env);
  const auto parsed = parse_int64_strict(text);
  ES_CHECK(parsed.has_value(),
           name << "=\"" << text
                << "\" is not an integer (strict base-10, no whitespace)");
  ES_CHECK(*parsed >= min_value && *parsed <= max_value,
           name << "=" << *parsed << " is outside the accepted range ["
                << min_value << ", " << max_value << "]");
  return parsed;
}

std::optional<std::string> env_token(
    const char* name, std::initializer_list<const char*> allowed) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  const std::string text(env);
  for (const char* token : allowed) {
    if (text == token) return text;
  }
  std::string accepted;
  for (const char* token : allowed) {
    if (!accepted.empty()) accepted += "|";
    accepted += token;
  }
  ES_THROW(name << "=\"" << text << "\" is not an accepted value ("
                << accepted << "; exact match, no whitespace)");
}

}  // namespace easyscale
