// Synthetic datasets standing in for the paper's open datasets (Table 1).
//
// Every dataset is a pure function of (seed, index): the raw sample for a
// given index is always the same bits, on any machine, with no files on
// disk.  Randomized *augmentation* is applied later by the data workers
// from checkpointable RNG streams — mirroring the real split between
// dataset and transform.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "data/sample.hpp"
#include "rng/philox.hpp"

namespace easyscale::data {

class Dataset {
 public:
  virtual ~Dataset() = default;
  [[nodiscard]] virtual std::int64_t size() const = 0;
  [[nodiscard]] virtual Sample get(std::int64_t index) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// CIFAR-like classification images: per-class Gaussian prototypes plus
/// per-sample noise.  Class separation is tuned so small models actually
/// learn (accuracy curves in Figs 2-4 need signal, not pure noise).
class SyntheticImageDataset : public Dataset {
 public:
  /// `sample_salt` varies the per-sample noise stream while keeping the
  /// class prototypes fixed — train/test splits share prototypes (so the
  /// task is learnable) but never share samples.
  SyntheticImageDataset(std::int64_t n, std::int64_t num_classes,
                        std::int64_t channels, std::int64_t height,
                        std::int64_t width, std::uint64_t seed,
                        std::uint64_t sample_salt = 0);

  [[nodiscard]] std::int64_t size() const override { return n_; }
  [[nodiscard]] Sample get(std::int64_t index) const override;
  [[nodiscard]] std::string name() const override { return "synthetic-cifar"; }
  [[nodiscard]] std::int64_t num_classes() const { return num_classes_; }
  [[nodiscard]] std::int64_t channels() const { return channels_; }
  [[nodiscard]] std::int64_t height() const { return height_; }
  [[nodiscard]] std::int64_t width() const { return width_; }

 private:
  std::int64_t n_, num_classes_, channels_, height_, width_;
  std::uint64_t seed_;
  std::uint64_t sample_salt_;
  tensor::Tensor prototypes_;  // [num_classes, C, H, W]
};

/// Detection dataset (PASCAL stand-in): one bright object per image; the
/// target is (cx, cy, extent, class) for a YOLO-style single-cell head.
class SyntheticDetectionDataset : public Dataset {
 public:
  SyntheticDetectionDataset(std::int64_t n, std::int64_t height,
                            std::int64_t width, std::uint64_t seed);
  [[nodiscard]] std::int64_t size() const override { return n_; }
  [[nodiscard]] Sample get(std::int64_t index) const override;
  [[nodiscard]] std::string name() const override { return "synthetic-voc"; }

 private:
  std::int64_t n_, height_, width_;
  std::uint64_t seed_;
};

/// Implicit-feedback interactions (MovieLens stand-in) for NeuMF: ids are
/// (user, item); label 1 for observed pairs, 0 for sampled negatives.
class SyntheticRecDataset : public Dataset {
 public:
  SyntheticRecDataset(std::int64_t n, std::int64_t num_users,
                      std::int64_t num_items, std::uint64_t seed);
  [[nodiscard]] std::int64_t size() const override { return n_; }
  [[nodiscard]] Sample get(std::int64_t index) const override;
  [[nodiscard]] std::string name() const override { return "synthetic-ml"; }
  [[nodiscard]] std::int64_t num_users() const { return num_users_; }
  [[nodiscard]] std::int64_t num_items() const { return num_items_; }

 private:
  std::int64_t n_, num_users_, num_items_;
  std::uint64_t seed_;
};

/// Token sequences with an answer span (SQuAD stand-in) for BERT/Electra:
/// ids are seq_len tokens; label is the span-start position.
class SyntheticQADataset : public Dataset {
 public:
  SyntheticQADataset(std::int64_t n, std::int64_t vocab, std::int64_t seq_len,
                     std::uint64_t seed);
  [[nodiscard]] std::int64_t size() const override { return n_; }
  [[nodiscard]] Sample get(std::int64_t index) const override;
  [[nodiscard]] std::string name() const override { return "synthetic-squad"; }
  [[nodiscard]] std::int64_t vocab() const { return vocab_; }
  [[nodiscard]] std::int64_t seq_len() const { return seq_len_; }

 private:
  std::int64_t n_, vocab_, seq_len_;
  std::uint64_t seed_;
};

}  // namespace easyscale::data
