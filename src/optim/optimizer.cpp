#include "optim/optimizer.hpp"

#include "common/error.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"

namespace easyscale::optim {

std::vector<ParamSlice> full_slices(const autograd::ParameterStore& params) {
  std::vector<ParamSlice> slices;
  slices.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    slices.push_back(ParamSlice{
        .param = i, .begin = 0, .end = params.all()[i]->numel()});
  }
  return slices;
}

std::unique_ptr<Optimizer> make_optimizer(autograd::ParameterStore& params,
                                          const OptimizerConfig& config) {
  switch (config.kind) {
    case OptimizerConfig::Kind::kSGD:
      return std::make_unique<SGD>(
          params, SGD::Options{.lr = config.lr,
                               .momentum = config.momentum,
                               .weight_decay = config.weight_decay});
    case OptimizerConfig::Kind::kAdam:
      return std::make_unique<Adam>(
          params, Adam::Options{.lr = config.lr,
                                .beta1 = config.beta1,
                                .beta2 = config.beta2,
                                .eps = config.eps,
                                .weight_decay = config.weight_decay});
  }
  ES_THROW("unknown optimizer kind");
}

}  // namespace easyscale::optim
