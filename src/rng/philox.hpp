// Philox4x32-10 counter-based random number generator.
//
// Counter-based RNGs are the standard choice for reproducible parallel
// training (cuRAND and PyTorch's CUDA generators use Philox).  The state is
// tiny (key + counter + a small output buffer) which is exactly why the
// paper's EST contexts stay small: recording an RNG state costs a few
// dozen bytes rather than re-recording consumed randomness.
#pragma once

#include <array>
#include <cstdint>

#include "common/serialize.hpp"

namespace easyscale::rng {

/// Serializable Philox state.  `buffer` caches the most recent 4-word block
/// so single-value draws do not waste generated words; `buffer_pos == 4`
/// means the buffer is empty.
struct PhiloxState {
  std::uint64_t key = 0;
  std::uint64_t counter = 0;
  std::array<std::uint32_t, 4> buffer = {0, 0, 0, 0};
  std::uint32_t buffer_pos = 4;
  /// Spare normal value for Box-Muller pairs (valid when has_spare_normal).
  double spare_normal = 0.0;
  std::uint32_t has_spare_normal = 0;

  void save(ByteWriter& w) const;
  static PhiloxState load(ByteReader& r);

  friend bool operator==(const PhiloxState&, const PhiloxState&) = default;
};

/// The generator itself.  Deterministic across platforms: only integer
/// arithmetic and IEEE-754 double→float conversions.
class Philox {
 public:
  Philox() = default;
  explicit Philox(std::uint64_t seed) { reseed(seed); }

  /// Reset to the beginning of the stream identified by `seed`.
  void reseed(std::uint64_t seed);

  /// Next raw 32-bit word.
  std::uint32_t next_u32();

  /// Next raw 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform float in [0, 1).
  float next_float();

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t next_below(std::uint64_t bound);

  /// Standard normal via Box-Muller (deterministic pairing).
  double next_normal();

  [[nodiscard]] const PhiloxState& state() const { return state_; }
  void set_state(const PhiloxState& s) { state_ = s; }

 private:
  void refill();

  PhiloxState state_;
};

}  // namespace easyscale::rng
