#include "nn/dropout.hpp"

#include "kernels/exec_context.hpp"

namespace easyscale::nn {

Tensor Dropout::forward(StepContext& ctx, const Tensor& x) {
  if (!ctx.training || p_ == 0.0f) {
    cached_mask_ = Tensor();
    return x;
  }
  auto& gen = ctx.torch_rng();
  const float scale = 1.0f / (1.0f - p_);
  cached_mask_ = Tensor(x.shape());
  Tensor out(x.shape());
  // Deliberately sequential: each element consumes one draw from the
  // shared RNG stream, so the draw order IS the mask.  Splitting this loop
  // would permute draws across threads and change training trajectories.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float keep = gen.next_float() >= p_ ? scale : 0.0f;
    cached_mask_.at(i) = keep;
    out.at(i) = x.at(i) * keep;
  }
  return out;
}

Tensor Dropout::backward(StepContext& ctx, const Tensor& grad_out) {
  if (!cached_mask_.defined()) return grad_out;
  Tensor grad_in(grad_out.shape());
  kernels::parallel_for(
      ctx.ex(), grad_out.numel(), 4096,
      [&](int /*chunk*/, std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          grad_in.at(i) = grad_out.at(i) * cached_mask_.at(i);
        }
      });
  return grad_in;
}

}  // namespace easyscale::nn
