// Minimal leveled logger.  Cluster-simulation and training subsystems log
// through this so experiments can be run quietly (benches) or verbosely
// (examples, debugging).
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace easyscale {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace easyscale

#define ES_LOG(level, msg_expr)                                        \
  do {                                                                 \
    if (static_cast<int>(level) >=                                     \
        static_cast<int>(::easyscale::log_level())) {                  \
      std::ostringstream es_log_ss_;                                   \
      es_log_ss_ << msg_expr;                                          \
      ::easyscale::detail::log_emit(level, es_log_ss_.str());          \
    }                                                                  \
  } while (false)

#define ES_LOG_DEBUG(msg) ES_LOG(::easyscale::LogLevel::kDebug, msg)
#define ES_LOG_INFO(msg) ES_LOG(::easyscale::LogLevel::kInfo, msg)
#define ES_LOG_WARN(msg) ES_LOG(::easyscale::LogLevel::kWarn, msg)
#define ES_LOG_ERROR(msg) ES_LOG(::easyscale::LogLevel::kError, msg)
