// On-demand checkpoint persistence: a small framed file format (magic +
// version + payload size + FNV digest) around the engine's checkpoint
// bytes, so crashes mid-write are detected on load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace easyscale::core {

/// Write checkpoint bytes to `path` atomically (write temp + rename).
void save_checkpoint_file(const std::string& path,
                          const std::vector<std::uint8_t>& bytes);

/// Read and verify a checkpoint file; throws on corruption or truncation.
[[nodiscard]] std::vector<std::uint8_t> load_checkpoint_file(
    const std::string& path);

}  // namespace easyscale::core
