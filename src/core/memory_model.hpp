// GPU memory accounting for the Fig-10 comparison.
//
// Worker packing (Gandiva) runs k independent training processes on one
// GPU: k CUDA contexts + k full working sets.  EasyScale runs k ESTs inside
// ONE worker process: one CUDA context, one shared model/optimizer/
// activation working set; per-EST state (gradients, RNG, BN buffers) is
// swapped to host memory, so device memory stays flat in k.
#pragma once

#include <cstdint>
#include <string>

namespace easyscale::core {

/// Device memory (GB) of `k` packed workers of `workload` on one GPU.
[[nodiscard]] double packing_memory_gb(const std::string& workload,
                                       std::int64_t k);

/// Device memory (GB) of one EasyScale worker hosting `k` ESTs.
[[nodiscard]] double easyscale_memory_gb(const std::string& workload,
                                         std::int64_t k);

/// True when `gb` exceeds the board memory (OOM in Fig 10).
[[nodiscard]] bool would_oom(double gb, double board_gb);

}  // namespace easyscale::core
