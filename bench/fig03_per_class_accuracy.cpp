// Fig 3: per-class accuracy of ResNet18 on (synthetic) CIFAR10 after full
// training, for TorchElastic and Pollux at 1/2/4/8 GPUs vs EasyScale.
// The paper's finding: overall variance looks small (0.6% TE, 2.8% Pollux)
// but per-class variance is much larger (7.4% / 17.3% max) — and EasyScale
// is exactly zero by construction.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/elastic_baselines.hpp"
#include "bench_util.hpp"
#include "core/engine.hpp"
#include "models/datasets.hpp"
#include "models/eval.hpp"

namespace {

using namespace easyscale;

constexpr std::int64_t kTrain = 512, kTest = 512;
constexpr std::int64_t kEpochs = 24;
constexpr std::uint64_t kSeed = 42;
constexpr const char* kModel = "ResNet18";

struct Row {
  std::string name;
  models::AccuracyReport report;
};

void print_rows(const char* framework, const std::vector<Row>& rows) {
  std::printf("\n%s\n", framework);
  std::printf("%-10s", "run");
  for (int c = 0; c < 10; ++c) std::printf("    C%d", c);
  std::printf("  Total\n");
  for (const auto& r : rows) {
    std::printf("%-10s", r.name.c_str());
    for (int c = 0; c < 10; ++c) {
      std::printf("%6.1f", 100.0 * r.report.per_class[static_cast<std::size_t>(c)]);
    }
    std::printf("%7.1f\n", 100.0 * r.report.overall);
  }
  // Variance row: max - min per class across the runs.
  std::printf("%-10s", "variance");
  double max_var = 0.0;
  for (int c = 0; c < 10; ++c) {
    double lo = 1.0, hi = 0.0;
    for (const auto& r : rows) {
      lo = std::min(lo, r.report.per_class[static_cast<std::size_t>(c)]);
      hi = std::max(hi, r.report.per_class[static_cast<std::size_t>(c)]);
    }
    max_var = std::max(max_var, hi - lo);
    std::printf("%6.1f", 100.0 * (hi - lo));
  }
  double lo = 1.0, hi = 0.0;
  for (const auto& r : rows) {
    lo = std::min(lo, r.report.overall);
    hi = std::max(hi, r.report.overall);
  }
  std::printf("%7.1f   (max per-class variance %.1f%%)\n",
              100.0 * (hi - lo), 100.0 * max_var);
}

template <typename TrainerT>
Row run_baseline(std::int64_t world, const models::WorkloadData& wd) {
  baselines::ElasticBaselineConfig cfg;
  cfg.workload = kModel;
  cfg.base_world = 4;
  cfg.base_batch = 8;
  cfg.base_lr = 0.1f;
  cfg.seed = kSeed;
  TrainerT t(cfg, *wd.train, wd.augment);
  t.reconfigure(world);
  t.run_epochs(kEpochs);
  return {std::to_string(world) + "GPU",
          models::evaluate(t.model(), *wd.test, 32, 10)};
}

Row run_easyscale(std::int64_t physical, const models::WorkloadData& wd) {
  core::EasyScaleConfig cfg;
  cfg.workload = kModel;
  cfg.num_ests = 4;
  cfg.batch_per_est = 8;
  cfg.seed = kSeed;
  core::EasyScaleEngine e(cfg, *wd.train, wd.augment);
  e.configure_workers(std::vector<core::WorkerSpec>(
      static_cast<std::size_t>(physical), core::WorkerSpec{}));
  e.run_epochs(kEpochs);
  return {std::to_string(physical) + "GPU",
          models::evaluate(e.model_for_eval(0), *wd.test, 32, 10)};
}

}  // namespace

int main() {
  bench::banner("Fig 3",
                "per-class accuracy of ResNet18 after training, per "
                "framework and GPU count");
  auto wd = models::make_dataset_for(kModel, kTrain, kTest, kSeed);

  std::vector<Row> te, px, es;
  for (std::int64_t w : {1, 2, 4, 8}) {
    te.push_back(run_baseline<baselines::TorchElasticTrainer>(w, wd));
  }
  for (std::int64_t w : {1, 2, 4, 8}) {
    px.push_back(run_baseline<baselines::PolluxTrainer>(w, wd));
  }
  for (std::int64_t p : {1, 2, 4}) {
    es.push_back(run_easyscale(p, wd));
  }
  print_rows("TorchElastic (linear LR scaling)", te);
  print_rows("Pollux (adaptive batch/LR)", px);
  print_rows("EasyScale (4 ESTs on 1/2/4 physical GPUs)", es);
  bench::note(
      "expected shape: TE/Pollux per-class variance >> overall variance; "
      "EasyScale rows identical (variance 0.0 everywhere).");
  return 0;
}
