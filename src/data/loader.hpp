// Shared data-worker pool with a checkpointable queuing buffer (Fig 7).
//
// The producer (training engine) enqueues WorkItems: the sample indices of
// one EST mini-batch plus a snapshot of that EST's data-RNG streams.  A
// small pool of worker threads preprocesses items in whatever order they
// are free ("data workers take turns"); because the RNG snapshot travels
// with the item, *which* worker processes a batch never affects its bits.
// Training consumes batches by (est, step) key, blocking until ready.
//
// The set of enqueued-but-unconsumed items IS the queuing buffer the paper
// checkpoints as extra state: pending_items() returns it for the on-demand
// checkpoint, and re-enqueueing the saved items on resume regenerates the
// exact same batches.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "data/augment.hpp"
#include "data/dataset.hpp"
#include "data/sample.hpp"
#include "rng/stream_set.hpp"

namespace easyscale::data {

struct WorkItem {
  std::int64_t est_rank = 0;
  std::int64_t step = 0;  // global mini-batch index within the job
  std::vector<std::int64_t> indices;
  rng::StreamSetState rng_state;  // augmentation streams at batch start

  void save(ByteWriter& w) const {
    w.write(est_rank);
    w.write(step);
    w.write_vector(indices);
    rng_state.save(w);
  }
  static WorkItem load(ByteReader& r) {
    WorkItem it;
    it.est_rank = r.read<std::int64_t>();
    it.step = r.read<std::int64_t>();
    it.indices = r.read_vector<std::int64_t>();
    it.rng_state = rng::StreamSetState::load(r);
    return it;
  }
};

struct LoaderConfig {
  std::int64_t num_workers = 2;
  AugmentConfig augment;
  /// Simulated per-worker launch cost (process fork + dataset open); the
  /// data-worker-sharing experiment (§5.1.2) measures first-batch latency
  /// against the worker count this multiplies.
  double worker_launch_ms = 0.0;
  /// Simulated per-sample preprocessing cost.
  double per_sample_us = 0.0;
};

class SharedDataWorkerPool {
 public:
  SharedDataWorkerPool(const Dataset& dataset, LoaderConfig config);
  ~SharedDataWorkerPool();

  SharedDataWorkerPool(const SharedDataWorkerPool&) = delete;
  SharedDataWorkerPool& operator=(const SharedDataWorkerPool&) = delete;

  /// Producer side: add one mini-batch of work.
  void enqueue(WorkItem item);

  /// Consumer side: blocking ordered retrieval of (est_rank, step).
  [[nodiscard]] Batch get(std::int64_t est_rank, std::int64_t step);

  /// The queuing buffer: every item enqueued but not yet consumed via
  /// get(), in enqueue order.  Used by on-demand checkpoints.
  [[nodiscard]] std::vector<WorkItem> pending_items() const;

  /// Block until no work is queued or in flight.
  void drain();

  [[nodiscard]] std::int64_t num_workers() const {
    return static_cast<std::int64_t>(threads_.size());
  }

 private:
  struct Key {
    std::int64_t est;
    std::int64_t step;
    auto operator<=>(const Key&) const = default;
  };

  void worker_loop(std::size_t worker_id);
  [[nodiscard]] Batch process(const WorkItem& item) const;

  const Dataset* dataset_;
  LoaderConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_ready_;
  std::deque<WorkItem> queue_;
  std::map<Key, Batch> ready_;
  std::map<Key, WorkItem> unconsumed_;  // enqueued, not yet get()-ed
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace easyscale::data
