// Checkpoint persistence + failure injection: crash/restore at arbitrary
// points, corrupt files, and end-to-end resume through disk.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/checkpoint_io.hpp"
#include "core/checkpoint_manager.hpp"
#include "core/engine.hpp"
#include "models/datasets.hpp"

namespace easyscale::core {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CheckpointIO, RoundTrip) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 250, 0, 7};
  const auto path = temp_path("roundtrip.ckpt");
  save_checkpoint_file(path, bytes);
  EXPECT_EQ(load_checkpoint_file(path), bytes);
  std::remove(path.c_str());
}

TEST(CheckpointIO, EmptyPayload) {
  const auto path = temp_path("empty.ckpt");
  save_checkpoint_file(path, {});
  EXPECT_TRUE(load_checkpoint_file(path).empty());
  std::remove(path.c_str());
}

TEST(CheckpointIO, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint_file(temp_path("no_such.ckpt")), Error);
}

TEST(CheckpointIO, CorruptPayloadDetected) {
  const std::vector<std::uint8_t> bytes(100, 42);
  const auto path = temp_path("corrupt.ckpt");
  save_checkpoint_file(path, bytes);
  // Flip a byte in the payload region.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    const char zero = 0;
    f.write(&zero, 1);
  }
  EXPECT_THROW(load_checkpoint_file(path), Error);
  std::remove(path.c_str());
}

TEST(CheckpointIO, TruncatedFileDetected) {
  const std::vector<std::uint8_t> bytes(100, 9);
  const auto path = temp_path("trunc.ckpt");
  save_checkpoint_file(path, bytes);
  {
    // Rewrite the file shorter than its declared size.
    std::ifstream in(path, std::ios::binary);
    std::vector<char> all((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(all.size() - 30));
  }
  EXPECT_THROW(load_checkpoint_file(path), Error);
  std::remove(path.c_str());
}

/// Crash-point sweep: kill the checkpoint writer at EVERY byte offset of
/// the newest generation.  A torn write of generation B must never be
/// accepted — recovery walks back to the previous valid generation A; only
/// the complete file yields B.  This is the torn-write contract the
/// supervisor's recovery path depends on.
TEST(CheckpointManager, WriterKilledAtEveryByteOffsetRecoversPreviousGen) {
  const auto prefix = temp_path("crashpoint");
  CheckpointManager mgr(prefix, 3);
  mgr.clear();
  const std::vector<std::uint8_t> gen_a = {0xA1, 0xA2, 0xA3, 0xA4, 0xA5};
  const std::vector<std::uint8_t> gen_b = {0xB1, 0xB2, 0xB3};
  mgr.save(gen_a);  // lands at .1 after the next save
  mgr.save(gen_b);  // newest, at .0
  ASSERT_EQ(mgr.generations_on_disk(), 2);
  const auto newest = mgr.path_for(0);

  // The intact bytes of .0, to restore between crash points.
  std::ifstream in(newest, std::ios::binary);
  const std::vector<char> full((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(full.size(), gen_b.size());  // framing header is on disk too

  for (std::size_t k = 0; k < full.size(); ++k) {
    // The writer died after flushing exactly k bytes of the new generation.
    {
      std::ofstream out(newest, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(k));
    }
    const auto recovered = mgr.load_latest_valid();
    ASSERT_TRUE(recovered.has_value()) << "crash point " << k;
    EXPECT_EQ(*recovered, gen_a)
        << "torn generation accepted at crash point " << k;
  }
  // The complete file is the newest generation again.
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size()));
  }
  const auto recovered = mgr.load_latest_valid();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, gen_b);
  mgr.clear();
}

TEST(CheckpointIO, NotACheckpointDetected) {
  const auto path = temp_path("garbage.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a checkpoint, far too short header..";
  }
  EXPECT_THROW(load_checkpoint_file(path), Error);
  std::remove(path.c_str());
}

TEST(CheckpointManager, RotatesGenerations) {
  CheckpointManager mgr(temp_path("rot"), 3);
  mgr.clear();
  mgr.save({1});
  mgr.save({2});
  mgr.save({3});
  mgr.save({4});
  EXPECT_EQ(mgr.generations_on_disk(), 3);
  EXPECT_EQ(mgr.load_latest_valid().value(), (std::vector<std::uint8_t>{4}));
  EXPECT_EQ(load_checkpoint_file(mgr.path_for(2)),
            (std::vector<std::uint8_t>{2}));  // oldest kept = 2
  mgr.clear();
  EXPECT_EQ(mgr.generations_on_disk(), 0);
}

TEST(CheckpointManager, FallsBackPastCorruptNewest) {
  CheckpointManager mgr(temp_path("fb"), 3);
  mgr.clear();
  mgr.save({10, 11});
  mgr.save({20, 21});
  // Corrupt the newest generation's payload.
  {
    std::fstream f(mgr.path_for(0),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);  // inside the payload (header is 24 bytes)
    const char junk = 99;
    f.write(&junk, 1);
  }
  const auto bytes = mgr.load_latest_valid();
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, (std::vector<std::uint8_t>{10, 11}));
  mgr.clear();
}

TEST(CheckpointManager, TornDigestFallsBackAndKeepsBothGenerations) {
  // Torn-write model: the crash mangles the newest generation's stored
  // digest (header bytes 16..23: magic(4) + version(4) + size(8) precede
  // it).  The manager must fall back to the previous generation while
  // still reporting both files on disk.
  CheckpointManager mgr(temp_path("torn"), 3);
  mgr.clear();
  mgr.save({7, 7, 7});    // becomes generation 1 after the next save
  mgr.save({9, 9, 9, 9});  // generation 0, about to be torn
  {
    std::fstream f(mgr.path_for(0),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    const char junk[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    f.write(junk, sizeof(junk));
  }
  const auto bytes = mgr.load_latest_valid();
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, (std::vector<std::uint8_t>{7, 7, 7}));
  EXPECT_EQ(mgr.generations_on_disk(), 2);
  mgr.clear();
}

TEST(CheckpointManager, EmptyWhenNothingOnDisk) {
  CheckpointManager mgr(temp_path("none"), 2);
  mgr.clear();
  EXPECT_FALSE(mgr.load_latest_valid().has_value());
}

TEST(CheckpointManager, EndToEndCrashRecoveryThroughRotation) {
  auto wd = models::make_dataset_for("NeuMF", 128, 16, 42);
  EasyScaleConfig cfg;
  cfg.workload = "NeuMF";
  cfg.num_ests = 4;
  cfg.batch_per_est = 4;
  cfg.seed = 42;
  CheckpointManager mgr(temp_path("e2e"), 2);
  mgr.clear();
  EasyScaleEngine reference(cfg, *wd.train, wd.augment);
  reference.configure_workers(std::vector<WorkerSpec>(2));
  reference.run_steps(6);
  {
    EasyScaleEngine victim(cfg, *wd.train, wd.augment);
    victim.configure_workers(std::vector<WorkerSpec>(2));
    victim.run_steps(2);
    mgr.save(victim.checkpoint());
    victim.run_steps(2);
    mgr.save(victim.checkpoint());  // newest: step 4
  }
  // Tear the newest file; recovery lands on step 2 and retrains.
  {
    std::fstream f(mgr.path_for(0),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    const char junk = 1;
    f.write(&junk, 1);
  }
  EasyScaleEngine revived(cfg, *wd.train, wd.augment);
  revived.configure_workers(std::vector<WorkerSpec>(1));
  const auto bytes = mgr.load_latest_valid();
  ASSERT_TRUE(bytes.has_value());
  revived.restore(*bytes);
  EXPECT_EQ(revived.global_step(), 2);
  revived.run_steps(4);
  EXPECT_EQ(revived.params_digest(), reference.params_digest());
  mgr.clear();
}

/// Failure-injection property sweep: crash the job after K steps, restore
/// from disk onto a different worker set, and require bitwise equality
/// with the uninterrupted run.
class CrashRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashRecoveryTest, DiskRestoreIsBitwiseExact) {
  const std::int64_t crash_step = GetParam();
  const std::int64_t total_steps = 8;
  auto wd = models::make_dataset_for("ResNet18", 128, 16, 42);
  EasyScaleConfig cfg;
  cfg.workload = "ResNet18";
  cfg.num_ests = 4;
  cfg.batch_per_est = 4;
  cfg.seed = 42;

  EasyScaleEngine reference(cfg, *wd.train, wd.augment);
  reference.configure_workers(std::vector<WorkerSpec>(2));
  reference.run_steps(total_steps);

  // Unique per crash point: ctest runs the instances as concurrent
  // processes sharing one temp dir.
  const auto path =
      temp_path(("crash_" + std::to_string(crash_step) + ".ckpt").c_str());
  {
    EasyScaleEngine victim(cfg, *wd.train, wd.augment);
    victim.configure_workers(std::vector<WorkerSpec>(2));
    victim.run_steps(crash_step);
    save_checkpoint_file(path, victim.checkpoint());
    // victim "crashes" here (destroyed without further progress)
  }
  EasyScaleEngine revived(cfg, *wd.train, wd.augment);
  revived.configure_workers(std::vector<WorkerSpec>(3));  // new hardware
  revived.restore(load_checkpoint_file(path));
  revived.run_steps(total_steps - crash_step);
  EXPECT_EQ(revived.params_digest(), reference.params_digest());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CrashRecoveryTest,
                         ::testing::Values(1, 2, 3, 5, 7));

}  // namespace
}  // namespace easyscale::core
