// Bitwise digests over tensors and byte streams.
//
// The paper's accuracy-consistency claims are "bitwise identical model
// parameters" (§3.1).  Tests and benches assert that property by comparing
// 64-bit FNV-1a digests of the raw float bit patterns; any single-ULP
// difference anywhere in the model changes the digest.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace easyscale {

/// Incremental FNV-1a (64-bit) hasher.
class Digest {
 public:
  void update(std::span<const std::uint8_t> bytes) {
    for (std::uint8_t b : bytes) {
      hash_ ^= b;
      hash_ *= kPrime;
    }
  }

  void update(std::span<const float> values) {
    for (float v : values) {
      const auto bits = std::bit_cast<std::uint32_t>(v);
      std::uint8_t raw[4] = {
          static_cast<std::uint8_t>(bits & 0xff),
          static_cast<std::uint8_t>((bits >> 8) & 0xff),
          static_cast<std::uint8_t>((bits >> 16) & 0xff),
          static_cast<std::uint8_t>((bits >> 24) & 0xff),
      };
      update(std::span<const std::uint8_t>(raw, 4));
    }
  }

  void update_u64(std::uint64_t v) {
    std::uint8_t raw[8];
    for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
    update(std::span<const std::uint8_t>(raw, 8));
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

  /// Hex rendering for logs and experiment reports.
  [[nodiscard]] std::string hex() const;

 private:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t hash_ = kOffset;
};

/// One-shot digest of a float buffer.
[[nodiscard]] std::uint64_t digest_floats(std::span<const float> values);

/// One-shot digest of raw bytes.
[[nodiscard]] std::uint64_t digest_bytes(std::span<const std::uint8_t> bytes);

/// One link of a DigestChain: `chain` is the running value after folding
/// this record into its predecessor's chain value.
struct DigestChainRecord {
  std::uint64_t id = 0;      // caller-chosen label (e.g. parameter index)
  std::uint64_t digest = 0;  // digest of the labelled object
  std::uint64_t chain = 0;   // FNV(prev_chain || id || digest)

  friend bool operator==(const DigestChainRecord&,
                         const DigestChainRecord&) = default;
};

/// Ordered, tamper-evident sequence of labelled digests.  Each link folds
/// the previous chain value into its own, so flipping any byte of any
/// record — or truncating / extending the sequence — breaks verification
/// from that point on.  Verified checkpoints store one record per tensor;
/// the determinism audit emits one per model layer.
class DigestChain {
 public:
  void push(std::uint64_t id, std::uint64_t digest);

  [[nodiscard]] const std::vector<DigestChainRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  /// Running chain value after the last record (the FNV offset when empty).
  [[nodiscard]] std::uint64_t tail() const;

  /// Recompute every link from scratch; false iff any stored chain value
  /// disagrees with its recomputation.
  [[nodiscard]] bool verify() const;

  void save(ByteWriter& w) const;
  /// Load and verify; throws Error on a broken link or truncated framing.
  [[nodiscard]] static DigestChain load(ByteReader& r);

  friend bool operator==(const DigestChain&, const DigestChain&) = default;

 private:
  [[nodiscard]] static std::uint64_t link(std::uint64_t prev, std::uint64_t id,
                                          std::uint64_t digest);

  std::vector<DigestChainRecord> records_;
};

}  // namespace easyscale
