// google-benchmark microbenchmarks of the substrate hot paths: GEMM kernel
// variants, ring all-reduce, Philox, EST context capture/restore and
// on-demand checkpointing.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "comm/ring.hpp"
#include "core/engine.hpp"
#include "kernels/conv.hpp"
#include "kernels/gemm.hpp"
#include "models/datasets.hpp"
#include "rng/philox.hpp"
#include "rng/sampling.hpp"

namespace {

using namespace easyscale;

void BM_GemmVariant(benchmark::State& state) {
  const auto variant = static_cast<kernels::GemmVariant>(state.range(0));
  const std::int64_t n = state.range(1);
  rng::Philox gen(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  rng::fill_normal(gen, a, 0.0f, 1.0f);
  rng::fill_normal(gen, b, 0.0f, 1.0f);
  for (auto _ : state) {
    kernels::gemm_variant(variant, n, n, n, a, b, c, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmVariant)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {32, 64}})
    ->ArgNames({"variant", "n"});

// Intra-op thread-count sweep over the native GEMM: same problem and
// variant at every thread count, so any result difference would be a
// determinism bug, and the throughput ratio is the parallel speedup.
void BM_GemmNativeThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::int64_t n = state.range(1);
  kernels::ExecContext ctx;
  ctx.device = kernels::DeviceType::kV100;
  ctx.policy = kernels::KernelPolicy::kDeterministic;
  ctx.intra_op_threads = threads;
  rng::Philox gen(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  rng::fill_normal(gen, a, 0.0f, 1.0f);
  rng::fill_normal(gen, b, 0.0f, 1.0f);
  for (auto _ : state) {
    kernels::gemm(ctx, n, n, n, a, b, c, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNativeThreads)
    ->ArgsProduct({{1, 2, 4, 8}, {256, 1024}})
    ->ArgNames({"threads", "n"})
    ->Unit(benchmark::kMillisecond);

// Thread sweep over the im2col conv path (forward + backward), the other
// acceptance-gate kernel.
void BM_ConvIm2colThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  kernels::ExecContext ctx;
  ctx.device = kernels::DeviceType::kV100;
  ctx.policy = kernels::KernelPolicy::kDeterministic;  // im2col + native gemm
  ctx.intra_op_threads = threads;
  const kernels::Conv2dDims d{.batch = 4,
                              .in_channels = 32,
                              .in_h = 32,
                              .in_w = 32,
                              .out_channels = 64,
                              .kernel_h = 3,
                              .kernel_w = 3,
                              .stride = 1,
                              .pad = 1,
                              .groups = 1};
  rng::Philox gen(4);
  std::vector<float> input(static_cast<std::size_t>(d.batch * d.in_channels *
                                                    d.in_h * d.in_w));
  std::vector<float> weight(static_cast<std::size_t>(
      d.out_channels * d.in_channels * d.kernel_h * d.kernel_w));
  std::vector<float> bias(static_cast<std::size_t>(d.out_channels));
  std::vector<float> out(static_cast<std::size_t>(d.batch * d.out_channels *
                                                  d.out_h() * d.out_w()));
  rng::fill_normal(gen, input, 0.0f, 1.0f);
  rng::fill_normal(gen, weight, 0.0f, 0.1f);
  rng::fill_normal(gen, bias, 0.0f, 0.1f);
  for (auto _ : state) {
    kernels::conv2d_forward(ctx, d, input, weight, bias, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_ConvIm2colThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

void BM_RingAllreduce(benchmark::State& state) {
  const std::int64_t world = state.range(0);
  const std::size_t n = 1 << 14;
  rng::Philox gen(2);
  std::vector<std::vector<float>> parts(static_cast<std::size_t>(world),
                                        std::vector<float>(n));
  for (auto& p : parts) rng::fill_normal(gen, p, 0.0f, 1.0f);
  std::vector<std::span<const float>> views(parts.begin(), parts.end());
  std::vector<float> out(n);
  for (auto _ : state) {
    comm::ring_allreduce_sum(views, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(world * n * 4));
}
BENCHMARK(BM_RingAllreduce)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_PhiloxNormal(benchmark::State& state) {
  rng::Philox gen(3);
  std::vector<float> out(1024);
  for (auto _ : state) {
    rng::fill_normal(gen, out, 0.0f, 1.0f);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PhiloxNormal);

void BM_OnDemandCheckpoint(benchmark::State& state) {
  auto wd = models::make_dataset_for("ResNet50", 64, 16, 1);
  core::EasyScaleConfig cfg;
  cfg.workload = "ResNet50";
  cfg.num_ests = 4;
  cfg.batch_per_est = 2;
  core::EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  engine.configure_workers({core::WorkerSpec{}});
  engine.run_steps(1);
  for (auto _ : state) {
    auto bytes = engine.checkpoint();
    benchmark::DoNotOptimize(bytes.data());
    state.counters["ckpt_bytes"] = static_cast<double>(bytes.size());
  }
}
BENCHMARK(BM_OnDemandCheckpoint);

void BM_ElasticReconfigure(benchmark::State& state) {
  auto wd = models::make_dataset_for("ResNet50", 64, 16, 1);
  core::EasyScaleConfig cfg;
  cfg.workload = "ResNet50";
  cfg.num_ests = 4;
  cfg.batch_per_est = 2;
  core::EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  engine.configure_workers({core::WorkerSpec{}});
  engine.run_steps(1);
  std::size_t workers = 2;
  for (auto _ : state) {
    engine.configure_workers(
        std::vector<core::WorkerSpec>(workers, core::WorkerSpec{}));
    workers = workers == 2 ? 4 : 2;
  }
}
BENCHMARK(BM_ElasticReconfigure);

}  // namespace

int main(int argc, char** argv) {
  // Refuse debug-build numbers (BENCH_kernels.json must come from a
  // release build) and stamp THIS repo's build type into the context —
  // google-benchmark's own `library_build_type` describes the system
  // benchmark library, not our code.
  if (!easyscale::bench::guard_release_build("BENCH_kernels.json")) return 2;
  benchmark::AddCustomContext("easyscale_build_type",
                              easyscale::bench::build_type());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
