#include "fault/injector.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "fault/streams.hpp"
#include "rng/philox.hpp"

namespace easyscale::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWorkerCrash:
      return "worker_crash";
    case FaultKind::kGpuRevocation:
      return "gpu_revocation";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kTornCheckpoint:
      return "torn_checkpoint";
    case FaultKind::kCommDrop:
      return "comm_drop";
    case FaultKind::kCommChunkDrop:
      return "comm_chunk_drop";
    case FaultKind::kCommStalledLink:
      return "comm_stalled_link";
    case FaultKind::kCommRankDeath:
      return "comm_rank_death";
    case FaultKind::kSdcBitFlip:
      return "sdc_bit_flip";
    case FaultKind::kSdcPerturb:
      return "sdc_perturb";
    case FaultKind::kPeerReplicaLoss:
      return "peer_replica_loss";
    case FaultKind::kControllerCrash:
      return "controller_crash";
    case FaultKind::kControllerPartition:
      return "controller_partition";
    default:
      return "unknown";
  }
}

void FaultEvent::save(ByteWriter& w) const {
  w.write<std::uint8_t>(static_cast<std::uint8_t>(kind));
  w.write(step);
  w.write(worker);
  w.write(grace_s);
  w.write(slowdown);
  w.write(stall_s);
  w.write(payload_seed);
}

std::string FaultEvent::to_string() const {
  std::ostringstream os;
  os << fault::to_string(kind) << "@step" << step << "/worker" << worker;
  return os.str();
}

FaultInjector::FaultInjector(std::vector<FaultEvent> schedule)
    : schedule_(std::move(schedule)) {
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.step < b.step;
                   });
}

FaultInjector FaultInjector::from_config(const FaultPlanConfig& cfg) {
  ES_CHECK(cfg.num_workers > 0, "need at least one worker to injure");
  ES_CHECK(cfg.horizon_steps >= 1, "fault horizon must be positive");
  rng::Philox gen(cfg.seed);
  std::vector<FaultEvent> events;
  // One Bernoulli draw per (step, kind) in a fixed kind order keeps the
  // stream consumption — and therefore the schedule — seed-deterministic.
  const struct {
    FaultKind kind;
    double rate;
  } kinds[] = {
      {FaultKind::kWorkerCrash, cfg.crash_rate},
      {FaultKind::kGpuRevocation, cfg.revocation_rate},
      {FaultKind::kStraggler, cfg.straggler_rate},
      {FaultKind::kTornCheckpoint, cfg.torn_checkpoint_rate},
      {FaultKind::kCommDrop, cfg.comm_drop_rate},
  };
  for (std::int64_t step = 1; step < cfg.horizon_steps; ++step) {
    for (const auto& k : kinds) {
      const double u = gen.next_double();
      const auto worker = static_cast<std::int64_t>(
          gen.next_below(static_cast<std::uint64_t>(cfg.num_workers)));
      const std::uint64_t sub_seed = gen.next_u64();
      if (u >= k.rate) continue;
      FaultEvent e;
      e.kind = k.kind;
      e.step = step;
      e.worker = worker;
      e.payload_seed = sub_seed;
      if (k.kind == FaultKind::kGpuRevocation) e.grace_s = cfg.revocation_grace_s;
      if (k.kind == FaultKind::kStraggler) e.slowdown = cfg.straggler_slowdown;
      events.push_back(e);
    }
  }
  // Comm-level kinds draw from a salted second stream so a pre-existing
  // seed's classic schedule is bitwise unchanged when these rates are zero
  // (zero-rate draws below never consume from `gen`).
  rng::Philox comm_gen(cfg.seed ^ stream_salt(StreamId::kCommFaultPlan));
  const struct {
    FaultKind kind;
    double rate;
  } comm_kinds[] = {
      {FaultKind::kCommChunkDrop, cfg.chunk_drop_rate},
      {FaultKind::kCommStalledLink, cfg.stalled_link_rate},
      {FaultKind::kCommRankDeath, cfg.rank_death_rate},
  };
  for (std::int64_t step = 1; step < cfg.horizon_steps; ++step) {
    for (const auto& k : comm_kinds) {
      const double u = comm_gen.next_double();
      const auto worker = static_cast<std::int64_t>(
          comm_gen.next_below(static_cast<std::uint64_t>(cfg.num_workers)));
      const std::uint64_t sub_seed = comm_gen.next_u64();
      if (u >= k.rate) continue;
      FaultEvent e;
      e.kind = k.kind;
      e.step = step;
      e.worker = worker;
      e.payload_seed = sub_seed;
      if (k.kind == FaultKind::kCommStalledLink) e.stall_s = cfg.link_stall_s;
      events.push_back(e);
    }
  }
  // SDC kinds draw from a third dedicated stream (same triple-draw
  // discipline), so adding corruption to an experiment leaves both earlier
  // families' schedules for the same seed bitwise unchanged.
  rng::Philox sdc_gen(cfg.seed ^ stream_salt(StreamId::kSdcPlan));
  const struct {
    FaultKind kind;
    double rate;
  } sdc_kinds[] = {
      {FaultKind::kSdcBitFlip, cfg.sdc_bitflip_rate},
      {FaultKind::kSdcPerturb, cfg.sdc_perturb_rate},
  };
  for (std::int64_t step = 1; step < cfg.horizon_steps; ++step) {
    for (const auto& k : sdc_kinds) {
      const double u = sdc_gen.next_double();
      const auto worker = static_cast<std::int64_t>(
          sdc_gen.next_below(static_cast<std::uint64_t>(cfg.num_workers)));
      const std::uint64_t sub_seed = sdc_gen.next_u64();
      if (u >= k.rate) continue;
      FaultEvent e;
      e.kind = k.kind;
      e.step = step;
      e.worker = worker;
      e.payload_seed = sub_seed;
      events.push_back(e);
    }
  }
  // Peer-replica-loss events draw from a fourth dedicated stream with the
  // same triple-draw discipline: turning replica loss on (or off) leaves
  // the classic, comm and SDC schedules for the same seed bitwise intact.
  rng::Philox peer_gen(cfg.seed ^ stream_salt(StreamId::kPeerPlan));
  for (std::int64_t step = 1; step < cfg.horizon_steps; ++step) {
    const double u = peer_gen.next_double();
    const auto worker = static_cast<std::int64_t>(
        peer_gen.next_below(static_cast<std::uint64_t>(cfg.num_workers)));
    const std::uint64_t sub_seed = peer_gen.next_u64();
    if (u >= cfg.peer_replica_loss_rate) continue;
    FaultEvent e;
    e.kind = FaultKind::kPeerReplicaLoss;
    e.step = step;
    e.worker = worker;
    e.payload_seed = sub_seed;
    events.push_back(e);
  }
  // Control-plane kinds draw from a fifth dedicated stream with the same
  // triple-draw discipline: arming controller crashes/partitions leaves the
  // classic, comm, SDC and peer schedules for the same seed bitwise intact.
  rng::Philox ctrl_gen(cfg.seed ^ stream_salt(StreamId::kControllerPlan));
  const struct {
    FaultKind kind;
    double rate;
  } ctrl_kinds[] = {
      {FaultKind::kControllerCrash, cfg.controller_crash_rate},
      {FaultKind::kControllerPartition, cfg.controller_partition_rate},
  };
  for (std::int64_t step = 1; step < cfg.horizon_steps; ++step) {
    for (const auto& k : ctrl_kinds) {
      const double u = ctrl_gen.next_double();
      const auto worker = static_cast<std::int64_t>(
          ctrl_gen.next_below(static_cast<std::uint64_t>(cfg.num_workers)));
      const std::uint64_t sub_seed = ctrl_gen.next_u64();
      if (u >= k.rate) continue;
      FaultEvent e;
      e.kind = k.kind;
      e.step = step;
      e.worker = worker;
      e.payload_seed = sub_seed;
      events.push_back(e);
    }
  }
  return FaultInjector(std::move(events));
}

std::vector<FaultEvent> FaultInjector::take_due(std::int64_t step) {
  std::vector<FaultEvent> due;
  while (cursor_ < schedule_.size() && schedule_[cursor_].step <= step) {
    due.push_back(schedule_[cursor_]);
    fired_.push_back(schedule_[cursor_]);
    ++cursor_;
  }
  return due;
}

std::uint64_t FaultInjector::schedule_digest() const {
  ByteWriter w;
  for (const auto& e : schedule_) e.save(w);
  return digest_bytes(w.bytes());
}

void FaultInjector::tear_bytes(std::vector<std::uint8_t>& bytes,
                               std::uint64_t seed) {
  if (bytes.empty()) return;
  rng::Philox gen(seed);
  // A torn write leaves a prefix of garbage-sprinkled data: flip a handful
  // of bits, then chop a seeded fraction off the tail.
  const std::uint64_t flips = 1 + gen.next_below(8);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const auto pos = gen.next_below(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << gen.next_below(8));
  }
  const auto keep =
      bytes.size() - gen.next_below(bytes.size() / 2 + 1);  // >= half kept
  bytes.resize(keep);
}

bool FaultInjector::tear_file(const std::string& path, std::uint64_t seed) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return false;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(in);
  tear_bytes(bytes, seed);
  std::FILE* out = std::fopen(path.c_str(), "wb");
  ES_CHECK(out != nullptr, "cannot rewrite torn checkpoint " << path);
  if (!bytes.empty()) {
    ES_CHECK(std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size(),
             "torn-checkpoint rewrite failed for " << path);
  }
  std::fclose(out);
  return true;
}

}  // namespace easyscale::fault
