// Layer interface.
//
// Layers cache whatever activations their backward needs during forward
// ("temporal tensors", §3.2) — those caches live for exactly one mini-batch
// and are the state EasyScale does NOT need to swap at EST context switches.
// Persistent per-worker state is split into:
//   - parameters (shared across ESTs, registered via register_parameters);
//   - buffers (e.g. BatchNorm running stats) which evolve per virtual
//     worker and therefore belong to the EST context (collect_buffers).
#pragma once

#include <memory>
#include <vector>

#include "autograd/parameter.hpp"
#include "autograd/step_context.hpp"
#include "tensor/tensor.hpp"

namespace easyscale::nn {

using autograd::Parameter;
using autograd::ParameterStore;
using autograd::StepContext;
using tensor::LongTensor;
using tensor::Shape;
using tensor::Tensor;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; caches activations needed by backward.
  virtual Tensor forward(StepContext& ctx, const Tensor& x) = 0;

  /// Backward pass: accumulates parameter gradients (marking them ready)
  /// and returns the gradient w.r.t. the input of the last forward.
  virtual Tensor backward(StepContext& ctx, const Tensor& grad_out) = 0;

  /// Register trainable parameters (construction order defines bucket
  /// "reverse topological" order).
  virtual void register_parameters(ParameterStore& /*store*/) {}

  /// Collect non-trainable per-worker state (BatchNorm running stats).
  virtual void collect_buffers(std::vector<Tensor*>& /*out*/) {}

  /// Deterministic weight init drawing from `init` only.
  virtual void init_weights(rng::Philox& /*init*/) {}

  /// True when the layer lowers to hardware-tuned vendor kernels on GPUs
  /// (used by the D2 eligibility scan, §3.3).
  [[nodiscard]] virtual bool uses_vendor_tuned_kernels() const { return false; }

  [[nodiscard]] virtual const char* kind() const = 0;
};

/// A layer pipeline; forward applies layers in order, backward in reverse.
class Sequential : public Layer {
 public:
  Sequential() = default;

  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void append(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(StepContext& ctx, const Tensor& x) override;
  Tensor backward(StepContext& ctx, const Tensor& grad_out) override;
  void register_parameters(ParameterStore& store) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  void init_weights(rng::Philox& init) override;
  [[nodiscard]] bool uses_vendor_tuned_kernels() const override;
  [[nodiscard]] const char* kind() const override { return "Sequential"; }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& at(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace easyscale::nn
