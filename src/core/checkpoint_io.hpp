// On-demand checkpoint persistence: a small framed file format (magic +
// version + payload size + FNV digest + per-tensor digest chain) around
// the engine's checkpoint bytes, so crashes mid-write are detected on
// load and the parameter content is independently attestable.
//
// Version history:
//   1 — magic, version, size, digest, payload (PR 1)
//   2 — adds a DigestChain section between the header and the payload:
//       one record per model tensor, hash-linked, so flipping any byte of
//       any stored digest (or truncating / extending the chain) fails the
//       load.  Verified checkpoints (checkpoint_manager) re-derive the
//       chain from the restored parameters and compare.
//   3 — adds a ShardFrameMeta section between the chain and the payload:
//       the parallelism-plan layout the checkpoint was taken under
//       (world_size, shard_degree, the fixed chunk bounds over the
//       flattened parameter space) plus a per-chunk digest chain over the
//       CANONICAL parameter bytes.  Because chunk bounds are a pure
//       function of (total_numel, num_chunks) — independent of
//       shard_degree — the chunk chain of a run saved at degree N is
//       byte-comparable to one saved at any other degree, which is how
//       sharded round-trip tests prove cross-degree restores bitwise.
//       v2 files (and the v2 writer overloads) are unchanged byte for
//       byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/digest.hpp"

namespace easyscale::core {

/// Shard-layout metadata frame of a v3 checkpoint.
struct ShardFrameMeta {
  std::int32_t world_size = 1;
  std::int32_t shard_degree = 1;
  std::int64_t total_numel = 0;
  std::vector<std::int64_t> chunk_begin;  // fixed chunk bounds, flattened
  std::vector<std::int64_t> chunk_end;    // parameter space, aligned 1:1
  /// One record per chunk (id = chunk index), digest over the canonical
  /// parameter bytes of that chunk; hash-linked like the tensor chain.
  DigestChain chunk_chain;

  void save(ByteWriter& w) const;
  [[nodiscard]] static ShardFrameMeta load(ByteReader& r);
  friend bool operator==(const ShardFrameMeta&,
                         const ShardFrameMeta&) = default;
};

/// Write checkpoint bytes to `path` atomically (write temp + rename),
/// with an empty digest chain.
void save_checkpoint_file(const std::string& path,
                          const std::vector<std::uint8_t>& bytes);

/// Same, recording a per-tensor digest chain alongside the payload.
void save_checkpoint_file(const std::string& path,
                          const std::vector<std::uint8_t>& bytes,
                          const DigestChain& chain);

/// Same, additionally recording the shard-layout frame (writes version 3).
void save_checkpoint_file(const std::string& path,
                          const std::vector<std::uint8_t>& bytes,
                          const DigestChain& chain,
                          const ShardFrameMeta& shard);

/// Read and verify a checkpoint file; throws on corruption or truncation
/// (payload digest mismatch, broken chain links, framing damage).
[[nodiscard]] std::vector<std::uint8_t> load_checkpoint_file(
    const std::string& path);

/// Same, returning the stored digest chain through `chain_out` (empty for
/// version-1 files, which predate the chain section).
[[nodiscard]] std::vector<std::uint8_t> load_checkpoint_file(
    const std::string& path, DigestChain* chain_out);

/// Same, additionally returning the shard frame through `shard_out`
/// (nullopt for pre-v3 files).
[[nodiscard]] std::vector<std::uint8_t> load_checkpoint_file(
    const std::string& path, DigestChain* chain_out,
    std::optional<ShardFrameMeta>* shard_out);

}  // namespace easyscale::core
