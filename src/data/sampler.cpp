#include "data/sampler.hpp"

#include <numeric>

#include "common/error.hpp"
#include "rng/sampling.hpp"
#include "rng/stream_set.hpp"

namespace easyscale::data {

DistributedSampler::DistributedSampler(std::int64_t dataset_size,
                                       std::int64_t world_size,
                                       std::int64_t rank,
                                       std::int64_t batch_size,
                                       std::uint64_t seed, bool shuffle)
    : dataset_size_(dataset_size),
      world_size_(world_size),
      rank_(rank),
      batch_size_(batch_size),
      seed_(seed),
      shuffle_(shuffle) {
  ES_CHECK(world_size > 0 && rank >= 0 && rank < world_size,
           "bad sampler rank/world");
  ES_CHECK(batch_size > 0 && dataset_size > 0, "bad sampler sizes");
  set_epoch(0);
  ES_CHECK(steps_per_epoch() > 0,
           "batch size " << batch_size << " exceeds the per-rank shard ("
                         << dataset_size << " samples over " << world_size
                         << " ranks)");
}

void DistributedSampler::set_epoch(std::int64_t epoch) {
  epoch_ = epoch;
  std::vector<std::int64_t> order;
  if (shuffle_) {
    rng::Philox gen(rng::derive_stream_key(
        seed_, static_cast<std::uint64_t>(epoch), 31));
    order = rng::permutation(gen, static_cast<std::size_t>(dataset_size_));
  } else {
    order.resize(static_cast<std::size_t>(dataset_size_));
    std::iota(order.begin(), order.end(), std::int64_t{0});
  }
  // Pad by wrapping so every rank gets the same shard length (torch
  // semantics), then take a strided shard.
  const std::int64_t per_rank = (dataset_size_ + world_size_ - 1) / world_size_;
  const std::int64_t total = per_rank * world_size_;
  shard_.clear();
  shard_.reserve(static_cast<std::size_t>(per_rank));
  for (std::int64_t i = rank_; i < total; i += world_size_) {
    shard_.push_back(order[static_cast<std::size_t>(i % dataset_size_)]);
  }
}

std::int64_t DistributedSampler::steps_per_epoch() const {
  return static_cast<std::int64_t>(shard_.size()) / batch_size_;
}

std::vector<std::int64_t> DistributedSampler::batch_indices(
    std::int64_t step) const {
  ES_CHECK(step >= 0 && step < steps_per_epoch(),
           "sampler step " << step << " out of range");
  const auto begin = shard_.begin() + step * batch_size_;
  return std::vector<std::int64_t>(begin, begin + batch_size_);
}

}  // namespace easyscale::data
