// Simulated GPU device types.
//
// The paper's cluster mixes V100 / P100 / T4 GPUs.  Heterogeneous
// nondeterminism (§3.3, D2) arises because each type ships hardware-tuned
// kernels with different floating-point accumulation orders.  We reproduce
// that by giving each DeviceType a distinct *native* kernel variant (see
// kernels/exec_context.hpp) whose reduction blocking differs.
#pragma once

#include <cstdint>
#include <string>

#include "common/serialize.hpp"

namespace easyscale::kernels {

enum class DeviceType : int { kV100 = 0, kP100 = 1, kT4 = 2 };

constexpr int kNumDeviceTypes = 3;

/// Static facts about a device type, used by the memory model (Fig 10) and
/// the scheduler's capability table (Eq. 1).
struct DeviceSpec {
  const char* name;
  double memory_gb;            // default board memory
  double relative_capability;  // mini-batches/s relative to V100
};

[[nodiscard]] const DeviceSpec& device_spec(DeviceType type);

[[nodiscard]] std::string device_name(DeviceType type);

/// Parse "V100" / "P100" / "T4" (throws on anything else).
[[nodiscard]] DeviceType parse_device(const std::string& name);

/// GPU memory consumed by one CUDA context (framework + driver), §3.1:
/// "around 750MB per context".
constexpr double kCudaContextGb = 0.75;

}  // namespace easyscale::kernels
