// escale_train — a small CLI around the EasyScale engine.
//
// Usage:
//   escale_train [--workload NAME] [--ests N] [--batch N] [--epochs N]
//                [--seed S] [--optimizer sgd|adam] [--lr F] [--d2]
//                [--schedule W1,W2,...]       # worker count per epoch
//                [--checkpoint PATH]          # save at the end
//                [--resume PATH]              # restore before training
//                [--verify]                   # compare vs fixed-DoP DDP
//
// Example:
//   escale_train --workload ResNet18 --ests 4 --schedule 2,4,1 --verify
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/checkpoint_io.hpp"
#include "core/engine.hpp"
#include "ddp/trainer.hpp"
#include "models/datasets.hpp"
#include "models/eval.hpp"

namespace {

using namespace easyscale;

struct Args {
  std::string workload = "ResNet18";
  std::int64_t ests = 4;
  std::int64_t batch = 8;
  std::int64_t epochs = 3;
  std::uint64_t seed = 42;
  std::string optimizer = "sgd";
  float lr = 0.1f;
  bool d2 = false;
  std::vector<std::size_t> schedule;  // workers per epoch
  std::string checkpoint;
  std::string resume;
  bool verify = false;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--workload") {
      const char* v = next();
      if (!v) return false;
      args.workload = v;
    } else if (flag == "--ests") {
      const char* v = next();
      if (!v) return false;
      args.ests = std::atoll(v);
    } else if (flag == "--batch") {
      const char* v = next();
      if (!v) return false;
      args.batch = std::atoll(v);
    } else if (flag == "--epochs") {
      const char* v = next();
      if (!v) return false;
      args.epochs = std::atoll(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--optimizer") {
      const char* v = next();
      if (!v) return false;
      args.optimizer = v;
    } else if (flag == "--lr") {
      const char* v = next();
      if (!v) return false;
      args.lr = static_cast<float>(std::atof(v));
    } else if (flag == "--d2") {
      args.d2 = true;
    } else if (flag == "--schedule") {
      const char* v = next();
      if (!v) return false;
      for (const char* p = v; *p != '\0';) {
        args.schedule.push_back(static_cast<std::size_t>(std::atoll(p)));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (flag == "--checkpoint") {
      const char* v = next();
      if (!v) return false;
      args.checkpoint = v;
    } else if (flag == "--resume") {
      const char* v = next();
      if (!v) return false;
      args.resume = v;
    } else if (flag == "--verify") {
      args.verify = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args.schedule.empty()) {
    args.schedule.assign(static_cast<std::size_t>(args.epochs), 2);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 2;
  std::printf("workload=%s ests=%lld batch=%lld seed=%llu optimizer=%s "
              "lr=%g d2=%d\n",
              args.workload.c_str(), static_cast<long long>(args.ests),
              static_cast<long long>(args.batch),
              static_cast<unsigned long long>(args.seed),
              args.optimizer.c_str(), static_cast<double>(args.lr),
              args.d2 ? 1 : 0);

  auto wd = models::make_dataset_for(args.workload, 512, 256, args.seed);
  core::EasyScaleConfig cfg;
  cfg.workload = args.workload;
  cfg.num_ests = args.ests;
  cfg.batch_per_est = args.batch;
  cfg.seed = args.seed;
  cfg.determinism.d2 = args.d2;
  cfg.optim.lr = args.lr;
  cfg.optim.kind = args.optimizer == "adam"
                       ? optim::OptimizerConfig::Kind::kAdam
                       : optim::OptimizerConfig::Kind::kSGD;

  core::EasyScaleEngine engine(cfg, *wd.train, wd.augment);
  engine.configure_workers(std::vector<core::WorkerSpec>(args.schedule[0]));
  if (!args.resume.empty()) {
    engine.restore(core::load_checkpoint_file(args.resume));
    std::printf("resumed from %s at global step %lld\n", args.resume.c_str(),
                static_cast<long long>(engine.global_step()));
  }

  std::size_t epoch = 0;
  for (std::size_t workers : args.schedule) {
    engine.configure_workers(std::vector<core::WorkerSpec>(workers));
    engine.run_epochs(1);
    const float loss = engine.loss_history().back();
    std::printf("epoch %zu on %zu worker(s): last loss %.4f\n", ++epoch,
                workers, static_cast<double>(loss));
  }
  const auto report =
      models::evaluate(engine.model_for_eval(0), *wd.test, 32, 10);
  std::printf("validation accuracy: %.1f%%\n", 100.0 * report.overall);
  std::printf("params digest: %016llx\n",
              static_cast<unsigned long long>(engine.params_digest()));

  if (!args.checkpoint.empty()) {
    core::save_checkpoint_file(args.checkpoint, engine.checkpoint());
    std::printf("checkpoint written to %s\n", args.checkpoint.c_str());
  }
  if (args.verify && args.resume.empty()) {
    ddp::DDPConfig dcfg;
    dcfg.workload = args.workload;
    dcfg.world_size = args.ests;
    dcfg.batch_per_worker = args.batch;
    dcfg.seed = args.seed;
    dcfg.policy = args.d2 ? kernels::KernelPolicy::kHardwareAgnostic
                          : kernels::KernelPolicy::kDeterministic;
    dcfg.optim = cfg.optim;
    ddp::DDPTrainer reference(dcfg, *wd.train, wd.augment);
    reference.run_epochs(static_cast<std::int64_t>(args.schedule.size()));
    const bool same = reference.params_digest() == engine.params_digest();
    std::printf("verification vs fixed-DoP DDP: %s\n",
                same ? "bitwise IDENTICAL" : "MISMATCH");
    return same ? 0 : 1;
  }
  return 0;
}
